"""Process-local metric registry: counters, gauges, histograms.

The registry is the single aggregation surface of the reproduction:
the campaign engine, the protocol fleet, the architecture simulator
and the channel model all increment metrics here, and every summary a
human reads (``campaign status``, ``protocol soak``, ``obs report``)
is rendered *from a snapshot of this registry*, never from ad-hoc
arithmetic scattered through the callers — so two views of the same
run cannot drift apart.

Metric names follow ``repro_<pkg>_<name>_<unit>`` (for example
``repro_campaign_traces_total`` or ``repro_arch_pointmult_cycles``);
the registry enforces the prefix and character set at creation time.

Two export formats:

* :meth:`MetricRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms as
  cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``);
* :meth:`MetricRegistry.snapshot` — a JSON-serializable dict that
  round-trips through :meth:`merge_snapshot` (shard workers write
  their snapshot to disk; the coordinator folds them back in) and
  that :func:`diff_snapshots` turns into a regression table.

Everything is stdlib-only and deterministic: values are stored in
insertion-ordered dicts keyed by sorted label tuples, and snapshots
serialize with sorted keys, so two same-seed runs produce
byte-identical snapshot files (wall-clock metrics excepted — see
:func:`strip_wall_metrics`).
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry",
           "MetricError", "atomic_write_bytes", "diff_snapshots",
           "strip_wall_metrics", "DEFAULT_LATENCY_BUCKETS",
           "DEFAULT_CYCLE_BUCKETS", "SNAPSHOT_SCHEMA"]


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """fsync'd write-tmp-rename, same discipline as the trace store
    (duplicated here so :mod:`repro.obs` stays dependency-free)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise

SNAPSHOT_SCHEMA = 1

#: seconds — spans the ~1 us of a digit multiply up to multi-second shards.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0,
)

#: simulated cycles — one ladder step is ~500, a full K-163 PM ~90 k.
DEFAULT_CYCLE_BUCKETS: Tuple[float, ...] = (
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
)

_NAME_RE = re.compile(r"^repro_[a-z0-9]+(_[a-z0-9]+)+$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: name suffixes whose values depend on the wall clock, not the seed.
_WALL_SUFFIXES = ("_seconds", "_per_second")


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(
            f"metric name {name!r} violates the repro_<pkg>_<name>_<unit> "
            "convention (lowercase, underscore-separated, repro_ prefix)"
        )
    return name


def _label_key(labels: dict) -> tuple:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricError(f"bad label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"") \
                .replace("\n", r"\n")


def _render_labels(key: tuple, extra: Optional[tuple] = None) -> str:
    pairs = list(key) + (list(extra) if extra else [])
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared base: a name, a help string, per-label-set values."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._values: Dict[tuple, object] = {}

    def label_sets(self) -> list:
        return [dict(key) for key in self._values]


class Counter(_Metric):
    """Monotonically increasing count (float increments allowed —
    energy in µJ is a counter too)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        return float(sum(self._values.values()))


class Gauge(_Metric):
    """A value that can go anywhere (coverage fraction, peak statistic)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return float(self._values.get(_label_key(labels), 0.0))


class _HistogramState:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bucket_counts = [0] * n_buckets   # non-cumulative, no +Inf

    def observe(self, value: float, buckets: tuple) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, le in enumerate(buckets):
            if value <= le:
                self.bucket_counts[i] += 1
                break


class Histogram(_Metric):
    """Fixed-bucket histogram (plus exact min/max/sum/count).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    overflow, so bucket counts always sum to ``count`` — the invariant
    the conformance tests pin.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Tuple[float, ...]] = None):
        super().__init__(name, help)
        buckets = tuple(buckets or DEFAULT_LATENCY_BUCKETS)
        if list(buckets) != sorted(set(buckets)):
            raise MetricError(f"histogram {name} buckets must be "
                              "strictly increasing")
        self.buckets = buckets

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = _HistogramState(len(self.buckets))
        state.observe(float(value), self.buckets)

    def state(self, **labels) -> Optional[_HistogramState]:
        return self._values.get(_label_key(labels))

    def mean(self, **labels) -> float:
        state = self.state(**labels)
        if state is None or state.count == 0:
            return 0.0
        return state.sum / state.count

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimated q-quantile of one series (upper-bound
        interpolation; error bounded by one bucket width — see
        :mod:`repro.obs.quantile`).  None when the series is empty."""
        from .quantile import estimate_quantile

        state = self.state(**labels)
        if state is None or state.count == 0:
            return None
        return estimate_quantile(
            self.buckets, state.bucket_counts, state.count,
            state.min, state.max, q)


class MetricRegistry:
    """Get-or-create home of every metric in one process (or shard)."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    # -- creation ------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name} already registered as {existing.kind}, "
                    f"requested as {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, buckets=buckets)
        if buckets is not None and tuple(buckets) != metric.buckets:
            raise MetricError(f"histogram {name} re-registered with "
                              "different buckets")
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> list:
        return sorted(self._metrics)

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every metric (sorted, stable)."""
        metrics = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict = {"kind": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["values"] = [
                    {
                        "labels": dict(key),
                        "count": state.count,
                        "sum": state.sum,
                        "min": state.min if state.count else None,
                        "max": state.max if state.count else None,
                        "bucket_counts": list(state.bucket_counts),
                    }
                    for key, state in sorted(metric._values.items())
                ]
            else:
                entry["values"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric._values.items())
                ]
            metrics[name] = entry
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. a shard worker's) into this registry.

        Counters and histograms add; gauges take the incoming value
        (last writer wins — merge order must itself be deterministic,
        which the coordinator guarantees by merging in shard order).
        """
        for name, entry in snapshot.get("metrics", {}).items():
            kind = entry.get("kind")
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
                for item in entry["values"]:
                    metric.inc(item["value"], **item["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
                for item in entry["values"]:
                    metric.set(item["value"], **item["labels"])
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
                for item in entry["values"]:
                    key = _label_key(item["labels"])
                    state = metric._values.get(key)
                    if state is None:
                        state = metric._values[key] = _HistogramState(
                            len(metric.buckets)
                        )
                    state.count += item["count"]
                    state.sum += item["sum"]
                    if item["count"]:
                        state.min = min(state.min, item["min"])
                        state.max = max(state.max, item["max"])
                    for i, n in enumerate(item["bucket_counts"]):
                        state.bucket_counts[i] += n
            else:
                raise MetricError(f"snapshot metric {name} has unknown "
                                  f"kind {kind!r}")

    def write_snapshot(self, path: str) -> None:
        """Atomically write the snapshot as canonical JSON."""
        payload = json.dumps(self.snapshot(), sort_keys=True,
                             indent=1).encode()
        atomic_write_bytes(path, payload)

    @staticmethod
    def load_snapshot(path: str) -> dict:
        with open(path, "r", encoding="utf-8") as f:
            snapshot = json.load(f)
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise MetricError(
                f"snapshot schema v{snapshot.get('schema')} is not "
                f"supported by this reader (v{SNAPSHOT_SCHEMA})"
            )
        return snapshot

    # -- Prometheus text exposition ------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition format, one family per metric."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, state in sorted(metric._values.items()):
                    cumulative = 0
                    for le, n in zip(metric.buckets, state.bucket_counts):
                        cumulative += n
                        labels = _render_labels(
                            key, (("le", _format_value(le)),)
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {state.count}")
                    plain = _render_labels(key)
                    lines.append(f"{name}_sum{plain} "
                                 f"{_format_value(state.sum)}")
                    lines.append(f"{name}_count{plain} {state.count}")
            else:
                for key, value in sorted(metric._values.items()):
                    lines.append(f"{name}{_render_labels(key)} "
                                 f"{_format_value(float(value))}")
        return "\n".join(lines) + ("\n" if lines else "")


def strip_wall_metrics(snapshot: dict) -> dict:
    """The snapshot minus wall-clock-dependent families.

    Determinism ("same seed, same numbers") holds for everything the
    simulation computes — cycles, µJ, counts — but not for elapsed
    wall time; replay comparisons use this projection.
    """
    metrics = {
        name: entry
        for name, entry in snapshot.get("metrics", {}).items()
        if not name.endswith(_WALL_SUFFIXES)
    }
    return {"schema": snapshot.get("schema", SNAPSHOT_SCHEMA),
            "metrics": metrics}


def _scalar_series(entry: dict) -> list:
    """``[(labels_key, display_name_suffix, value)]`` for diffing."""
    series = []
    if entry["kind"] == "histogram":
        for item in entry["values"]:
            key = _label_key(item["labels"])
            series.append((key, ":count", float(item["count"])))
            if item["count"]:
                series.append((key, ":mean",
                               item["sum"] / item["count"]))
    else:
        for item in entry["values"]:
            series.append((_label_key(item["labels"]), "",
                           float(item["value"])))
    return series


def diff_snapshots(a: dict, b: dict,
                   patterns: Optional[list] = None) -> list:
    """Regression table between two snapshots.

    Returns ``[{"metric", "labels", "a", "b", "delta", "pct"}]`` sorted
    by metric name; ``pct`` is None when ``a`` is zero.  ``patterns``
    restricts to metrics matching any ``fnmatch`` glob.
    """
    import fnmatch

    def selected(name: str) -> bool:
        if not patterns:
            return True
        return any(fnmatch.fnmatch(name, p) for p in patterns)

    rows = []
    names = sorted(set(a.get("metrics", {})) | set(b.get("metrics", {})))
    for name in names:
        if not selected(name):
            continue
        series_a = dict(
            ((key, suffix), value) for key, suffix, value in
            _scalar_series(a["metrics"][name])
        ) if name in a.get("metrics", {}) else {}
        series_b = dict(
            ((key, suffix), value) for key, suffix, value in
            _scalar_series(b["metrics"][name])
        ) if name in b.get("metrics", {}) else {}
        for key, suffix in sorted(set(series_a) | set(series_b)):
            va = series_a.get((key, suffix))
            vb = series_b.get((key, suffix))
            delta = (vb or 0.0) - (va or 0.0)
            pct = None
            if va not in (None, 0.0) and vb is not None:
                pct = 100.0 * (vb - va) / va
            rows.append({
                "metric": name + suffix,
                "labels": dict(key),
                "a": va,
                "b": vb,
                "delta": delta,
                "pct": pct,
            })
    return rows
