"""Reading a traced run back: trees, rollups, reports, diffs.

This is the consumer side of :mod:`repro.obs`: given a run directory
it loads the manifest, every span file (coordinator + per-shard) and
the merged metric snapshot, and renders

* the **human report** — manifest provenance, per-span-name rollup
  (count / wall / simulated cycles / µJ), the top-N slowest spans and
  the energy-by-span rollup whose total matches the energy model's
  total by construction (self-energy = a span's µJ minus its
  children's, so partitioned attribution sums back exactly);
* the **JSON report** — the same data machine-readable;
* the **canonical span tree** — wall-time and pid stripped, children
  sorted by deterministic span id, serialized with sorted keys — the
  byte-comparable artifact the deterministic-replay tests assert on;
* the **diff** — a regression table between two metric snapshots with
  percent deltas, and a threshold check CI fails builds on.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .manifest import load_manifest
from .metrics import MetricRegistry, diff_snapshots, strip_wall_metrics
from .runtime import METRICS_NAME, OBS_DIRNAME, SPANS_NAME

__all__ = ["SPAN_UJ_FAMILY", "resolve_obs_dir", "load_spans",
           "load_metrics", "span_energy_family",
           "canonical_span_tree", "canonical_span_bytes",
           "canonical_metrics_bytes", "energy_rollup", "name_rollup",
           "render_report", "report_json", "check_required",
           "render_diff"]

#: Synthetic counter family the diff gate sees: total µJ per span
#: name, folded in from the span log so ``obs diff --max-regression``
#: covers energy, not only cycle counters.
SPAN_UJ_FAMILY = "repro_obs_span_uj_total"


def resolve_obs_dir(path: str) -> str:
    """Accept a run dir, its parent (campaign dir), or a file inside."""
    path = os.path.abspath(path)
    candidates = [path, os.path.join(path, OBS_DIRNAME)]
    for candidate in candidates:
        if os.path.exists(os.path.join(candidate, SPANS_NAME)) \
                or os.path.exists(os.path.join(candidate, METRICS_NAME)):
            return candidate
    raise FileNotFoundError(
        f"no observability data under {path} (expected {SPANS_NAME} or "
        f"{METRICS_NAME}, directly or in an '{OBS_DIRNAME}/' subdir) — "
        "was the run started with tracing on (--obs / --obs-dir)?"
    )


def load_spans(obs_dir: str) -> List[dict]:
    """Every span record: coordinator file first, then shards in
    index order.  Torn trailing lines (a crashed writer) are skipped,
    like the failure log's reader."""
    paths = []
    main = os.path.join(obs_dir, SPANS_NAME)
    if os.path.exists(main):
        paths.append(main)
    paths += sorted(
        os.path.join(obs_dir, name) for name in os.listdir(obs_dir)
        if name.startswith("spans-shard-") and name.endswith(".jsonl")
    )
    spans = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    return spans


def load_metrics(obs_dir: str) -> Optional[dict]:
    path = os.path.join(obs_dir, METRICS_NAME)
    if not os.path.exists(path):
        return None
    return MetricRegistry.load_snapshot(path)


def span_energy_family(spans: List[dict]) -> Optional[dict]:
    """The :data:`SPAN_UJ_FAMILY` entry for a span log, or None.

    One counter series per span name carrying that name's total µJ
    from :func:`energy_rollup` — snapshot-shaped, so it diffs, merges
    and renders exactly like a family the registry recorded itself.
    """
    energy = energy_rollup(spans)["by_name"]
    values = [
        {"labels": {"name": name},
         "value": round(entry["total_uj"], 6)}
        for name, entry in sorted(energy.items())
    ]
    if not values:
        return None
    return {
        "kind": "counter",
        "help": "total uJ attributed to spans of this name "
                "(synthesized from the span log)",
        "values": values,
    }


def _snapshot_from(path: str) -> dict:
    """A metrics snapshot from a run dir, an obs dir, or a .json file.

    Directory inputs get the synthetic per-span energy family folded
    in from the span log, so the ``--max-regression`` gate covers µJ
    totals per span name alongside the recorded counters.  File
    inputs are served verbatim — a checked-in baseline snapshot must
    already carry the family (regenerate it with ``obs report
    --json`` / :func:`_snapshot_from` on the baseline run).
    """
    if os.path.isfile(path):
        return MetricRegistry.load_snapshot(path)
    obs_dir = resolve_obs_dir(path)
    snapshot = load_metrics(obs_dir)
    if snapshot is None:
        raise FileNotFoundError(f"no {METRICS_NAME} under {path}")
    if SPAN_UJ_FAMILY not in snapshot.get("metrics", {}):
        family = span_energy_family(load_spans(obs_dir))
        if family is not None:
            metrics = dict(snapshot["metrics"])
            metrics[SPAN_UJ_FAMILY] = family
            snapshot = dict(snapshot)
            snapshot["metrics"] = metrics
    return snapshot


# ----------------------------------------------------------------------
# tree + rollups
# ----------------------------------------------------------------------

def _index_spans(spans: List[dict]) -> Tuple[dict, dict]:
    """``(by_id, children)`` — duplicates collapse to the last record."""
    by_id = {}
    for record in spans:
        by_id[record["span"]] = record
    children: Dict[Optional[str], list] = {}
    for record in by_id.values():
        parent = record.get("parent")
        if parent not in by_id:
            parent = None          # orphan (or true root) -> top level
        children.setdefault(parent, []).append(record)
    return by_id, children


def canonical_span_tree(obs_dir: str) -> list:
    """The deterministic projection of the span forest.

    Wall-clock fields (``start_s``/``end_s``) and ``pid`` are
    stripped; siblings sort by span id (itself derived from seed-
    rooted content, so the sort is replay-stable).  Two same-seed runs
    produce byte-identical serializations of this tree.
    """
    spans = load_spans(obs_dir)
    _, children = _index_spans(spans)

    def node(record: dict) -> dict:
        shaped = {
            "name": record["name"],
            "span": record["span"],
            "parent": record.get("parent"),
            "key": record.get("key"),
        }
        for field in ("cycles", "uj", "attrs"):
            if field in record:
                shaped[field] = record[field]
        kids = sorted(children.get(record["span"], []),
                      key=lambda r: r["span"])
        shaped["children"] = [node(kid) for kid in kids]
        return shaped

    roots = sorted(children.get(None, []), key=lambda r: r["span"])
    return [node(root) for root in roots]


def canonical_span_bytes(obs_dir: str) -> bytes:
    return json.dumps(canonical_span_tree(obs_dir),
                      sort_keys=True).encode()


def canonical_metrics_bytes(obs_dir: str) -> bytes:
    """The metric snapshot minus wall-clock families, byte-stable."""
    snapshot = load_metrics(obs_dir)
    if snapshot is None:
        return b"{}"
    return json.dumps(strip_wall_metrics(snapshot),
                      sort_keys=True).encode()


def name_rollup(spans: List[dict]) -> dict:
    """Per span name: count, wall seconds, cycles, µJ (all totals)."""
    rollup: Dict[str, dict] = {}
    for record in spans:
        entry = rollup.setdefault(record["name"], {
            "count": 0, "wall_s": 0.0, "cycles": 0, "uj": 0.0,
        })
        entry["count"] += 1
        start, end = record.get("start_s"), record.get("end_s")
        if start is not None and end is not None:
            entry["wall_s"] += max(0.0, end - start)
        entry["cycles"] += record.get("cycles") or 0
        entry["uj"] += record.get("uj") or 0.0
    return rollup


def energy_rollup(spans: List[dict]) -> dict:
    """Self-energy per span name; totals match the model exactly.

    A span's *self* energy is its µJ minus the µJ its children
    already claim (a ``trace`` span keeps its prologue/epilogue charge
    after the ``ladder.step`` children take their iterations).  Spans
    without µJ contribute nothing and shield nothing.  The rollup's
    grand total therefore equals the plain sum of top-level-attributed
    µJ — which is the energy model's own total, to the float digit.
    """
    by_id, children = _index_spans(spans)
    rollup: Dict[str, dict] = {}
    total = 0.0
    for record in by_id.values():
        uj = record.get("uj")
        if uj is None:
            continue
        claimed = sum(
            kid["uj"] for kid in children.get(record["span"], [])
            if kid.get("uj") is not None
        )
        self_uj = uj - claimed
        entry = rollup.setdefault(record["name"],
                                  {"count": 0, "self_uj": 0.0,
                                   "total_uj": 0.0})
        entry["count"] += 1
        entry["self_uj"] += self_uj
        entry["total_uj"] += uj
        parent = record.get("parent")
        parent_record = by_id.get(parent) if parent else None
        if parent_record is None or parent_record.get("uj") is None:
            total += uj            # top of its energy-attributed chain
    return {"by_name": rollup, "total_uj": total}


def top_slowest(spans: List[dict], n: int = 10) -> List[dict]:
    timed = [
        record for record in spans
        if record.get("start_s") is not None
        and record.get("end_s") is not None
    ]
    timed.sort(key=lambda r: r["end_s"] - r["start_s"], reverse=True)
    return timed[:n]


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------

def report_json(run_dir: str, top: int = 10) -> dict:
    from .quantile import snapshot_percentiles

    obs_dir = resolve_obs_dir(run_dir)
    spans = load_spans(obs_dir)
    energy = energy_rollup(spans)
    metrics = load_metrics(obs_dir)
    return {
        "obs_dir": obs_dir,
        "manifest": load_manifest(obs_dir),
        "span_rollup": name_rollup(spans),
        "energy_rollup": energy,
        "total_uj": energy["total_uj"],
        "slowest_spans": [
            {
                "name": record["name"],
                "span": record["span"],
                "key": record.get("key"),
                "wall_s": record["end_s"] - record["start_s"],
                "cycles": record.get("cycles"),
                "uj": record.get("uj"),
            }
            for record in top_slowest(spans, top)
        ],
        "metrics": metrics,
        "percentiles": snapshot_percentiles(metrics) if metrics else {},
    }


def render_report(run_dir: str, top: int = 10) -> str:
    data = report_json(run_dir, top)
    manifest = data["manifest"] or {}
    lines = [f"obs report: {data['obs_dir']}"]
    if manifest:
        lines.append(
            f"  run: {manifest.get('kind', '?')}  "
            f"seed {manifest.get('seed')}  "
            f"config {manifest.get('config_digest') or '-'}  "
            f"git {manifest.get('git_rev') or '-'}  "
            f"repro {manifest.get('repro_version')}"
        )
    rollup = data["span_rollup"]
    if rollup:
        lines.append(f"  {'span':<18}{'count':>7}{'wall_s':>9}"
                     f"{'cycles':>12}{'uJ':>12}")
        for name in sorted(rollup):
            entry = rollup[name]
            lines.append(
                f"  {name:<18}{entry['count']:>7}"
                f"{entry['wall_s']:>9.3f}{entry['cycles']:>12}"
                f"{entry['uj']:>12.3f}"
            )
    else:
        lines.append("  no spans recorded")
    energy = data["energy_rollup"]
    if energy["by_name"]:
        lines.append("  energy by span (self / total):")
        for name in sorted(energy["by_name"]):
            entry = energy["by_name"][name]
            lines.append(
                f"    {name:<16}{entry['self_uj']:>12.3f}"
                f"{entry['total_uj']:>12.3f} uJ  ({entry['count']}x)"
            )
        lines.append(f"  total energy: {energy['total_uj']:.3f} uJ")
    if data["slowest_spans"]:
        lines.append(f"  top {len(data['slowest_spans'])} slowest spans:")
        for record in data["slowest_spans"]:
            detail = f"{record['wall_s'] * 1e3:.2f} ms"
            if record["cycles"] is not None:
                detail += f", {record['cycles']} cycles"
            if record["uj"] is not None:
                detail += f", {record['uj']:.3f} uJ"
            lines.append(f"    {record['name']}[{record['key']}] "
                         f"({detail})")
    metrics = data["metrics"]
    if metrics:
        lines.append(f"  metrics: {len(metrics['metrics'])} famil"
                     f"{'y' if len(metrics['metrics']) == 1 else 'ies'} "
                     f"in {os.path.join(data['obs_dir'], METRICS_NAME)}")
    percentiles = data.get("percentiles") or {}
    if percentiles:
        lines.append("  histogram percentiles "
                     "(upper-bound interpolation, error <= one bucket):")
        for family in sorted(percentiles):
            for row in percentiles[family]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(row["labels"].items()))
                name = family + (f"{{{labels}}}" if labels else "")

                def q(key):
                    value = row.get(key)
                    return "-" if value is None else f"{value:.6g}"

                lines.append(
                    f"    {name:<44} p50 {q('p50'):>10}  "
                    f"p95 {q('p95'):>10}  p99 {q('p99'):>10}  "
                    f"(n={row['count']})")
    return "\n".join(lines)


def check_required(run_dir: str, required_spans: Optional[list] = None,
                   required_metrics: Optional[list] = None) -> dict:
    """``{"missing_spans": [...], "missing_metrics": [...]}``."""
    obs_dir = resolve_obs_dir(run_dir)
    seen = {record["name"] for record in load_spans(obs_dir)}
    snapshot = load_metrics(obs_dir) or {"metrics": {}}
    have_metrics = set(snapshot["metrics"])
    return {
        "missing_spans": sorted(set(required_spans or ()) - seen),
        "missing_metrics": sorted(
            set(required_metrics or ()) - have_metrics
        ),
    }


def render_diff(path_a: str, path_b: str,
                patterns: Optional[list] = None,
                max_regression: Optional[float] = None) -> Tuple[str, list]:
    """Diff two runs' metric snapshots.

    Returns ``(table_text, regressions)`` where ``regressions`` lists
    the rows whose percent increase exceeds ``max_regression`` (higher
    = worse, the convention for cycles/energy/retries).
    """
    snap_a = _snapshot_from(path_a)
    snap_b = _snapshot_from(path_b)
    rows = diff_snapshots(snap_a, snap_b, patterns)
    lines = [f"obs diff: a={path_a}  b={path_b}"
             + (f"  (filter: {','.join(patterns)})" if patterns else "")]
    if not rows:
        lines.append("  no matching metrics")
        return "\n".join(lines), []
    lines.append(f"  {'metric':<44}{'a':>14}{'b':>14}"
                 f"{'delta':>14}{'pct':>9}")
    regressions = []
    for row in rows:
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(row["labels"].items()))
        name = row["metric"] + (f"{{{labels}}}" if labels else "")
        pct = "" if row["pct"] is None else f"{row['pct']:+8.2f}%"

        def fmt(value):
            return "-" if value is None else f"{value:.6g}"

        lines.append(f"  {name:<44}{fmt(row['a']):>14}"
                     f"{fmt(row['b']):>14}{fmt(row['delta']):>14}"
                     f"{pct:>9}")
        if (max_regression is not None and row["pct"] is not None
                and row["pct"] > max_regression):
            regressions.append(row)
    if max_regression is not None:
        if regressions:
            worst = max(regressions, key=lambda r: r["pct"])
            lines.append(
                f"  REGRESSION: {len(regressions)} metric(s) above "
                f"+{max_regression:g}% (worst: {worst['metric']} "
                f"{worst['pct']:+.2f}%)"
            )
        else:
            lines.append(
                f"  ok: no metric above +{max_regression:g}%"
            )
    return "\n".join(lines), regressions
