"""Crash flight recorder: the last N spans, dumped at the disaster.

A supervised worker that dies — chaos kill, watchdog timeout, power
loss — takes its in-flight telemetry with it; the coordinator only
learns *that* it died, not what it was doing.  The flight recorder
closes that gap the way an aircraft's does: every finished span/event
record also lands in a bounded ring buffer
(:class:`FlightRecorder`), and on the way down the holder dumps the
ring via :func:`~repro.obs.metrics.atomic_write_bytes` to a
deterministically named ``flight-<tag>.json`` in the obs directory.

Dump sites (each states its reason in the payload):

* ``chaos-kill`` — the soak chaos hook, just before ``os._exit``;
* ``exception`` — :func:`repro.obs.runtime.shard_scope` when the
  shard body raises;
* ``watchdog`` — the :class:`~repro.campaign.supervisor.ShardSupervisor`
  after killing a hung worker (coordinator-side: the worker is gone,
  so the coordinator dumps its own recent view plus the failure
  context);
* ``power-loss`` — :func:`repro.intermittent.engine
  .run_intermittent_session` when a session exhausts its power-cycle
  budget and aborts.

Dumps are deterministic: records are the canonical span projection
(wall clock and pid stripped, exactly like
:func:`repro.obs.report.canonical_span_tree`), the ring's content at
a chaos kill is a pure function of the seeded crash point, and the
file name is derived from the shard/session index — so two same-seed
runs crash-dump byte-identical black boxes, which the replay tests
pin.  ``campaign doctor`` and ``obs tail`` surface them.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional, Tuple

from .metrics import atomic_write_bytes

__all__ = ["FLIGHT_SCHEMA", "FLIGHT_PREFIX", "DEFAULT_CAPACITY",
           "FlightRecorder", "strip_record", "flight_path",
           "list_flight_dumps", "load_flight_dumps"]

FLIGHT_SCHEMA = 1
FLIGHT_PREFIX = "flight-"
DEFAULT_CAPACITY = 64

#: Record fields that depend on the wall clock or the process, not the
#: seed — stripped so dumps are byte-comparable across replays.
_NONDETERMINISTIC_FIELDS = ("start_s", "end_s", "pid")


def strip_record(record: dict) -> dict:
    """The deterministic projection of one span record."""
    return {key: record[key] for key in sorted(record)
            if key not in _NONDETERMINISTIC_FIELDS}


def flight_path(obs_dir: str, tag: str) -> str:
    return os.path.join(obs_dir, f"{FLIGHT_PREFIX}{tag}.json")


class FlightRecorder:
    """A bounded ring of recent span/event records.

    Attach via :class:`repro.obs.tracing.Tracer`'s ``on_record`` hook
    (the runtime does this); the ring holds the last ``capacity``
    finished records in completion order.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, record: dict) -> None:
        self._ring.append(record)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> List[dict]:
        """The ring's records, deterministically projected."""
        return [strip_record(record) for record in self._ring]

    def dump(self, path: str, reason: str,
             context: Optional[dict] = None) -> str:
        """Atomically write the black box; returns the path."""
        payload = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "context": dict(sorted((context or {}).items())),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "records": self.snapshot(),
        }
        atomic_write_bytes(path, json.dumps(payload, indent=1,
                                            sort_keys=True).encode())
        return path


def list_flight_dumps(obs_dir: str) -> List[str]:
    """Dump file names under ``obs_dir``, sorted (deterministic)."""
    if not os.path.isdir(obs_dir):
        return []
    return sorted(
        name for name in os.listdir(obs_dir)
        if name.startswith(FLIGHT_PREFIX) and name.endswith(".json")
    )


def load_flight_dumps(obs_dir: str) -> List[Tuple[str, dict]]:
    """``[(file_name, payload)]`` for every readable dump, in name
    order; unreadable (torn) dumps are skipped like torn span lines."""
    dumps = []
    for name in list_flight_dumps(obs_dir):
        try:
            with open(os.path.join(obs_dir, name), "r",
                      encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if payload.get("schema") == FLIGHT_SCHEMA:
            dumps.append((name, payload))
    return dumps
