"""Deterministic alert rules over ordered telemetry streams.

An :class:`AlertRule` is declarative — *which* series, *what* shape of
badness, *when* to clear — and an :class:`AlertEngine` evaluates a
rulebook over an ordered event stream (see
:mod:`repro.obs.stream`), emitting typed firing records.  Four rule
kinds cover the fleet's failure grammar:

* ``threshold`` — a sample exceeds a level (e.g. the derived
  ``session_uj_p99`` regressing past the honest-session tail);
* ``window_sum`` — the per-source sum inside one virtual window
  exceeds a level (e.g. µJ drained from one tag in one 0.5 s window
  exceeding the :class:`~repro.adversary.defense.EnergyBudget` cap —
  the battery-depletion signature, detected from telemetry alone);
* ``rate_of_change`` — a window sum exceeds ``threshold ×`` the
  previous window's sum (e.g. a shed-rate spike under an admission
  flood);
* ``invariant`` — any non-zero sample fires immediately (e.g. the
  ``nonce_reuse == 0`` invariant of :mod:`repro.intermittent`).

**Hysteresis.** A rule fires only after ``sustain`` consecutive
breaching evaluations and clears only when the value falls below
``clear_ratio × threshold`` — so a value oscillating at the line
produces one firing/clearing pair, not one per window.

**Determinism.** The engine enforces the stream's total order
(non-decreasing ``(vt, source, session)`` keys — feeding it unsorted
events raises :class:`AlertOrderingError` instead of silently
producing schedule-dependent logs), evaluates rules in rulebook order
and sources in first-seen (= sorted-stream) order, and rounds every
serialized float once.  Same seed, same rulebook → byte-identical
``alerts.json``, whatever the worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import atomic_write_bytes

__all__ = ["ALERTS_NAME", "ALERTS_SCHEMA", "RULE_KINDS", "SEVERITIES",
           "AlertRule", "AlertRuleError", "AlertOrderingError",
           "AlertEngine", "default_rulebook", "write_alert_log",
           "load_alert_log", "render_alert_log"]

ALERTS_NAME = "alerts.json"
ALERTS_SCHEMA = 1

RULE_KINDS = ("threshold", "rate_of_change", "window_sum", "invariant")
SEVERITIES = ("info", "warning", "critical")


class AlertRuleError(ValueError):
    """A rule was declared inconsistently."""


class AlertOrderingError(RuntimeError):
    """Events reached the engine out of virtual-time order."""


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; frozen so rulebooks are hashable specs."""

    name: str
    series: str
    kind: str
    threshold: float = 0.0
    window_s: float = 0.5
    clear_ratio: float = 0.8
    sustain: int = 1
    severity: str = "warning"
    description: str = ""

    def __post_init__(self):
        if self.kind not in RULE_KINDS:
            raise AlertRuleError(
                f"rule {self.name!r}: unknown kind {self.kind!r}; "
                f"known: {', '.join(RULE_KINDS)}")
        if self.severity not in SEVERITIES:
            raise AlertRuleError(
                f"rule {self.name!r}: unknown severity "
                f"{self.severity!r}; known: {', '.join(SEVERITIES)}")
        if self.window_s <= 0:
            raise AlertRuleError(
                f"rule {self.name!r}: window must be positive")
        if not 0.0 <= self.clear_ratio <= 1.0:
            raise AlertRuleError(
                f"rule {self.name!r}: clear ratio must be in [0, 1]")
        if self.sustain < 1:
            raise AlertRuleError(
                f"rule {self.name!r}: sustain must be at least 1")
        if self.kind != "invariant" and self.threshold <= 0:
            raise AlertRuleError(
                f"rule {self.name!r}: threshold must be positive")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": self.series,
            "kind": self.kind,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "clear_ratio": self.clear_ratio,
            "sustain": self.sustain,
            "severity": self.severity,
            "description": self.description,
        }


class _RuleSourceState:
    __slots__ = ("window", "acc", "prev_sum", "streak", "firing")

    def __init__(self):
        self.window: Optional[int] = None
        self.acc = 0.0
        self.prev_sum: Optional[float] = None
        self.streak = 0
        self.firing = False


class AlertEngine:
    """Evaluates a rulebook over one ordered telemetry stream."""

    def __init__(self, rules: Sequence[AlertRule],
                 window_s: float = 0.5):
        self.rules = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise AlertRuleError("duplicate rule names in rulebook")
        self.window_s = window_s
        self._states: Dict[Tuple[str, str], _RuleSourceState] = {}
        self._records: List[dict] = []
        self._last_key: Optional[tuple] = None
        self._finalized = False

    # -- the fold ------------------------------------------------------

    def observe(self, event: dict) -> None:
        """Fold one event; events MUST arrive in sorted stream order."""
        if self._finalized:
            raise AlertOrderingError("engine already finalized")
        key = (event["vt"], event["source"], event["session"])
        if self._last_key is not None and key < self._last_key:
            raise AlertOrderingError(
                f"event {key} arrived after {self._last_key} — feed "
                "the engine through repro.obs.stream.sort_events")
        self._last_key = key
        for rule in self.rules:
            value = event["series"].get(rule.series)
            if value is None:
                continue
            self._observe_rule(rule, event, value)

    def _observe_rule(self, rule: AlertRule, event: dict,
                      value: float) -> None:
        state = self._state(rule, event["source"])
        if rule.kind == "invariant":
            if value != 0 and not state.firing:
                state.firing = True
                self._emit(rule, event["source"], "firing",
                           self._window(rule, event["vt"]),
                           event["vt"], value)
            return
        if rule.kind == "threshold":
            self._evaluate(rule, state, event["source"],
                           self._window(rule, event["vt"]),
                           event["vt"], value)
            return
        # window kinds: accumulate, evaluate when the window closes
        window = self._window(rule, event["vt"])
        if state.window is None:
            state.window = window
            state.acc = value
        elif window > state.window:
            self._close_window(rule, state, event["source"])
            state.window = window
            state.acc = value
        else:
            state.acc += value

    def _close_window(self, rule: AlertRule, state: _RuleSourceState,
                      source: str) -> None:
        window_sum = state.acc
        vt = (state.window + 1) * rule.window_s
        if rule.kind == "window_sum":
            self._evaluate(rule, state, source, state.window, vt,
                           window_sum)
        else:   # rate_of_change: this window vs the previous one
            prev = state.prev_sum
            if prev is not None and prev > 0:
                ratio = window_sum / prev
                self._evaluate(rule, state, source, state.window, vt,
                               ratio)
            state.prev_sum = window_sum
            return
        state.prev_sum = window_sum

    def _evaluate(self, rule: AlertRule, state: _RuleSourceState,
                  source: str, window: int, vt: float,
                  value: float) -> None:
        if value > rule.threshold:
            state.streak += 1
            if not state.firing and state.streak >= rule.sustain:
                state.firing = True
                self._emit(rule, source, "firing", window, vt, value)
        elif value <= rule.threshold * rule.clear_ratio:
            state.streak = 0
            if state.firing:
                state.firing = False
                self._emit(rule, source, "cleared", window, vt, value)
        # Between clear line and threshold: hysteresis band — hold
        # state, but a breach streak is no longer consecutive.
        else:
            state.streak = 0

    def _state(self, rule: AlertRule, source: str) -> _RuleSourceState:
        key = (rule.name, source)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _RuleSourceState()
        return state

    def _window(self, rule: AlertRule, vt: float) -> int:
        return int(vt / rule.window_s + 1e-9)

    def _emit(self, rule: AlertRule, source: str, transition: str,
              window: int, vt: float, value: float) -> None:
        self._records.append({
            "rule": rule.name,
            "series": rule.series,
            "kind": rule.kind,
            "severity": rule.severity,
            "source": source,
            "state": transition,
            "window": window,
            "vt": round(vt, 9),
            "value": round(value, 9),
            "threshold": rule.threshold,
        })

    def finalize(self) -> List[dict]:
        """Close every open window and return the full record log."""
        if not self._finalized:
            self._finalized = True
            for (rule_name, source), state in self._states.items():
                if state.window is None:
                    continue
                rule = next(r for r in self.rules
                            if r.name == rule_name)
                if rule.kind in ("window_sum", "rate_of_change"):
                    self._close_window(rule, state, source)
        return list(self._records)

    @property
    def firings(self) -> List[dict]:
        return [r for r in self._records if r["state"] == "firing"]


def default_rulebook(cap_uj: float = 150.0, window_s: float = 0.5,
                     p99_uj: float = 110.0, drain_surge: float = 4.0,
                     drain_sustain: int = 2,
                     shed_ratio: float = 3.0) -> Tuple[AlertRule, ...]:
    """The fleet's stock rulebook, sized for the TOY-B17 attack lab.

    Calibrated against measured lab traffic (bench T1 pins both
    sides).  An honest TOY-B17 session is a short burst: ~32 µJ median
    (≤ ~97 µJ p99 under 10 % loss) drained in ~25 ms.  A depletion
    flood inverts that shape — every bogus/replay session drags the
    tag through retransmission ladders and timeouts, costing
    127–240 µJ *per session* over ~3.3 s (324 µJ median under
    amplification).  Hence:

    * ``energy_session_p99`` at 110 µJ is the primary flood detector:
      above the honest tail (~97 µJ), below the cheapest flood session
      (~127 µJ), and per-session cost is the one signature arrival
      patterns cannot fake.
    * ``window_drain_exceeds_cap`` watches ``drain_uj`` — session
      energy pro-rated over elapsed windows by
      :func:`repro.obs.stream.spread_drain_events`, the same
      charge-as-you-go accounting
      :class:`~repro.adversary.defense.EnergyBudget` uses.  Honest
      arrival bursts legitimately exceed the raw 150 µJ cap (measured
      peak: 443 µJ in the lab's window 0 backlog — exactly the
      traffic the budget *sheds* when enabled), so the alert line
      sits at ``drain_surge ×`` cap, sustained for ``drain_sustain``
      windows: amplification-class burn, not admission-control.
    * a shed-rate spike and the ``nonce_reuse == 0`` invariant from
      :mod:`repro.intermittent` round out the book.

    With these defaults the book detects an undefended bogus/replay/
    amplification flood from telemetry alone and stays silent on the
    defense-free all-honest baseline.
    """
    return (
        AlertRule(
            name="window_drain_exceeds_cap",
            series="drain_uj", kind="window_sum",
            threshold=cap_uj * drain_surge, window_s=window_s,
            sustain=drain_sustain,
            severity="critical",
            description="per-window uJ drained from one tag exceeds "
                        f"{drain_surge:g}x the EnergyBudget cap for "
                        f"{drain_sustain} consecutive windows — "
                        "sustained-burn signature",
        ),
        AlertRule(
            name="energy_session_p99",
            series="session_uj_p99", kind="threshold",
            threshold=p99_uj, window_s=window_s,
            severity="critical",
            description="fleet-wide p99 of per-session tag uJ "
                        "regressed past the honest tail — "
                        "battery-depletion signature",
        ),
        AlertRule(
            name="shed_rate_spike",
            series="shed", kind="rate_of_change",
            threshold=shed_ratio, window_s=window_s,
            severity="warning",
            description="per-window shed count grew faster than "
                        f"{shed_ratio:g}x window over window",
        ),
        AlertRule(
            name="nonce_reuse_invariant",
            series="nonce_reuse", kind="invariant",
            severity="critical",
            description="a nonce was used twice on the wire — the "
                        "commit-before-use vault invariant is broken",
        ),
    )


def write_alert_log(path: str, rules: Sequence[AlertRule],
                    records: Sequence[dict]) -> dict:
    """Persist the typed alert log; returns the written payload."""
    by_rule: Dict[str, int] = {}
    for record in records:
        if record["state"] == "firing":
            by_rule[record["rule"]] = by_rule.get(record["rule"], 0) + 1
    payload = {
        "schema": ALERTS_SCHEMA,
        "rules": [rule.to_dict() for rule in rules],
        "records": list(records),
        "firings": sum(by_rule.values()),
        "firings_by_rule": {k: by_rule[k] for k in sorted(by_rule)},
    }
    atomic_write_bytes(path, json.dumps(payload, indent=1,
                                        sort_keys=True).encode())
    return payload


def load_alert_log(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    if payload.get("schema") != ALERTS_SCHEMA:
        raise AlertRuleError(
            f"alert log schema v{payload.get('schema')} unsupported "
            f"(reader is v{ALERTS_SCHEMA})")
    return payload


def render_alert_log(payload: dict) -> str:
    """The human view of one alert log."""
    records = payload.get("records", [])
    firings = payload.get("firings", 0)
    lines = [f"alerts: {firings} firing(s), "
             f"{len(payload.get('rules', []))} rule(s) evaluated"]
    if not records:
        lines.append("  no alerts — every rule stayed silent")
        return "\n".join(lines)
    lines.append(f"  {'rule':<28}{'sev':<10}{'state':<9}"
                 f"{'source':<14}{'window':>7}{'value':>12}"
                 f"{'threshold':>11}")
    for record in records:
        lines.append(
            f"  {record['rule']:<28}{record['severity']:<10}"
            f"{record['state']:<9}{record['source']:<14}"
            f"{record['window']:>7}{record['value']:>12.3f}"
            f"{record['threshold']:>11.3f}"
        )
    by_rule = payload.get("firings_by_rule", {})
    if by_rule:
        parts = ", ".join(f"{k} x{v}" for k, v in sorted(by_rule.items()))
        lines.append(f"  firing totals: {parts}")
    return "\n".join(lines)
