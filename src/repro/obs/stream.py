"""Streaming telemetry: ordered metric deltas folded in virtual time.

The post-hoc half of :mod:`repro.obs` merges finished shard snapshots;
this module is the *live* half.  Workers emit one *telemetry event*
per session — a tiny, seeded metric delta stamped with the session's
**virtual** start time and its source (the tag/cohort it belongs to)
— and a central :class:`StreamAggregator` folds the events into live
counters, per-source window sums and bucketed histograms with derived
p50/p95/p99.

Determinism is by construction, the same argument every soak summary
makes:

* an event is a pure function of ``(spec, session_index)`` — virtual
  timestamps come from the simulation clock, never the wall;
* the fold order is the total order ``(vt, source, session)``, which
  :func:`sort_events` imposes regardless of which worker produced
  which event, so float accumulation order — and therefore the live
  snapshot's bytes — is independent of worker count, scheduling and
  chaos-kill history;
* every serialized float is rounded once, at event creation.

:func:`run_pipeline` is the one-call composition the soaks use: sort,
fold, derive per-window tail statistics, and evaluate an alert
rulebook (:mod:`repro.obs.alerts`) over the same ordered stream.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import atomic_write_bytes
from .quantile import PERCENTILES, percentiles_from_counts

__all__ = ["TELEMETRY_NAME", "TELEMETRY_SCHEMA", "make_event",
           "spread_drain_events", "sort_events", "event_sort_key",
           "StreamAggregator", "run_pipeline",
           "render_stream_exposition", "write_telemetry"]

TELEMETRY_NAME = "telemetry.json"
TELEMETRY_SCHEMA = 1

#: µJ buckets for per-session energy histograms: spans the ~3 µJ of a
#: refused wake through the hundreds of µJ of a flooded undefended tag.
DEFAULT_UJ_BUCKETS: Tuple[float, ...] = (
    1.0, 3.0, 10.0, 30.0, 60.0, 100.0, 150.0, 300.0, 600.0, 1000.0,
)

#: The synthetic source derived fleet-wide series are attributed to.
FLEET_SOURCE = "_fleet"


def make_event(vt: float, source: str, session: int, **series) -> dict:
    """One telemetry event; every float rounded once, here."""
    return {
        "vt": round(float(vt), 9),
        "source": str(source),
        "session": int(session),
        "series": {name: round(float(value), 9)
                   for name, value in sorted(series.items())},
    }


def spread_drain_events(vt: float, source: str, session: int,
                        uj: float, elapsed_s: float,
                        window_s: float = 0.5,
                        series: str = "drain_uj") -> List[dict]:
    """Spread one session's µJ over the virtual windows it spans.

    A per-session event attributes the whole charge to the start
    window, which makes burst *arrival* look like burst *drain*; the
    battery does not see it that way.  This helper emits one event per
    overlapped window, each carrying the session's energy pro-rated by
    the time the session spent inside that window — the same
    charge-as-you-go accounting
    :class:`repro.adversary.defense.EnergyBudget` applies, so a
    window-sum alert over the resulting series names the same window
    the budget would have capped.  Per-window shares are rounded at
    event creation, so the series sum can differ from ``uj`` by
    rounding dust.
    """
    if uj <= 0:
        return []
    if elapsed_s <= 0:
        return [make_event(vt, source, session, **{series: uj})]
    end = vt + elapsed_s
    events = []
    window = int(vt / window_s + 1e-9)
    while True:
        window_start = window * window_s
        window_end = window_start + window_s
        lo = max(vt, window_start)
        hi = min(end, window_end)
        share = uj * (hi - lo) / elapsed_s
        if share > 0:
            events.append(make_event(lo, source, session,
                                     **{series: share}))
        if window_end >= end:
            return events
        window += 1


def event_sort_key(event: dict) -> tuple:
    return (event["vt"], event["source"], event["session"])


def sort_events(events) -> List[dict]:
    """The canonical fold order — total, worker-count invariant."""
    return sorted(events, key=event_sort_key)


class _SeriesState:
    __slots__ = ("count", "sum", "min", "max", "bucket_counts",
                 "window_sums", "peak_window", "peak_source")

    def __init__(self, n_buckets: int):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bucket_counts = [0] * n_buckets
        #: open window accumulator per source: {source: [window, sum]}
        self.window_sums: Dict[str, list] = {}
        self.peak_window: Optional[Tuple[int, float]] = None
        self.peak_source: Optional[str] = None


class StreamAggregator:
    """Folds ordered telemetry events into live fleet statistics.

    Per series: count/sum/min/max, a fixed-bucket histogram (so tail
    quantiles derive exactly like :class:`~.metrics.Histogram`'s), and
    per-source window sums on the virtual clock (``window = floor(vt /
    window_s)`` — the same slicing as
    :class:`repro.adversary.defense.EnergyBudget`, so a drain alert's
    window index names the same window the budget would have capped).
    """

    def __init__(self, window_s: float = 0.5,
                 buckets: Sequence[float] = DEFAULT_UJ_BUCKETS):
        if window_s <= 0:
            raise ValueError("window width must be positive")
        self.window_s = float(window_s)
        self.buckets = tuple(buckets)
        self.events = 0
        self.sources: set = set()
        self._series: Dict[str, _SeriesState] = {}

    def window_of(self, vt: float) -> int:
        return int(vt / self.window_s + 1e-9)

    def fold(self, event: dict) -> None:
        self.events += 1
        self.sources.add(event["source"])
        window = self.window_of(event["vt"])
        for name, value in event["series"].items():
            state = self._series.get(name)
            if state is None:
                state = self._series[name] = _SeriesState(
                    len(self.buckets))
            state.count += 1
            state.sum += value
            state.min = value if state.min is None \
                else min(state.min, value)
            state.max = value if state.max is None \
                else max(state.max, value)
            for i, le in enumerate(self.buckets):
                if value <= le:
                    state.bucket_counts[i] += 1
                    break
            open_window = state.window_sums.get(event["source"])
            if open_window is None or open_window[0] != window:
                state.window_sums[event["source"]] = [window, value]
            else:
                open_window[1] += value
            current = state.window_sums[event["source"]][1]
            if state.peak_window is None \
                    or current > state.peak_window[1]:
                state.peak_window = (window, current)
                state.peak_source = event["source"]

    def quantile(self, series: str, q: float) -> Optional[float]:
        from .quantile import estimate_quantile

        state = self._series.get(series)
        if state is None or state.count == 0:
            return None
        return estimate_quantile(self.buckets, state.bucket_counts,
                                 state.count, state.min, state.max, q)

    def snapshot(self) -> dict:
        """The live snapshot: JSON-serializable, byte-stable."""
        series = {}
        for name in sorted(self._series):
            state = self._series[name]
            entry = {
                "count": state.count,
                "sum": round(state.sum, 6),
                "min": state.min,
                "max": state.max,
                "bucket_counts": list(state.bucket_counts),
            }
            entry.update(percentiles_from_counts(
                self.buckets, state.bucket_counts, state.count,
                state.min, state.max, PERCENTILES))
            if state.peak_window is not None:
                entry["peak_window"] = {
                    "window": state.peak_window[0],
                    "sum": round(state.peak_window[1], 6),
                    "source": state.peak_source,
                }
            series[name] = entry
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_s": self.window_s,
            "buckets": list(self.buckets),
            "events": self.events,
            "sources": sorted(self.sources),
            "series": series,
        }


def run_pipeline(events, rules=(), *, window_s: float = 0.5,
                 buckets: Sequence[float] = DEFAULT_UJ_BUCKETS,
                 tail_series: str = "session_uj",
                 aggregator: Optional[StreamAggregator] = None,
                 ) -> Tuple[dict, list]:
    """Sort + fold + derive + alert, in one deterministic pass.

    Returns ``(live_snapshot, alert_records)``.  At every virtual
    window boundary the pipeline emits a derived fleet-wide sample
    ``<tail_series>_p99`` (the running deep-tail estimate) *before*
    folding the first event of the new window, so threshold rules on
    the tail see exactly the state a live dashboard would have shown
    when the window closed.

    Pass ``aggregator`` to fold into an existing
    :class:`StreamAggregator` (e.g. one already attached to a live
    ``/metrics`` exporter) instead of a fresh one; its ``window_s``
    then drives the boundary emission.
    """
    from .alerts import AlertEngine

    if aggregator is None:
        aggregator = StreamAggregator(window_s=window_s, buckets=buckets)
    window_s = aggregator.window_s
    engine = AlertEngine(rules, window_s=window_s)
    derived = f"{tail_series}_p99"
    last_window: Optional[int] = None
    for event in sort_events(events):
        window = aggregator.window_of(event["vt"])
        if last_window is not None and window > last_window:
            p99 = aggregator.quantile(tail_series, 0.99)
            if p99 is not None:
                boundary = make_event(window * window_s, FLEET_SOURCE,
                                      -1, **{derived: p99})
                aggregator.fold(boundary)
                engine.observe(boundary)
        last_window = window
        aggregator.fold(event)
        engine.observe(event)
    if last_window is not None:
        p99 = aggregator.quantile(tail_series, 0.99)
        if p99 is not None:
            boundary = make_event((last_window + 1) * window_s,
                                  FLEET_SOURCE, -1, **{derived: p99})
            aggregator.fold(boundary)
            engine.observe(boundary)
    return aggregator.snapshot(), engine.finalize()


def render_stream_exposition(snapshot: dict) -> str:
    """The live snapshot as Prometheus text (``repro_stream_*``).

    One gauge family per telemetry series — count, sum, min/max and
    the derived percentiles — so a mid-flight scrape of ``/metrics``
    carries the streaming aggregator's view next to the registry's
    families.
    """
    from .metrics import _escape_label_value

    lines: List[str] = []
    for name, entry in sorted(snapshot.get("series", {}).items()):
        family = f"repro_stream_{name}"
        lines.append(f"# HELP {family} live telemetry series {name}")
        lines.append(f"# TYPE {family} gauge")
        for stat in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            value = entry.get(stat)
            if value is None:
                continue
            stat_label = _escape_label_value(stat)
            lines.append(f'{family}{{stat="{stat_label}"}} {value!r}')
        peak = entry.get("peak_window")
        if peak is not None:
            source = _escape_label_value(str(peak["source"]))
            lines.append(
                f'{family}{{stat="peak_window_sum",'
                f'source="{source}",'
                f'window="{peak["window"]}"}} {peak["sum"]!r}')
    return "\n".join(lines) + ("\n" if lines else "")


def write_telemetry(path: str, snapshot: dict) -> None:
    """Atomically persist a live snapshot as canonical JSON."""
    atomic_write_bytes(path, json.dumps(snapshot, indent=1,
                                        sort_keys=True).encode())
