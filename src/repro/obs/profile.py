"""Opt-in perf_counter profiling hooks for the hot paths.

The simulator's inner loops (digit-serial multiply, ladder step,
streaming-attack update, frame codec) are instrumented with
``if profile.enabled(): ...`` guards that cost one global read when
profiling is off.  When the runtime is configured with
``profile=True`` (CLI ``--obs-profile``), each section feeds a
``repro_profile_<section>_seconds`` histogram in the same registry
every other metric lives in, so ``obs report``/``obs diff`` see
profiling data with no extra machinery.

Section timings are wall-clock and therefore excluded from the
determinism guarantees (the ``_seconds`` suffix is what
:func:`repro.obs.metrics.strip_wall_metrics` keys on).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from . import runtime as _runtime
from .metrics import DEFAULT_LATENCY_BUCKETS

__all__ = ["enabled", "observe", "timed"]


def enabled() -> bool:
    """Cheap hot-path guard: is a profiling runtime active?"""
    rt = _runtime.current()
    return rt is not None and rt.profile


def observe(section: str, seconds: float) -> None:
    """Record one timed section into its latency histogram."""
    rt = _runtime.current()
    if rt is None or not rt.profile:
        return
    rt.registry.histogram(
        f"repro_profile_{section}_seconds",
        help=f"wall time of the {section} hot path",
        buckets=DEFAULT_LATENCY_BUCKETS,
    ).observe(seconds)


@contextmanager
def timed(section: str):
    """``with profile.timed("frame_encode"):`` around a cold-ish path.

    For the truly hot paths prefer the explicit guard —

    >>> if profile.enabled():
    ...     t0 = perf_counter(); work(); profile.observe(s, perf_counter() - t0)

    — which costs nothing when profiling is off.
    """
    if not enabled():
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        observe(section, perf_counter() - t0)
