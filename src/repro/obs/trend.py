"""Bench trajectory: fold ``BENCH_*.json`` files into one trend log.

The benchmark suite writes machine-readable headline figures to
``results/BENCH_<name>.json``, but each file only holds the *latest*
run — a regression that lands between two bench refreshes is invisible
unless someone diffs git history by hand.  This module folds every
``BENCH_*.json`` under a results directory into a single
``BENCH_trend.json`` trajectory:

* :func:`headline_figures` projects one bench payload to its scalar
  headline figures — every top-level number, plus per-field sums over
  a ``cells`` table (so grid benches contribute stable aggregates
  rather than a figure per cell);
* :func:`fold_trend` appends one history entry per bench **only when
  the figures changed** — folding twice over the same results is a
  no-op, so the trend file is deterministic and needs no wall-clock
  timestamps (pass ``label`` — a git rev, a date — to name an entry);
* :func:`render_trend` renders the latest figures per bench with
  percent deltas against the previous history entry.

``python -m repro obs trend`` is the CLI wrapper; CI and release
checklists run it after a bench refresh so the checked-in trend file
records the trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .metrics import atomic_write_bytes

__all__ = ["TREND_NAME", "TREND_SCHEMA", "bench_name",
           "headline_figures", "load_trend", "fold_trend",
           "render_trend", "write_trend"]

TREND_NAME = "BENCH_trend.json"
TREND_SCHEMA = 1

_BENCH_PREFIX = "BENCH_"


def bench_name(file_name: str) -> Optional[str]:
    """``BENCH_adversary.json -> "adversary"``; None for non-bench
    files and for the trend log itself."""
    if not (file_name.startswith(_BENCH_PREFIX)
            and file_name.endswith(".json")):
        return None
    if file_name == TREND_NAME:
        return None
    return file_name[len(_BENCH_PREFIX):-len(".json")]


def headline_figures(payload: dict) -> Dict[str, float]:
    """The scalar headline figures of one bench payload.

    Top-level ints/floats pass through; a ``cells`` list contributes
    ``cells`` (the row count) and ``cells.<field>`` sums for every
    numeric cell field, so grid benches fold to a fixed-size figure
    set regardless of grid shape.  Floats are rounded to 6 decimals
    so the trend file is byte-stable.
    """
    figures: Dict[str, float] = {}
    for key, value in payload.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            figures[key] = round(float(value), 6)
    cells = payload.get("cells")
    if isinstance(cells, list) and cells:
        figures["cells"] = float(len(cells))
        sums: Dict[str, float] = {}
        for cell in cells:
            if not isinstance(cell, dict):
                continue
            for key, value in cell.items():
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                sums[key] = sums.get(key, 0.0) + float(value)
        for key in sorted(sums):
            figures[f"cells.{key}"] = round(sums[key], 6)
    return dict(sorted(figures.items()))


def load_trend(results_dir: str) -> dict:
    """The existing trend log, or a fresh empty one."""
    path = os.path.join(results_dir, TREND_NAME)
    if not os.path.exists(path):
        return {"schema": TREND_SCHEMA, "benches": {}}
    with open(path, "r", encoding="utf-8") as f:
        trend = json.load(f)
    if trend.get("schema") != TREND_SCHEMA:
        raise ValueError(
            f"trend schema v{trend.get('schema')} unsupported "
            f"(reader is v{TREND_SCHEMA})")
    return trend


def fold_trend(results_dir: str,
               label: Optional[str] = None) -> Tuple[dict, List[str]]:
    """Fold every ``BENCH_*.json`` into the trend; ``(trend, folded)``.

    ``folded`` names the benches whose figures changed (and therefore
    gained a history entry); an unchanged bench keeps its history
    untouched, so the fold is idempotent.
    """
    trend = load_trend(results_dir)
    benches = trend.setdefault("benches", {})
    folded: List[str] = []
    for file_name in sorted(os.listdir(results_dir)):
        name = bench_name(file_name)
        if name is None:
            continue
        try:
            with open(os.path.join(results_dir, file_name), "r",
                      encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        figures = headline_figures(payload)
        if not figures:
            continue
        history = benches.setdefault(name, {"history": []})["history"]
        if history and history[-1]["figures"] == figures:
            continue
        entry: dict = {"figures": figures}
        if label is not None:
            entry["label"] = str(label)
        history.append(entry)
        folded.append(name)
    return trend, folded


def write_trend(results_dir: str, trend: dict) -> str:
    path = os.path.join(results_dir, TREND_NAME)
    atomic_write_bytes(path, json.dumps(trend, indent=1,
                                        sort_keys=True).encode())
    return path


def render_trend(trend: dict) -> str:
    """Latest figures per bench, with deltas vs the previous entry."""
    benches = trend.get("benches", {})
    if not benches:
        return "bench trend: no benches folded yet"
    lines = [f"bench trend: {len(benches)} bench(es)"]
    for name in sorted(benches):
        history = benches[name].get("history", [])
        if not history:
            continue
        latest = history[-1]
        previous = history[-2] if len(history) > 1 else None
        label = latest.get("label")
        lines.append(
            f"  {name}: {len(history)} entr"
            f"{'y' if len(history) == 1 else 'ies'}"
            + (f" (latest: {label})" if label else ""))
        prev_figures = previous["figures"] if previous else {}
        for key, value in latest["figures"].items():
            delta = ""
            if key in prev_figures:
                before = prev_figures[key]
                if before:
                    pct = (value - before) / abs(before) * 100.0
                    delta = f"  ({pct:+.2f}% vs prev)"
                elif value != before:
                    delta = f"  (was {before:g})"
            lines.append(f"    {key:<32}{value:>16g}{delta}")
    return "\n".join(lines)
