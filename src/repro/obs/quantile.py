"""Fixed-bucket quantile estimation for obs histograms.

The metric layer's histograms (:class:`repro.obs.metrics.Histogram`)
store non-cumulative counts over fixed upper-bound buckets plus exact
``min``/``max``/``sum``/``count`` — deliberately no raw samples, so a
million-session soak costs a few hundred bytes of state.  Percentiles
are therefore *estimates*, reconstructed by upper-bound interpolation:

1. the target rank is ``ceil(q * count)`` (the smallest sample index
   whose cumulative probability reaches ``q``);
2. walk the cumulative bucket counts to the bucket containing that
   rank; the overflow bucket (samples above the last upper bound) is
   bounded by the exact observed ``max``;
3. interpolate linearly between the bucket's lower and upper edge at
   the rank's fractional position, then clamp to the exact observed
   ``[min, max]``.

**Error bound** (documented, tested): the true sample at the target
rank lies inside the same bucket, so the estimate is off by at most
one bucket width — ``hi - lo`` of the bucket the rank lands in (for
the overflow bucket, ``max - last_upper_bound``).  Estimates are
exact when the bucket degenerates (``min == max``, single-sample
buckets at the clamp edges) and never leave ``[min, max]``.

Everything here is pure arithmetic on snapshot-shaped data, so live
aggregators, reports and Prometheus exposition all derive the same
numbers from the same bytes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PERCENTILES", "estimate_quantile", "percentiles_from_counts",
           "percentiles_from_item", "snapshot_percentiles",
           "render_quantile_exposition"]

#: The default percentile set every renderer ships: median, tail, deep
#: tail — the three the alert rulebook and the soak summaries quote.
PERCENTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _percentile_key(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    scaled = q * 100.0
    if abs(scaled - round(scaled)) < 1e-9:
        return f"p{int(round(scaled))}"
    return f"p{scaled:g}"


def estimate_quantile(buckets: Sequence[float],
                      bucket_counts: Sequence[int],
                      count: int,
                      minimum: Optional[float],
                      maximum: Optional[float],
                      q: float) -> Optional[float]:
    """The q-quantile estimate of one histogram series, or None when
    the series is empty.

    ``buckets`` are the upper bounds (no ``+Inf``); ``bucket_counts``
    are non-cumulative and may sum to less than ``count`` — the
    difference is the implicit overflow bucket, whose upper edge is
    the exact ``maximum``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if count <= 0 or minimum is None or maximum is None:
        return None
    if minimum == maximum:
        return float(minimum)
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    lower = float(minimum)
    for upper, n in zip(buckets, bucket_counts):
        if n:
            if cumulative + n >= rank:
                lo = max(lower, float(minimum))
                hi = min(float(upper), float(maximum))
                if hi <= lo:
                    return max(float(minimum), min(float(maximum), lo))
                fraction = (rank - cumulative) / n
                return lo + fraction * (hi - lo)
            cumulative += n
        lower = float(upper)
    # Overflow bucket: between the last upper bound and the exact max.
    overflow = count - cumulative
    if overflow <= 0:
        return float(maximum)
    lo = max(float(buckets[-1]) if buckets else float(minimum),
             float(minimum))
    hi = float(maximum)
    if hi <= lo:
        return hi
    fraction = (rank - cumulative) / overflow
    return min(hi, lo + fraction * (hi - lo))


def percentiles_from_counts(buckets: Sequence[float],
                            bucket_counts: Sequence[int],
                            count: int,
                            minimum: Optional[float],
                            maximum: Optional[float],
                            qs: Sequence[float] = PERCENTILES,
                            ) -> Dict[str, Optional[float]]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` (values rounded to a
    stable 6 decimals so serialized summaries are byte-stable)."""
    out: Dict[str, Optional[float]] = {}
    for q in qs:
        value = estimate_quantile(buckets, bucket_counts, count,
                                  minimum, maximum, q)
        out[_percentile_key(q)] = None if value is None \
            else round(value, 6)
    return out


def percentiles_from_item(item: dict, buckets: Sequence[float],
                          qs: Sequence[float] = PERCENTILES,
                          ) -> Dict[str, Optional[float]]:
    """Percentiles of one snapshot histogram value entry."""
    return percentiles_from_counts(
        buckets, item.get("bucket_counts", ()), item.get("count", 0),
        item.get("min"), item.get("max"), qs)


def snapshot_percentiles(snapshot: dict,
                         qs: Sequence[float] = PERCENTILES) -> dict:
    """Every histogram family's percentiles, per label set.

    Returns ``{family: [{"labels": {...}, "count": n, "p50": ...},
    ...]}`` — the shape ``obs report`` renders and the JSON report
    embeds.
    """
    out: Dict[str, list] = {}
    for name, entry in sorted(snapshot.get("metrics", {}).items()):
        if entry.get("kind") != "histogram":
            continue
        rows = []
        for item in entry.get("values", []):
            row = {"labels": item["labels"], "count": item["count"]}
            row.update(percentiles_from_item(item, entry["buckets"], qs))
            rows.append(row)
        if rows:
            out[name] = rows
    return out


def render_quantile_exposition(snapshot: dict,
                               qs: Sequence[float] = PERCENTILES) -> str:
    """Derived-quantile gauge samples in Prometheus text format.

    For every histogram family ``repro_x_uj`` this emits a synthetic
    gauge family ``repro_x_uj_q{quantile="0.99",...}`` so a live
    scrape of ``/metrics`` carries p50/p95/p99 without the scraper
    re-implementing the interpolation.  Series order and float
    formatting are deterministic.
    """
    from .metrics import _escape_label_value

    lines: List[str] = []
    for name, entry in sorted(snapshot.get("metrics", {}).items()):
        if entry.get("kind") != "histogram":
            continue
        family = f"{name}_q"
        emitted_header = False
        for item in entry.get("values", []):
            for q in qs:
                value = estimate_quantile(
                    entry["buckets"], item.get("bucket_counts", ()),
                    item.get("count", 0), item.get("min"),
                    item.get("max"), q)
                if value is None:
                    continue
                if not emitted_header:
                    lines.append(f"# HELP {family} estimated quantiles "
                                 f"of {name} (upper-bound interpolation)")
                    lines.append(f"# TYPE {family} gauge")
                    emitted_header = True
                pairs = [(k, _escape_label_value(str(v)))
                         for k, v in sorted(item["labels"].items())]
                pairs.append(("quantile", f"{q:g}"))
                inner = ",".join(f'{k}="{v}"' for k, v in pairs)
                lines.append(f"{family}{{{inner}}} {value!r}")
    return "\n".join(lines) + ("\n" if lines else "")
