"""The run manifest: what produced this run directory.

Every traced run writes ``run.json`` next to its spans and metrics —
seed, config digest, command line, git revision, library versions —
so any number quoted from an ``obs report`` can be traced back to the
exact code and configuration that produced it.  That is the
reproducibility contract README/DESIGN lean on: a report without its
manifest is an anecdote.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Optional

from .metrics import atomic_write_bytes

__all__ = ["MANIFEST_NAME", "build_manifest", "write_manifest",
           "load_manifest"]

MANIFEST_NAME = "run.json"

MANIFEST_SCHEMA = 1


def _git_rev() -> Optional[str]:
    """Current git revision, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:       # obs itself never requires numpy
        return None
    return numpy.__version__


def build_manifest(kind: str, seed=None, config_digest: str = "",
                   argv: Optional[list] = None,
                   extra: Optional[dict] = None) -> dict:
    """Assemble the manifest dict for one run.

    ``kind`` names what ran (``campaign.acquire``, ``protocol.soak``);
    ``seed`` and ``config_digest`` are the determinism roots the trace
    id is derived from; everything else is provenance.
    """
    from .. import __version__

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "seed": seed,
        "config_digest": config_digest,
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "created_unix": time.time(),
        "git_rev": _git_rev(),
        "repro_version": __version__,
        "python_version": platform.python_version(),
        "numpy_version": _numpy_version(),
        "platform": platform.platform(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(obs_dir: str, manifest: dict) -> str:
    path = os.path.join(obs_dir, MANIFEST_NAME)
    atomic_write_bytes(
        path, json.dumps(manifest, sort_keys=True, indent=1).encode()
    )
    return path


def load_manifest(obs_dir: str) -> Optional[dict]:
    path = os.path.join(obs_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)
