"""Hierarchical spans with deterministic ids and JSONL persistence.

A span records one unit of work — ``campaign.acquire`` > ``shard`` >
``trace`` > ``ladder.step`` — with three attribution axes:

* **wall time** (``start_s``/``end_s``, perf_counter-based) — real
  elapsed seconds, excluded from determinism guarantees;
* **simulated cycles** — the architecture model's clock, identical
  across replays;
* **µJ** — the calibrated energy model's charge for the span,
  identical across replays.

Span identity is *derived, not drawn*: ``span_id =
sha256(trace_id / parent_id / name / key)[:16]`` where ``key`` is an
explicit deterministic key (shard index, trace index, bit index) or
the parent's child counter.  A worker process can therefore emit
spans whose ids agree with the coordinator's without any IPC — both
sides derive the same ids from the same seed-rooted ``trace_id`` —
and two same-seed runs produce byte-identical span trees (see
:func:`repro.obs.report.canonical_span_tree`).

Records are appended to a JSONL file through a batch writer that
fsyncs every ``batch_size`` records and on close, the same
durability discipline as the campaign's ``failures.jsonl``.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import time
from contextlib import contextmanager
from typing import Optional

__all__ = ["Span", "SpanWriter", "Tracer", "derive_trace_id",
           "derive_span_id", "current_span"]

#: the ambient span for parent derivation (shared by every tracer in
#: the process, so an inline shard's spans nest under the engine's).
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def derive_trace_id(seed, config_digest: str = "") -> str:
    """The run's 16-hex-char trace id, derived from what defines it."""
    message = f"repro.obs/{seed}/{config_digest}".encode()
    return hashlib.sha256(message).hexdigest()[:16]


def derive_span_id(trace_id: str, parent_id: Optional[str], name: str,
                   key) -> str:
    """Deterministic span id; see the module docstring."""
    message = f"{trace_id}/{parent_id or ''}/{name}/{key}".encode()
    return hashlib.sha256(message).hexdigest()[:16]


def current_span() -> "Optional[Span]":
    return _CURRENT.get()


class Span:
    """One open (then finished) span."""

    __slots__ = ("name", "span_id", "parent_id", "key", "start_s",
                 "end_s", "cycles", "uj", "attrs", "_children")

    def __init__(self, name: str, span_id: str,
                 parent_id: Optional[str], key):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.key = key
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.cycles: Optional[int] = None
        self.uj: Optional[float] = None
        self.attrs: dict = {}
        self._children = 0

    def set(self, cycles: Optional[int] = None,
            uj: Optional[float] = None, **attrs) -> "Span":
        """Attach attribution before the span closes."""
        if cycles is not None:
            self.cycles = int(cycles)
        if uj is not None:
            self.uj = float(uj)
        self.attrs.update(attrs)
        return self

    def next_child_key(self) -> int:
        key = self._children
        self._children += 1
        return key

    def to_record(self) -> dict:
        record = {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "key": str(self.key),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": os.getpid(),
        }
        if self.cycles is not None:
            record["cycles"] = self.cycles
        if self.uj is not None:
            record["uj"] = self.uj
        if self.attrs:
            record["attrs"] = {k: self.attrs[k]
                               for k in sorted(self.attrs)}
        return record


class SpanWriter:
    """fsync-batched JSONL appender for span records."""

    def __init__(self, path: str, batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self.path = path
        self.batch_size = batch_size
        self._file = open(path, "w", encoding="utf-8")
        self._pending = 0

    def write(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._pending += 1
        if self._pending >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()


class Tracer:
    """Creates spans, propagates parentage, writes finished records.

    ``detail`` gates span granularity: spans opened with a ``level``
    above it become no-ops (``ladder.step`` is level 2 — essential for
    energy attribution, too hot for huge production campaigns).
    """

    def __init__(self, trace_id: str, writer: SpanWriter,
                 detail: int = 2, on_record=None):
        self.trace_id = trace_id
        self.writer = writer
        self.detail = detail
        #: optional hook fed every finished record (the runtime points
        #: this at a FlightRecorder ring; see repro.obs.flightrec).
        self.on_record = on_record

    @contextmanager
    def span(self, name: str, key=None, level: int = 1,
             parent_id: Optional[str] = None, **attrs):
        """Open a span as a context manager; yields the Span (or None
        when ``level`` exceeds the tracer's detail)."""
        if level > self.detail:
            yield None
            return
        span = self._open(name, key, parent_id, attrs)
        token = _CURRENT.set(span)
        try:
            yield span
        finally:
            _CURRENT.reset(token)
            self._finish(span)

    def event(self, name: str, key=None, level: int = 1,
              cycles: Optional[int] = None, uj: Optional[float] = None,
              parent_id: Optional[str] = None,
              **attrs) -> Optional[str]:
        """Emit a zero-duration leaf span (cycle/µJ attribution only)."""
        if level > self.detail:
            return None
        span = self._open(name, key, parent_id, attrs)
        span.set(cycles=cycles, uj=uj)
        self._finish(span)
        return span.span_id

    def _open(self, name: str, key, parent_id: Optional[str],
              attrs: dict) -> Span:
        parent = _CURRENT.get()
        if parent_id is None and parent is not None:
            parent_id = parent.span_id
        if key is None:
            key = parent.next_child_key() if parent is not None else 0
        span_id = derive_span_id(self.trace_id, parent_id, name, key)
        span = Span(name, span_id, parent_id, key)
        span.attrs.update(attrs)
        return span

    def _finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        record = span.to_record()
        self.writer.write(record)
        if self.on_record is not None:
            self.on_record(record)

    def flush(self) -> None:
        self.writer.flush()

    def close(self) -> None:
        self.writer.close()
