"""The process-global observability runtime.

``repro.obs`` is opt-in: nothing is traced until something calls
:func:`configure` (the CLI's ``--obs`` flags, a test's
:func:`session` context manager).  Instrumented code asks
:func:`current` for the runtime and does nothing when it is None, so
the un-traced hot path costs one module-global read.

Cross-process propagation piggybacks on the environment: campaign
shard workers are ``spawn``-ed and inherit ``os.environ``, so
:func:`configure` exports ``REPRO_OBS_DIR``/``_DETAIL``/``_PROFILE``/
``_TRACE_ID`` and :func:`shard_scope` (entered by every shard
attempt, inline or spawned) reconstructs a worker runtime from them —
no pipes, no pickled tracers.  Each shard writes its own
deterministically named files,

* ``spans-shard-XXXXX.jsonl`` — the shard's span records
  (overwritten per attempt, so retries leave the last attempt's
  truth), and
* ``metrics-shard-XXXXX.json`` — the shard's metric snapshot,
  written *only when the attempt succeeds*,

and the coordinator folds completed shards' snapshots back into its
own registry in shard order (see
:meth:`AcquisitionEngine <repro.campaign.acquire.AcquisitionEngine>`),
which keeps every aggregate independent of worker count and
scheduling.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .flightrec import FlightRecorder, flight_path
from .manifest import build_manifest, write_manifest
from .metrics import MetricRegistry
from .tracing import SpanWriter, Tracer, derive_trace_id

__all__ = ["ObsRuntime", "configure", "current", "enabled", "shutdown",
           "session", "shard_scope", "shard_span_path",
           "shard_metrics_path", "flight_dump", "OBS_DIRNAME",
           "SPANS_NAME", "METRICS_NAME", "PROMETHEUS_NAME", "ENV_DIR",
           "ENV_DETAIL", "ENV_PROFILE", "ENV_TRACE_ID"]

OBS_DIRNAME = "obs"
SPANS_NAME = "spans.jsonl"
METRICS_NAME = "metrics.json"
PROMETHEUS_NAME = "metrics.prom"

ENV_DIR = "REPRO_OBS_DIR"
ENV_DETAIL = "REPRO_OBS_DETAIL"
ENV_PROFILE = "REPRO_OBS_PROFILE"
ENV_TRACE_ID = "REPRO_OBS_TRACE_ID"

_runtime: "Optional[ObsRuntime]" = None


def shard_span_path(obs_dir: str, shard_index: int) -> str:
    return os.path.join(obs_dir, f"spans-shard-{shard_index:05d}.jsonl")


def shard_metrics_path(obs_dir: str, shard_index: int) -> str:
    return os.path.join(obs_dir, f"metrics-shard-{shard_index:05d}.json")


class ObsRuntime:
    """One configured observability session (coordinator or shard)."""

    def __init__(self, obs_dir: str, tracer: Tracer,
                 registry: MetricRegistry, role: str = "run",
                 detail: int = 2, profile: bool = False,
                 flight: "Optional[FlightRecorder]" = None):
        self.obs_dir = obs_dir
        self.tracer = tracer
        self.registry = registry
        self.role = role
        self.detail = detail
        self.profile = profile
        self.flight = flight if flight is not None else FlightRecorder()
        tracer.on_record = self.flight.record

    def span(self, name: str, **kwargs):
        return self.tracer.span(name, **kwargs)

    def flight_dump(self, reason: str, tag: Optional[str] = None,
                    **context) -> str:
        """Dump this runtime's black box as ``flight-<tag>.json``."""
        self.tracer.flush()
        return self.flight.dump(
            flight_path(self.obs_dir, tag or self.role), reason,
            context)

    def close(self) -> None:
        self.tracer.close()


def current() -> "Optional[ObsRuntime]":
    return _runtime


def enabled() -> bool:
    return _runtime is not None


def configure(obs_dir: str, *, kind: str = "run", seed=None,
              config_digest: str = "", detail: int = 2,
              profile: bool = False, argv: Optional[list] = None,
              extra: Optional[dict] = None,
              set_env: bool = True) -> ObsRuntime:
    """Start a coordinator runtime writing into ``obs_dir``.

    Writes the run manifest, opens the coordinator span file, derives
    the trace id from ``(seed, config_digest)`` and (by default)
    exports the environment variables worker processes attach from.
    Exactly one runtime may be active per process; tests use
    :func:`session` for scoped setup/teardown.
    """
    global _runtime
    if _runtime is not None:
        raise RuntimeError("repro.obs is already configured — call "
                           "shutdown() first (or use obs.session())")
    obs_dir = os.path.abspath(obs_dir)
    os.makedirs(obs_dir, exist_ok=True)
    manifest = build_manifest(kind, seed=seed, config_digest=config_digest,
                              argv=argv, extra=extra)
    write_manifest(obs_dir, manifest)
    trace_id = derive_trace_id(seed, config_digest)
    tracer = Tracer(trace_id,
                    SpanWriter(os.path.join(obs_dir, SPANS_NAME)),
                    detail=detail)
    _runtime = ObsRuntime(obs_dir, tracer, MetricRegistry(),
                          role="run", detail=detail, profile=profile)
    if set_env:
        os.environ[ENV_DIR] = obs_dir
        os.environ[ENV_DETAIL] = str(detail)
        os.environ[ENV_PROFILE] = "1" if profile else "0"
        os.environ[ENV_TRACE_ID] = trace_id
    return _runtime


def shutdown(write_metrics: bool = True) -> None:
    """Flush and close the active runtime (idempotent).

    Writes the final merged metric snapshot (JSON + Prometheus text)
    and clears the worker-propagation environment.
    """
    global _runtime
    runtime = _runtime
    _runtime = None
    for name in (ENV_DIR, ENV_DETAIL, ENV_PROFILE, ENV_TRACE_ID):
        os.environ.pop(name, None)
    if runtime is None:
        return
    if write_metrics and runtime.role == "run":
        runtime.registry.write_snapshot(
            os.path.join(runtime.obs_dir, METRICS_NAME)
        )
        from .metrics import atomic_write_bytes

        atomic_write_bytes(
            os.path.join(runtime.obs_dir, PROMETHEUS_NAME),
            runtime.registry.render_prometheus().encode(),
        )
    runtime.close()


@contextmanager
def session(obs_dir: str, **kwargs):
    """``with obs.session(dir) as rt:`` — configure/shutdown scoped."""
    runtime = configure(obs_dir, **kwargs)
    try:
        yield runtime
    finally:
        shutdown()


def merge_shard_metrics(runtime: ObsRuntime, shard_indices) -> int:
    """Fold completed shards' metric snapshots into the coordinator.

    Merged in ascending shard order (not completion order), so float
    accumulation order — and therefore the final snapshot bytes — is
    independent of scheduling.  Returns how many files were merged.
    """
    merged = 0
    for index in sorted(shard_indices):
        path = shard_metrics_path(runtime.obs_dir, index)
        if not os.path.exists(path):
            continue
        runtime.registry.merge_snapshot(
            MetricRegistry.load_snapshot(path)
        )
        merged += 1
    return merged


@contextmanager
def shard_scope(shard_index: int):
    """The per-shard-attempt observability context.

    Yields a shard-scoped :class:`ObsRuntime` (or None when tracing is
    off).  Works identically in both execution modes:

    * **spawned worker** — no runtime exists; one is reconstructed
      from the environment exported by :func:`configure`;
    * **inline (workers=1)** — the coordinator runtime exists; its
      tracer/registry are swapped for shard-scoped ones for the
      duration, so shard metrics aggregate exactly like a worker's.

    The shard's span file is (over)written every attempt; the metric
    snapshot is written only when the attempt body completes without
    raising, so failed attempts never contribute metrics.
    """
    global _runtime
    parent = _runtime
    if parent is not None:
        obs_dir = parent.obs_dir
        trace_id = parent.tracer.trace_id
        detail = parent.detail
        profile = parent.profile
    elif os.environ.get(ENV_DIR):
        obs_dir = os.environ[ENV_DIR]
        trace_id = os.environ.get(ENV_TRACE_ID, "0" * 16)
        detail = int(os.environ.get(ENV_DETAIL, "2"))
        profile = os.environ.get(ENV_PROFILE) == "1"
    else:
        yield None
        return

    tracer = Tracer(
        trace_id, SpanWriter(shard_span_path(obs_dir, shard_index)),
        detail=detail,
    )
    scoped = ObsRuntime(obs_dir, tracer, MetricRegistry(),
                        role=f"shard-{shard_index:05d}",
                        detail=detail, profile=profile)
    _runtime = scoped
    try:
        yield scoped
        scoped.registry.write_snapshot(
            shard_metrics_path(obs_dir, shard_index)
        )
    except BaseException as exc:
        # The shard body died: dump the black box before unwinding so
        # the coordinator (and `obs tail`) can see the final spans.
        scoped.flight_dump("exception", error=type(exc).__name__)
        raise
    finally:
        _runtime = parent
        scoped.close()


def flight_dump(reason: str, tag: Optional[str] = None,
                **context) -> Optional[str]:
    """Dump the active runtime's flight ring (None when tracing is
    off) — the one-liner crash paths call on the way down."""
    runtime = current()
    if runtime is None:
        return None
    return runtime.flight_dump(reason, tag=tag, **context)
