"""Bridges from domain objects into the metric registry.

The CLI's summary views used to aggregate on their own — ``campaign
status`` summed shard walls one way, the acquire reporter another,
``protocol soak`` had a third set of loops — which is exactly how
numbers drift apart.  These recorders are now the *only* aggregation
path: they fold a :class:`~repro.campaign.store.TraceStore` or a
:class:`~repro.protocols.fleet.FleetReport` into a
:class:`~repro.obs.metrics.MetricRegistry`, and every rendered number
is read back out of the snapshot.

Imports of campaign/protocol types stay inside the functions so that
:mod:`repro.obs` itself remains import-light (instrumented modules
import it at module scope).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from .metrics import MetricRegistry

__all__ = ["record_store", "record_fleet_report", "record_intermittent_result",
           "record_amortized_report", "amortized_point_stats",
           "fleet_spec_digest", "fleet_point_stats", "snapshot_value",
           "snapshot_histogram"]


def snapshot_value(snapshot: dict, name: str, **labels) -> float:
    """A counter/gauge value out of a snapshot (0.0 when absent)."""
    entry = snapshot.get("metrics", {}).get(name)
    if entry is None:
        return 0.0
    wanted = {k: str(v) for k, v in labels.items()}
    for item in entry["values"]:
        if item["labels"] == wanted:
            return float(item["value"])
    return 0.0


def snapshot_histogram(snapshot: dict, name: str, **labels) -> dict:
    """``{count, sum, min, max}`` of one histogram series (zeros when
    absent)."""
    entry = snapshot.get("metrics", {}).get(name)
    empty = {"count": 0, "sum": 0.0, "min": None, "max": None}
    if entry is None or entry.get("kind") != "histogram":
        return empty
    wanted = {k: str(v) for k, v in labels.items()}
    for item in entry["values"]:
        if item["labels"] == wanted:
            return {"count": item["count"], "sum": item["sum"],
                    "min": item["min"], "max": item["max"]}
    return empty


# ----------------------------------------------------------------------
# campaign store -> registry (the `campaign status` aggregation)
# ----------------------------------------------------------------------

def record_store(registry: MetricRegistry, store,
                 failure_log=None, quarantine=None) -> MetricRegistry:
    """Fold a loaded TraceStore (plus failure state) into ``registry``.

    Gauges describe the store as it stands on disk; the wall-seconds
    histogram carries per-shard acquisition walls (sum/min/max feed
    the status line's throughput figures).
    """
    spec = store.spec
    registry.gauge("repro_campaign_store_traces",
                   "traces on disk").set(store.n_traces_on_disk)
    registry.gauge("repro_campaign_store_traces_planned",
                   "traces the spec plans").set(spec.n_traces)
    registry.gauge("repro_campaign_store_shards",
                   "completed shards on disk").set(len(store.shard_records))
    registry.gauge("repro_campaign_store_shards_planned",
                   "shards the spec plans").set(spec.n_shards)
    walls = registry.histogram(
        "repro_campaign_store_wall_seconds",
        "per-shard acquisition wall clock",
        buckets=(0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
    )
    for record in store.shard_records:
        walls.observe(record.wall_seconds)
    total_wall = sum(r.wall_seconds for r in store.shard_records)
    rate = store.n_traces_on_disk / total_wall if total_wall > 0 else 0.0
    registry.gauge("repro_campaign_store_rate_traces_per_second",
                   "traces per worker-wall second").set(rate)
    if failure_log is not None and failure_log.exists:
        failures = registry.counter(
            "repro_campaign_store_failures_total",
            "recorded shard-attempt failures by kind",
        )
        actions = registry.counter(
            "repro_campaign_store_failure_actions_total",
            "recorded failure outcomes (retry/quarantine)",
        )
        for event in failure_log.events():
            failures.inc(kind=event.get("kind", "?"))
            actions.inc(action=event.get("action", "?"))
    if quarantine is not None:
        registry.gauge(
            "repro_campaign_store_quarantined",
            "shards currently quarantined",
        ).set(len(quarantine.entries()))
    return registry


# ----------------------------------------------------------------------
# fleet report -> registry (the `protocol soak` aggregation)
# ----------------------------------------------------------------------

def fleet_spec_digest(spec) -> str:
    """Stable fingerprint of a FleetSpec (manifests, trace ids)."""
    from dataclasses import asdict

    payload = json.dumps(asdict(spec), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _loss_label(frame_loss: float) -> str:
    return f"{frame_loss:g}"


def record_fleet_report(registry: MetricRegistry,
                        report) -> MetricRegistry:
    """Fold every sweep point's session records into ``registry``."""
    sessions = registry.counter("repro_fleet_sessions_total",
                                "sessions by sweep point and outcome")
    epochs = registry.counter("repro_fleet_epochs_total",
                              "protocol epochs consumed")
    frames = registry.counter("repro_fleet_frames_total",
                              "frames transmitted")
    retx = registry.counter("repro_fleet_retransmissions_total",
                            "frames beyond the lossless three")
    rejections = registry.counter("repro_fleet_rejections_total",
                                  "receiver-side frame rejections")
    energy = registry.counter("repro_fleet_energy_uj_total",
                              "microjoules spent, by role")
    availability = registry.gauge("repro_fleet_availability",
                                  "fraction of sessions that identified")
    for point in sorted(report.points, key=lambda p: p.frame_loss):
        loss = _loss_label(point.frame_loss)
        for record in point.records:
            if record.accepted:
                outcome = "accepted"
            elif record.completed:
                outcome = "rejected"
            else:
                outcome = "aborted"
            sessions.inc(loss=loss, outcome=outcome)
            epochs.inc(record.epochs_used, loss=loss)
            frames.inc(record.frames_sent, loss=loss)
            retx.inc(record.retransmissions, loss=loss)
            for kind, count in (("corrupt", record.corrupt_rejections),
                                ("stale", record.stale_rejections),
                                ("replay", record.replay_rejections)):
                if count:
                    rejections.inc(count, loss=loss, kind=kind)
            energy.inc(record.initiator_uj, loss=loss, role="initiator")
            energy.inc(record.responder_uj, loss=loss, role="responder")
        availability.set(point.availability, loss=loss)
    return registry


# ----------------------------------------------------------------------
# amortized report -> registry (the `protocol amortize` aggregation)
# ----------------------------------------------------------------------

def record_amortized_report(registry: MetricRegistry,
                            report) -> MetricRegistry:
    """Fold an AmortizedReport's sweep points into ``registry``.

    The energy counter's ``component`` label is the exact µJ
    decomposition the obs spans carry (``handshake`` /
    ``message_compute`` / ``message_radio``), so the rendered table,
    the exported metrics and the span tree all sum to the same total.
    """
    sessions = registry.counter("repro_backends_sessions_total",
                                "amortized sessions by sweep point")
    messages = registry.counter("repro_backends_messages_total",
                                "messages by sweep point and outcome")
    handshakes = registry.counter("repro_backends_handshakes_total",
                                  "asymmetric handshakes by outcome")
    attempts = registry.counter("repro_backends_attempts_total",
                                "data-frame transmissions, retries "
                                "included")
    energy = registry.counter("repro_backends_energy_uj_total",
                              "microjoules spent, by component")
    window = registry.gauge("repro_backends_key_window_messages",
                            "worst-case messages under one session "
                            "key")
    delivery = registry.gauge("repro_backends_delivery_rate",
                              "fraction of messages delivered")
    for point in sorted(report.points, key=lambda p: p.frame_loss):
        loss = _loss_label(point.frame_loss)
        worst = 0
        for record in point.records:
            sessions.inc(loss=loss)
            if record.delivered:
                messages.inc(record.delivered, loss=loss,
                             outcome="delivered")
            if record.failed:
                messages.inc(record.failed, loss=loss,
                             outcome="failed")
            if record.keys_used:
                handshakes.inc(record.keys_used, loss=loss,
                               outcome="keyed")
            if record.handshakes_failed:
                handshakes.inc(record.handshakes_failed, loss=loss,
                               outcome="failed")
            attempts.inc(record.attempts, loss=loss)
            energy.inc(record.handshake_uj, loss=loss,
                       component="handshake")
            energy.inc(record.message_compute_uj, loss=loss,
                       component="message_compute")
            energy.inc(record.message_radio_uj, loss=loss,
                       component="message_radio")
            worst = max(worst, record.worst_key_window)
        window.set(worst, loss=loss)
        delivery.set(point.delivery_rate, loss=loss)
    return registry


def amortized_point_stats(snapshot: dict, frame_loss: float) -> dict:
    """One sweep point's summary figures, read back from a snapshot."""
    loss = _loss_label(frame_loss)
    delivered = snapshot_value(snapshot,
                               "repro_backends_messages_total",
                               loss=loss, outcome="delivered")
    failed = snapshot_value(snapshot, "repro_backends_messages_total",
                            loss=loss, outcome="failed")
    total = delivered + failed
    keys = snapshot_value(snapshot, "repro_backends_handshakes_total",
                          loss=loss, outcome="keyed")
    handshake_uj = snapshot_value(snapshot,
                                  "repro_backends_energy_uj_total",
                                  loss=loss, component="handshake")
    message_uj = (
        snapshot_value(snapshot, "repro_backends_energy_uj_total",
                       loss=loss, component="message_compute")
        + snapshot_value(snapshot, "repro_backends_energy_uj_total",
                         loss=loss, component="message_radio"))
    uj_per_message = ((handshake_uj + message_uj) / delivered
                      if delivered else float("inf"))
    mean_handshake = handshake_uj / keys if keys else float("inf")
    # Baseline: pure ECC pays one full handshake plus the same data
    # frame per message (the frame bill is common to both designs).
    baseline = (mean_handshake + message_uj / delivered
                if delivered and keys else float("inf"))
    extension = (baseline / uj_per_message
                 if uj_per_message not in (0.0, float("inf"))
                 and baseline != float("inf") else 0.0)
    return {
        "delivered": int(delivered),
        "messages": int(total),
        "delivery_rate": delivered / total if total else 0.0,
        "keys_used": int(keys),
        "handshake_uj": handshake_uj,
        "message_uj": message_uj,
        "uj_per_message": uj_per_message,
        "extension_factor": extension,
    }


# ----------------------------------------------------------------------
# intermittent session -> registry (the `power run/soak` aggregation)
# ----------------------------------------------------------------------

def record_intermittent_result(registry: MetricRegistry,
                               result) -> MetricRegistry:
    """Fold one IntermittentResult into ``registry``.

    Counters accumulate across sessions (a soak calls this once per
    session); the energy counter is labelled by component so the CLI
    can read the checkpoint-overhead share straight out of the
    snapshot.
    """
    if result.accepted:
        outcome = "accepted"
    elif result.completed:
        outcome = "rejected"
    else:
        outcome = "aborted"
    registry.counter("repro_intermittent_sessions_total",
                     "intermittent sessions by outcome").inc(outcome=outcome)
    registry.counter("repro_intermittent_power_cycles_total",
                     "power cuts survived").inc(result.power_cycles)
    registry.counter("repro_intermittent_checkpoints_total",
                     "committed checkpoints").inc(result.checkpoints_committed)
    registry.counter("repro_intermittent_torn_discards_total",
                     "torn staged records discarded at power-on"
                     ).inc(result.torn_discards)
    steps = registry.counter("repro_intermittent_ladder_steps_total",
                             "ladder steps by productivity")
    steps.inc(result.steps_executed - result.steps_wasted, kind="productive")
    if result.steps_wasted:
        steps.inc(result.steps_wasted, kind="wasted")
    energy = registry.counter("repro_intermittent_energy_uj_total",
                              "microjoules spent, by component")
    energy.inc(result.compute_uj, component="compute")
    energy.inc(result.radio_uj, component="radio")
    energy.inc(result.checkpoint_uj, component="checkpoint")
    registry.histogram(
        "repro_intermittent_session_uj",
        "total microjoules per session",
        buckets=(1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0),
    ).observe(result.total_uj)
    return registry


def fleet_point_stats(snapshot: dict, frame_loss: float) -> dict:
    """One sweep point's summary figures, read back from a snapshot."""
    loss = _loss_label(frame_loss)
    n = sum(
        snapshot_value(snapshot, "repro_fleet_sessions_total",
                       loss=loss, outcome=outcome)
        for outcome in ("accepted", "rejected", "aborted")
    )
    accepted = snapshot_value(snapshot, "repro_fleet_sessions_total",
                              loss=loss, outcome="accepted")
    stats = {
        "sessions": int(n),
        "accepted": int(accepted),
        "availability": accepted / n if n else 0.0,
        "mean_epochs": (snapshot_value(
            snapshot, "repro_fleet_epochs_total", loss=loss) / n
            if n else 0.0),
        "mean_frames": (snapshot_value(
            snapshot, "repro_fleet_frames_total", loss=loss) / n
            if n else 0.0),
        "retransmissions": int(snapshot_value(
            snapshot, "repro_fleet_retransmissions_total", loss=loss)),
        "mean_initiator_uj": (snapshot_value(
            snapshot, "repro_fleet_energy_uj_total",
            loss=loss, role="initiator") / n if n else 0.0),
    }
    return stats
