"""CRC-protected frame encoding for the body-area wireless link.

The protocol level (Section 4, Figure 2) speaks in abstract messages
(``R``, ``e``, ``s``); the channel level speaks in *frames*: a typed
header that lets a receiver bind a payload to one session, one
protocol round and one retransmission attempt, plus a CRC-16 so that
bit errors on the lossy around-the-body link are detected rather than
silently consumed.  The header is deliberately small — "wireless
communication is power-hungry", so every overhead byte is energy the
implant pays on every (re)transmission — and the energy accounting in
:mod:`repro.protocols.session` charges for it explicitly.

Wire layout (big-endian)::

    version:1 | session:4 | epoch:1 | round:1 | attempt:1 | sender:1
    | label_len:1 | label | payload_len:2 | payload | crc16:2

``epoch`` numbers the protocol restarts inside one logical session
(each epoch of an identification uses fresh nonces — see the nonce
lifecycle in :mod:`repro.protocols.session`); ``attempt`` numbers the
retransmissions of one frame within an epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import profile as _obs_profile

__all__ = ["Frame", "FrameError", "FrameCorruptedError", "FrameFormatError",
           "crc16", "encode_frame", "decode_frame", "frame_overhead_bits",
           "int_to_bytes", "int_from_bytes", "compress_point",
           "decompress_point", "scalar_width_bytes", "point_width_bytes"]

FRAME_VERSION = 1

#: Fixed header + trailer bytes around the label and payload.
_FIXED_OVERHEAD_BYTES = 1 + 4 + 1 + 1 + 1 + 1 + 1 + 2 + 2

_MAX_PAYLOAD = 0xFFFF


class FrameError(ValueError):
    """Base class for frame codec failures."""


class FrameCorruptedError(FrameError):
    """The CRC did not match: bit errors on the channel."""


class FrameFormatError(FrameError):
    """The frame is structurally malformed (truncated, bad version)."""


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class Frame:
    """One protocol message as it crosses the air."""

    session: int
    epoch: int
    round_index: int
    attempt: int
    sender: int
    label: str
    payload: bytes

    def __post_init__(self):
        if not 0 <= self.session < 2 ** 32:
            raise FrameFormatError("session id out of range")
        for name in ("epoch", "round_index", "attempt", "sender"):
            value = getattr(self, name)
            if not 0 <= value < 256:
                raise FrameFormatError(f"{name} out of range")
        if len(self.label.encode()) > 255:
            raise FrameFormatError("label too long")
        if len(self.payload) > _MAX_PAYLOAD:
            raise FrameFormatError("payload too long")


def frame_overhead_bits(label: str) -> int:
    """Header + CRC bits a frame adds on top of its payload."""
    return (_FIXED_OVERHEAD_BYTES + len(label.encode())) * 8


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame; the CRC covers everything before it."""
    with _obs_profile.timed("frame_encode"):
        label = frame.label.encode()
        body = bytes([FRAME_VERSION])
        body += frame.session.to_bytes(4, "big")
        body += bytes([frame.epoch, frame.round_index, frame.attempt,
                       frame.sender, len(label)])
        body += label
        body += len(frame.payload).to_bytes(2, "big")
        body += frame.payload
        return body + crc16(body).to_bytes(2, "big")


def decode_frame(data: bytes) -> Frame:
    """Parse and CRC-check one frame.

    Raises :class:`FrameCorruptedError` when the CRC disagrees (the
    normal fate of a frame that took bit errors) and
    :class:`FrameFormatError` for truncation or unknown versions.
    """
    with _obs_profile.timed("frame_decode"):
        if len(data) < _FIXED_OVERHEAD_BYTES:
            raise FrameFormatError("frame shorter than the fixed header")
        if crc16(data[:-2]) != int.from_bytes(data[-2:], "big"):
            raise FrameCorruptedError("frame CRC mismatch")
        if data[0] != FRAME_VERSION:
            raise FrameFormatError(f"unknown frame version {data[0]}")
        session = int.from_bytes(data[1:5], "big")
        epoch, round_index, attempt, sender, label_len = data[5:10]
        offset = 10
        if len(data) < offset + label_len + 2 + 2:
            raise FrameFormatError("frame truncated inside the label")
        label = data[offset:offset + label_len].decode()
        offset += label_len
        payload_len = int.from_bytes(data[offset:offset + 2], "big")
        offset += 2
        if len(data) != offset + payload_len + 2:
            raise FrameFormatError(
                "payload length disagrees with frame size")
        payload = data[offset:offset + payload_len]
        return Frame(session, epoch, round_index, attempt, sender, label,
                     payload)


# ----------------------------------------------------------------------
# payload helpers: scalars and compressed points as fixed-width bytes
# ----------------------------------------------------------------------

def scalar_width_bytes(order: int) -> int:
    """Wire width of a scalar modulo ``order``."""
    return (order.bit_length() + 7) // 8


def point_width_bytes(m: int) -> int:
    """Wire width of a compressed point over GF(2^m): x plus one
    y-select byte."""
    return (m + 7) // 8 + 1


def int_to_bytes(value: int, width: int) -> bytes:
    """Fixed-width big-endian encoding."""
    if value < 0:
        raise FrameFormatError("cannot encode a negative integer")
    try:
        return value.to_bytes(width, "big")
    except OverflowError as exc:
        raise FrameFormatError(str(exc)) from None


def int_from_bytes(data: bytes) -> int:
    return int.from_bytes(data, "big")


def compress_point(curve, point) -> bytes:
    """Compressed encoding: x plus the standard binary-curve y-bit.

    For binary curves the select bit is the least-significant bit of
    ``y / x`` (the two candidate points for one x differ by ``y`` vs
    ``y + x``).
    """
    if point.is_infinity or point.x == 0:
        raise FrameFormatError("cannot compress the identity or 2-torsion")
    f = curve.field
    width = (f.m + 7) // 8
    y_bit = f.mul_raw(point.y, f.inverse_raw(point.x)) & 1
    return int_to_bytes(point.x, width) + bytes([y_bit])


def decompress_point(curve, data: bytes):
    """Inverse of :func:`compress_point`; raises on off-curve x."""
    f = curve.field
    width = (f.m + 7) // 8
    if len(data) != width + 1 or data[-1] not in (0, 1):
        raise FrameFormatError("bad compressed-point encoding")
    x = int_from_bytes(data[:-1])
    if x == 0 or x >> f.m:
        raise FrameFormatError("compressed x out of field range")
    point = curve.lift_x(x)
    if point is None:
        raise FrameFormatError("compressed x has no point on the curve")
    y_bit = f.mul_raw(point.y, f.inverse_raw(x)) & 1
    if y_bit != data[-1]:
        point = type(point)(x, point.y ^ x)
    return point
