"""Deterministic body-area-network channel simulator.

The paper's protocol level assumes messages arrive; a body-worn link
does not cooperate.  This module models the around-the-body channel
the implant actually talks over: frames are dropped (deep fades),
corrupted (bit errors at a rate derived from the
:class:`~repro.energy.radio.RadioModel` distance/path-loss), duplicated,
delayed and reordered.

Every decision is a pure function of ``(seed, session, frame, attempt)``
— the same construction :mod:`repro.campaign.chaos` uses for the
acquisition pipeline — so two runs of the same session over the same
loss profile produce byte-identical delivery schedules, which is what
lets the session layer's retry counts and energy totals be pinned in
tests rather than eyeballed.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field as dataclass_field, replace
from typing import TYPE_CHECKING, List, Optional

from ..obs import runtime as _obs_runtime

if TYPE_CHECKING:  # imported lazily at runtime (channel -> energy ->
    # protocols -> channel would otherwise be a cycle)
    from ..energy.radio import RadioModel

__all__ = ["LossProfile", "Delivery", "ChannelStats", "BodyAreaChannel",
           "ber_from_radio", "derive_channel_seed"]


def derive_channel_seed(seed: int, stream: str, session: int,
                        frame: int, attempt: int) -> int:
    """A 64-bit child seed for one channel decision stream.

    SHA-256 over the labelled tuple, mirroring
    :func:`repro.campaign.spec.derive_seed` (stdlib-only, process- and
    platform-stable).
    """
    message = (f"repro.channel/{seed}/{stream}/{session}/"
               f"{frame}/{attempt}").encode()
    return int.from_bytes(hashlib.sha256(message).digest()[:8], "big")


def ber_from_radio(radio: "RadioModel", distance_m: float,
                   reference_distance_m: float = 0.25,
                   reference_snr: float = 60.0) -> float:
    """Bit-error rate implied by the radio's path-loss law.

    A first-order non-coherent FSK link: SNR falls with
    ``distance^-gamma`` (the same gamma the
    :class:`~repro.energy.radio.RadioModel` charges the amplifier for)
    and ``BER = 0.5 * exp(-SNR / 2)``.  ``reference_snr`` is the
    linear SNR at ``reference_distance_m``; the defaults put the knee
    where a body-worn link has it — effectively error-free at contact
    range, a few corrupted frames per hundred at half a meter
    (BER ~3e-4), unusable beyond a meter.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    if distance_m <= reference_distance_m:
        snr = reference_snr
    else:
        snr = reference_snr * (reference_distance_m / distance_m) \
            ** radio.path_loss_exponent
    return min(0.5, 0.5 * math.exp(-snr / 2.0))


@dataclass(frozen=True)
class LossProfile:
    """What the around-the-body channel does to frames.

    Attributes
    ----------
    frame_loss:
        Probability a frame vanishes entirely (deep fade / collision).
    bit_error_rate:
        Per-bit flip probability for frames that do arrive; the CRC in
        :mod:`repro.channel.frame` turns these into detected drops.
    duplicate_rate:
        Probability the receiver sees a frame twice (retransmit echo /
        multipath); duplicates are what the session layer's replay
        rejection exists for.
    reorder_rate:
        Probability a frame takes the slow path and lands
        ``reorder_delay_s`` later, possibly behind a successor.
    base_delay_s / jitter_s:
        Propagation plus processing latency and its seeded jitter.
    """

    frame_loss: float = 0.0
    bit_error_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    base_delay_s: float = 0.005
    jitter_s: float = 0.002
    reorder_delay_s: float = 0.05

    def __post_init__(self):
        for name in ("frame_loss", "bit_error_rate", "duplicate_rate",
                     "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.frame_loss >= 1.0:
            raise ValueError("frame_loss of 1.0 can never deliver")
        for name in ("base_delay_s", "jitter_s", "reorder_delay_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_radio(cls, radio: "RadioModel", distance_m: float,
                   frame_loss: float = 0.0, **kwargs) -> "LossProfile":
        """A profile whose bit-error rate follows the radio's path loss."""
        return cls(frame_loss=frame_loss,
                   bit_error_rate=ber_from_radio(radio, distance_m),
                   **kwargs)

    @property
    def lossless(self) -> bool:
        return (self.frame_loss == 0.0 and self.bit_error_rate == 0.0
                and self.duplicate_rate == 0.0 and self.reorder_rate == 0.0)

    def scaled(self, frame_loss: float) -> "LossProfile":
        """The same profile at a different frame-loss point (sweeps)."""
        return replace(self, frame_loss=frame_loss)

    def describe(self) -> str:
        return (f"loss={self.frame_loss:.0%} ber={self.bit_error_rate:.2e} "
                f"dup={self.duplicate_rate:.0%} "
                f"reorder={self.reorder_rate:.0%}")


@dataclass(frozen=True)
class Delivery:
    """One copy of a frame arriving at the receiver."""

    data: bytes
    at: float
    corrupted: bool = False
    duplicate: bool = False


@dataclass
class ChannelStats:
    """What the channel did across one session (per direction too,
    if the caller keeps one channel per direction)."""

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_corrupted: int = 0
    frames_duplicated: int = 0
    frames_reordered: int = 0
    bits_sent: int = 0
    bits_delivered: int = 0

    def summary(self) -> str:
        return (f"{self.frames_sent} frames sent, "
                f"{self.frames_dropped} dropped, "
                f"{self.frames_corrupted} corrupted, "
                f"{self.frames_duplicated} duplicated, "
                f"{self.frames_reordered} reordered")


class BodyAreaChannel:
    """A seeded lossy channel between two protocol endpoints.

    ``transmit`` never mutates global RNG state: every effect draws
    from :func:`derive_channel_seed` keyed by the frame identity the
    caller supplies, so delivery schedules are reproducible regardless
    of call order or thread interleaving.
    """

    def __init__(self, profile: LossProfile, seed: int = 0,
                 session: int = 0):
        self.profile = profile
        self.seed = seed
        self.session = session
        self.stats = ChannelStats()

    def _roll(self, stream: str, frame: int, attempt: int) -> float:
        draw = derive_channel_seed(self.seed, stream, self.session,
                                   frame, attempt)
        return draw / 2.0 ** 64

    def transmit(self, data: bytes, frame: int, attempt: int,
                 now: float = 0.0) -> List[Delivery]:
        """Send one frame; returns the (possibly empty) deliveries.

        ``frame`` identifies the logical frame (epoch and round);
        ``attempt`` its retransmission number.  The sender always pays
        for the transmission — the stats record bits sent whether or
        not anything arrives, which is exactly the energy asymmetry a
        lossy link inflicts on the implant.
        """
        profile = self.profile
        self.stats.frames_sent += 1
        self.stats.bits_sent += len(data) * 8
        self._obs_count("sent")

        if self._roll("drop", frame, attempt) < profile.frame_loss:
            self.stats.frames_dropped += 1
            self._obs_count("dropped")
            return []

        delay = profile.base_delay_s + profile.jitter_s * \
            self._roll("jitter", frame, attempt)
        if (profile.reorder_rate > 0.0
                and self._roll("reorder", frame, attempt)
                < profile.reorder_rate):
            delay += profile.reorder_delay_s
            self.stats.frames_reordered += 1
            self._obs_count("reordered")

        payload, corrupted = self._corrupt(data, frame, attempt)
        if corrupted:
            self.stats.frames_corrupted += 1
            self._obs_count("corrupted")

        deliveries = [Delivery(payload, now + delay, corrupted)]
        if (profile.duplicate_rate > 0.0
                and self._roll("dup", frame, attempt)
                < profile.duplicate_rate):
            echo_delay = delay + profile.base_delay_s + profile.jitter_s * \
                self._roll("dup-jitter", frame, attempt)
            deliveries.append(Delivery(payload, now + echo_delay,
                                       corrupted, duplicate=True))
            self.stats.frames_duplicated += 1
            self._obs_count("duplicated")
        for delivery in deliveries:
            self.stats.bits_delivered += len(delivery.data) * 8
        self._obs_count("delivered", len(deliveries))
        return deliveries

    def _obs_count(self, event: str, amount: int = 1) -> None:
        rt = _obs_runtime.current()
        if rt is not None:
            rt.registry.counter(
                "repro_channel_frames_total",
                "channel-level frame events (sender side)",
            ).inc(amount, event=event)

    def _corrupt(self, data: bytes, frame: int,
                 attempt: int) -> "tuple[bytes, bool]":
        ber = self.profile.bit_error_rate
        if ber <= 0.0:
            return data, False
        rng = random.Random(derive_channel_seed(self.seed, "bits",
                                                self.session, frame,
                                                attempt))
        flipped: Optional[bytearray] = None
        for bit in range(len(data) * 8):
            if rng.random() < ber:
                if flipped is None:
                    flipped = bytearray(data)
                flipped[bit // 8] ^= 1 << (bit % 8)
        if flipped is None:
            return data, False
        return bytes(flipped), True
