"""The lossy body-area channel under the protocol level.

Frame codec with CRC protection (:mod:`repro.channel.frame`) and a
deterministic drop/corrupt/duplicate/delay/reorder channel simulator
(:mod:`repro.channel.model`) whose bit-error rate follows the
:class:`~repro.energy.radio.RadioModel` path-loss law.  The resilient
session layer (:mod:`repro.protocols.session`) runs every protocol
frame — including retransmissions — through this package so that link
reliability shows up where the paper says it must: in joules.
"""

from .frame import (
    Frame,
    FrameCorruptedError,
    FrameError,
    FrameFormatError,
    compress_point,
    crc16,
    decode_frame,
    decompress_point,
    encode_frame,
    frame_overhead_bits,
    int_from_bytes,
    int_to_bytes,
    point_width_bytes,
    scalar_width_bytes,
)
from .model import (
    BodyAreaChannel,
    ChannelStats,
    Delivery,
    LossProfile,
    ber_from_radio,
    derive_channel_seed,
)

__all__ = [
    "Frame",
    "FrameError",
    "FrameCorruptedError",
    "FrameFormatError",
    "crc16",
    "encode_frame",
    "decode_frame",
    "frame_overhead_bits",
    "int_to_bytes",
    "int_from_bytes",
    "compress_point",
    "decompress_point",
    "point_width_bytes",
    "scalar_width_bytes",
    "LossProfile",
    "Delivery",
    "ChannelStats",
    "BodyAreaChannel",
    "ber_from_radio",
    "derive_channel_seed",
]
