"""Reproduction of "Low-Energy Encryption for Medical Devices: Security
Adds an Extra Design Dimension" (Fan, Reparaz, Rožić, Verbauwhede,
DAC 2013).

The library rebuilds the paper's artifact — a low-energy,
side-channel-hardened elliptic-curve coprocessor for medical devices —
as a simulation stack, one subpackage per abstraction level of the
paper's security pyramid:

* :mod:`repro.gf2m` — GF(2^m) arithmetic and the digit-serial multiplier,
* :mod:`repro.ec` — curves, the Montgomery powering ladder, named curves,
* :mod:`repro.arch` — the cycle-accurate coprocessor model,
* :mod:`repro.power` — CMOS leakage and the calibrated energy model,
* :mod:`repro.sca` — timing/SPA/DPA/CPA attacks and leakage tests,
* :mod:`repro.fault` — fault injection and countermeasures,
* :mod:`repro.protocols` — Peeters–Hermans, Schnorr, AES mutual auth,
* :mod:`repro.primitives` — AES, SHA-1, MACs, DRBG, TRNG model,
* :mod:`repro.energy` — radio/battery/system-level energy trade-offs,
* :mod:`repro.security` — the pyramid model and the evaluation harness.
"""

__version__ = "1.0.0"
