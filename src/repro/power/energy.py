"""The calibrated energy model: watts, joules and throughput.

The chip's published operating point (Section 6) —

    50.4 uW at 847.5 kHz and Vdd = 1 V; 5.1 uJ per point
    multiplication; 9.8 point multiplications per second

— is reproduced by calibrating a single constant, the energy per
toggle-unit, against one simulated execution.  Everything else
(energy/PM, throughput, digit-size and voltage/frequency scaling)
follows from the cycle counts and activity the architecture model
produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.coprocessor import EccCoprocessor
from ..arch.trace import ExecutionTrace
from .models import CmosLeakageModel, LeakageModel
from .technology import (
    OperatingPoint,
    PAPER_OPERATING_POINT,
    PAPER_POWER_WATTS,
    TechnologyParams,
    UMC_130NM,
)

__all__ = ["EnergyModel", "EnergyReport", "calibrate_energy_model",
           "energy_per_toggle_for_activity"]


@dataclass(frozen=True)
class EnergyReport:
    """Power/energy/throughput of one operation at one operating point."""

    cycles: int
    frequency_hz: float
    power_watts: float
    energy_joules: float
    duration_seconds: float

    @property
    def operations_per_second(self) -> float:
        """Throughput, assuming back-to-back operations."""
        return 1.0 / self.duration_seconds

    def __str__(self) -> str:
        return (
            f"{self.cycles} cycles @ {self.frequency_hz / 1e3:.1f} kHz: "
            f"{self.power_watts * 1e6:.1f} uW, "
            f"{self.energy_joules * 1e6:.2f} uJ, "
            f"{self.operations_per_second:.2f} op/s"
        )


class EnergyModel:
    """Converts switching activity into electrical units.

    Parameters
    ----------
    energy_per_toggle:
        Joules consumed per toggle-unit at the nominal voltage — the
        calibration constant.
    technology:
        Process parameters (voltage scaling, leakage share).
    leakage_model:
        Electrical style used to turn activity into consumed charge.
    """

    def __init__(self, energy_per_toggle: float,
                 technology: TechnologyParams = UMC_130NM,
                 leakage_model: Optional[LeakageModel] = None):
        if energy_per_toggle <= 0:
            raise ValueError("energy per toggle must be positive")
        self.energy_per_toggle = energy_per_toggle
        self.technology = technology
        self.leakage_model = leakage_model or CmosLeakageModel()

    def activity(self, execution: ExecutionTrace) -> float:
        """Total consumed toggle-units of one execution.

        Together with the cycle count this is *all* the electrical
        model needs from a simulation: every operating point's report
        is arithmetic on ``(consumed, cycles)``, which is what lets a
        design-space cache store measurements once and derive the
        whole voltage/frequency grid without re-simulating.
        """
        return float(self.leakage_model.consumed(execution).sum())

    def report_activity(self, consumed: float, cycles: int,
                        point: OperatingPoint = PAPER_OPERATING_POINT,
                        ) -> EnergyReport:
        """Electrical characterization from raw (consumed, cycles)."""
        duration = cycles / point.frequency_hz
        dynamic = (
            consumed
            * self.energy_per_toggle
            * self.technology.dynamic_scale(point)
        )
        # Static power is a fixed fraction of total at the calibration
        # point: total = dynamic / (1 - static_fraction).
        total_energy = dynamic / (1.0 - self.technology.static_fraction)
        power = total_energy / duration
        return EnergyReport(
            cycles=int(cycles),
            frequency_hz=point.frequency_hz,
            power_watts=power,
            energy_joules=total_energy,
            duration_seconds=duration,
        )

    def report(self, execution: ExecutionTrace,
               point: OperatingPoint = PAPER_OPERATING_POINT) -> EnergyReport:
        """Full electrical characterization of one execution."""
        return self.report_activity(self.activity(execution),
                                    execution.cycles, point)

    def energy_per_operation(self, execution: ExecutionTrace,
                             point: OperatingPoint = PAPER_OPERATING_POINT) -> float:
        """Joules for one execution of the given trace."""
        return self.report(execution, point).energy_joules


def energy_per_toggle_for_activity(
    consumed: float,
    cycles: int,
    target_power_watts: float = PAPER_POWER_WATTS,
    point: OperatingPoint = PAPER_OPERATING_POINT,
    technology: TechnologyParams = UMC_130NM,
) -> float:
    """Solve the calibration constant from raw (consumed, cycles).

    The inverse of :meth:`EnergyModel.report_activity`: find the
    per-toggle energy that makes the average power of an execution
    with the given activity and cycle count equal
    ``target_power_watts`` at ``point``.
    """
    if consumed <= 0:
        raise ValueError("consumed activity must be positive")
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    duration = cycles / point.frequency_hz
    target_energy = target_power_watts * duration
    dynamic_target = target_energy * (1.0 - technology.static_fraction)
    return dynamic_target / (consumed * technology.dynamic_scale(point))


def calibrate_energy_model(
    coprocessor: EccCoprocessor,
    target_power_watts: float = PAPER_POWER_WATTS,
    point: OperatingPoint = PAPER_OPERATING_POINT,
    technology: TechnologyParams = UMC_130NM,
    leakage_model: Optional[LeakageModel] = None,
) -> EnergyModel:
    """Fit ``energy_per_toggle`` so average power matches the paper.

    Runs one representative point multiplication and solves for the
    per-toggle energy that makes the average power at the paper's
    operating point equal ``target_power_watts`` (50.4 uW).  The
    energy per point multiplication and the throughput then follow
    from the simulated cycle count — landing at ~5.1 uJ and ~9.8 PM/s,
    the paper's numbers.
    """
    model = leakage_model or CmosLeakageModel()
    execution = coprocessor.point_multiply(
        coprocessor.domain.order // 3,  # a typical dense scalar
        coprocessor.domain.generator,
        initial_z=1,
        recover_y=True,
    )
    consumed = float(model.consumed(execution).sum())
    energy_per_toggle = energy_per_toggle_for_activity(
        consumed, execution.cycles, target_power_watts, point, technology,
    )
    return EnergyModel(energy_per_toggle, technology, model)
