"""The virtual oscilloscope: noisy power traces from executions.

Figure 4's measurement setup — chip, current probe, oscilloscope —
reduced to: run the coprocessor, map its switching activity through a
leakage model, add measurement noise.  Because the coprocessor is
constant-time, traces are perfectly aligned by construction, exactly
as they would be after the alignment preprocessing of a real campaign.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..arch.trace import ExecutionTrace
from ..obs import profile as _obs_profile
from ..obs import runtime as _obs_runtime
from .models import CmosLeakageModel, LeakageModel

__all__ = ["PowerTraceSimulator", "TraceSet"]


class TraceSet:
    """A campaign's worth of measurements, as the attacker sees them.

    Attributes
    ----------
    samples:
        ``(n_traces, n_samples)`` float64 array of power samples.
    inputs:
        The known per-trace inputs (base points).
    known_randomness:
        Per-trace ``initial_z`` values, only populated in the white-box
        "randomness known to the adversary" scenario; None otherwise.
    iteration_slices:
        Cycle windows of each ladder iteration (public knowledge: the
        design is constant-time, so the schedule is fixed).
    key_bits:
        Ground truth (for *evaluation* of an attack, never used by the
        attack itself).
    """

    def __init__(self, samples: np.ndarray, inputs: list,
                 iteration_slices: list, key_bits: list,
                 known_randomness: Optional[list] = None):
        self.samples = samples
        self.inputs = inputs
        self.iteration_slices = iteration_slices
        self.key_bits = key_bits
        self.known_randomness = known_randomness

    @property
    def n_traces(self) -> int:
        """Number of acquired traces."""
        return self.samples.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per trace."""
        return self.samples.shape[1]

    def subset(self, n: int) -> "TraceSet":
        """The first ``n`` traces (for traces-to-disclosure sweeps)."""
        if n > self.n_traces:
            raise ValueError("subset larger than the campaign")
        return TraceSet(
            self.samples[:n],
            self.inputs[:n],
            self.iteration_slices,
            self.key_bits,
            None if self.known_randomness is None else self.known_randomness[:n],
        )


class PowerTraceSimulator:
    """Generates measurement traces from coprocessor executions.

    Parameters
    ----------
    leakage_model:
        Electrical model (CMOS by default; SABL/WDDL for the secure
        logic styles).
    noise_sigma:
        Gaussian measurement/switching noise, in the same toggle units
        as the model output.  The default is calibrated so that the
        unprotected DPA of experiment E5 succeeds at roughly the
        paper's 200 traces.
    seed:
        Seed of the noise generator (reproducible campaigns).
    """

    def __init__(self, leakage_model: Optional[LeakageModel] = None,
                 noise_sigma: float = 12.0, seed: int = 0):
        if noise_sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        self.leakage_model = leakage_model or CmosLeakageModel()
        self.noise_sigma = noise_sigma
        self._noise_rng = np.random.default_rng(seed)

    def measure(self, execution: ExecutionTrace) -> np.ndarray:
        """One noisy power trace for one execution."""
        with _obs_profile.timed("power_measure"):
            ideal = self.leakage_model.consumed(execution)
            if self.noise_sigma == 0:
                trace = ideal
            else:
                noise = self._noise_rng.normal(
                    0.0, self.noise_sigma, size=ideal.shape)
                trace = ideal + noise
        rt = _obs_runtime.current()
        if rt is not None:
            rt.registry.counter(
                "repro_power_traces_total",
                "synthetic power traces measured",
            ).inc()
        return trace

    def campaign(
        self,
        coprocessor: EccCoprocessor,
        key: int,
        points: list,
        rng=None,
        scenario: str = "protected",
        max_iterations: Optional[int] = None,
        recover_y: bool = False,
    ) -> TraceSet:
        """Acquire one trace per base point with a fixed secret key.

        ``scenario`` selects the Section 7 evaluation configuration:

        * ``"unprotected"`` — Z-randomization off (Z = 1 every run),
        * ``"known_randomness"`` — randomization on, but the adversary
          is handed each run's Z (white-box evaluation),
        * ``"protected"`` — randomization on, randomness secret.
        """
        if scenario not in ("unprotected", "known_randomness", "protected"):
            raise ValueError(f"unknown scenario {scenario!r}")
        if scenario != "unprotected" and rng is None:
            raise ValueError("randomized scenarios need an rng")
        rows = []
        randomness = [] if scenario == "known_randomness" else None
        iteration_slices = None
        key_bits = None
        field = coprocessor.domain.field
        for point in points:
            if scenario == "unprotected":
                z0 = 1
            else:
                z0 = 0
                while z0 == 0:
                    z0 = rng.getrandbits(field.m) & (field.order - 1)
            execution = coprocessor.point_multiply(
                key,
                point,
                initial_z=z0,
                max_iterations=max_iterations,
                recover_y=recover_y,
            )
            rows.append(self.measure(execution))
            if randomness is not None:
                randomness.append(z0)
            if iteration_slices is None:
                iteration_slices = execution.iteration_slices()
                key_bits = list(execution.key_bits)
        samples = np.vstack(rows)
        return TraceSet(samples, list(points), iteration_slices, key_bits,
                        randomness)
