"""Reusable design-point evaluation: calibrate once, measure anywhere.

Every experiment in the repo used to repeat the same boilerplate:
build a coprocessor, calibrate the energy model against the paper's
operating point, run a point multiplication, hand the trace to the
model.  This module hoists that flow into three pieces —

* :func:`reference_model` — the calibrated :class:`EnergyModel`
  (fit on the paper's reference design: digit size 4, full
  countermeasures, 847.5 kHz / 1.0 V -> 50.4 uW),
* :class:`MeasuredDesign` — one simulated design point reduced to the
  pair the electrical model actually needs, ``(consumed, cycles)``,
* :class:`DesignEvaluation` — that measurement priced at a concrete
  operating point: area, latency, power, energy, area x energy.

The split matters for design-space exploration: a measurement is
expensive (a full cycle-level simulation) but voltage/frequency
scaling is arithmetic, so `repro.dse` caches ``MeasuredDesign`` data
per configuration and derives every (Vdd, f) grid row from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Union

from ..arch.area import AreaBreakdown, ecc_core_area
from ..arch.coprocessor import CoprocessorConfig, EccCoprocessor
from .energy import EnergyModel, EnergyReport, calibrate_energy_model
from .models import CmosLeakageModel, LeakageModel
from .technology import (
    OperatingPoint,
    PAPER_OPERATING_POINT,
    PAPER_POWER_WATTS,
    TechnologyParams,
    UMC_130NM,
)

__all__ = [
    "DesignEvaluation",
    "MeasuredDesign",
    "design_area",
    "reference_config",
    "reference_model",
]


def design_area(config: CoprocessorConfig) -> AreaBreakdown:
    """Gate-count area of one coprocessor configuration."""
    field = config.domain.field
    return ecc_core_area(
        m=field.m,
        digit_size=config.digit_size,
        register_count=config.core_register_count,
        mux_fanout=field.m + 1,
        dedicated_squarer=config.dedicated_squarer,
    )


def reference_config(curve: Union[str, None, object] = None) -> CoprocessorConfig:
    """The paper's protected design (digit size 4, all countermeasures).

    ``curve`` may be a curve name ("K-163", "TOY-B17", ...), a
    :class:`~repro.ec.curves.NamedCurve`, or None for the default
    K-163 domain.
    """
    if curve is None:
        return CoprocessorConfig(digit_size=4)
    if isinstance(curve, str):
        from ..ec.curves import get_curve
        curve = get_curve(curve)
    return CoprocessorConfig(domain=curve, digit_size=4)


def reference_model(
    curve: Union[str, None, object] = None,
    target_power_watts: float = PAPER_POWER_WATTS,
    point: OperatingPoint = PAPER_OPERATING_POINT,
    technology: TechnologyParams = UMC_130NM,
    leakage_model: Optional[LeakageModel] = None,
) -> EnergyModel:
    """Energy model calibrated on the reference design of ``curve``.

    This is the calibrate-then-measure boilerplate shared by the
    benchmarks, hoisted: fit the per-toggle energy so the *reference*
    configuration hits the paper's published power, then reuse that
    one constant to price every other design point on the same curve.
    """
    coprocessor = EccCoprocessor(reference_config(curve))
    return calibrate_energy_model(
        coprocessor,
        target_power_watts=target_power_watts,
        point=point,
        technology=technology,
        leakage_model=leakage_model,
    )


@dataclass(frozen=True)
class DesignEvaluation:
    """One design point priced at one operating point."""

    config: CoprocessorConfig
    area: AreaBreakdown
    report: EnergyReport

    @property
    def area_ge(self) -> float:
        return self.area.total

    @property
    def cycles(self) -> int:
        return self.report.cycles

    @property
    def latency_s(self) -> float:
        return self.report.duration_seconds

    @property
    def power_uw(self) -> float:
        return self.report.power_watts * 1e6

    @property
    def energy_uj(self) -> float:
        return self.report.energy_joules * 1e6

    @property
    def area_energy(self) -> float:
        """The paper's figure of merit: gate count x uJ per operation."""
        return self.area.total * self.energy_uj


@dataclass(frozen=True)
class MeasuredDesign:
    """A simulated design point reduced to its electrical essentials.

    ``consumed`` is the total toggle-unit activity of one point
    multiplication, ``cycles`` its length.  Together with the area
    model (pure arithmetic on the config) they determine every
    operating-point report without another simulation.
    """

    config: CoprocessorConfig
    cycles: int
    consumed: float
    area: AreaBreakdown = dataclass_field(default=None)

    def __post_init__(self):
        if self.area is None:
            object.__setattr__(self, "area", design_area(self.config))

    @classmethod
    def measure(cls, config: CoprocessorConfig,
                model: Optional[EnergyModel] = None,
                scalar: Optional[int] = None,
                point=None,
                rng=None,
                initial_z: Optional[int] = None,
                recover_y: bool = True) -> "MeasuredDesign":
        """Run one point multiplication and record its activity.

        The defaults reproduce the calibration workload: the dense
        scalar ``order // 3`` on the curve generator with a fixed
        projective start, so measuring the reference config under a
        model calibrated the same way returns the paper's numbers
        exactly.
        """
        coprocessor = EccCoprocessor(config)
        domain = coprocessor.domain
        if scalar is None:
            scalar = domain.order // 3
        if point is None:
            point = domain.generator
        if rng is None and initial_z is None:
            initial_z = 1
        execution = coprocessor.point_multiply(
            scalar, point, rng=rng, initial_z=initial_z,
            recover_y=recover_y,
        )
        leakage = model.leakage_model if model is not None \
            else CmosLeakageModel()
        consumed = float(leakage.consumed(execution).sum())
        return cls(config=config, cycles=execution.cycles,
                   consumed=consumed)

    def at(self, model: EnergyModel,
           point: OperatingPoint = PAPER_OPERATING_POINT,
           ) -> DesignEvaluation:
        """Price this measurement at an operating point."""
        report = model.report_activity(self.consumed, self.cycles, point)
        return DesignEvaluation(config=self.config, area=self.area,
                                report=report)
