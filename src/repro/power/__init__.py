"""Power and energy modelling (the circuit level's electrical view).

Leakage models (CMOS vs SABL/WDDL), the virtual oscilloscope that
produces noisy power traces, and the energy model calibrated to the
paper's published UMC 0.13 um operating point.
"""

from .energy import (
    EnergyModel,
    EnergyReport,
    calibrate_energy_model,
    energy_per_toggle_for_activity,
)
from .evaluation import (
    DesignEvaluation,
    MeasuredDesign,
    design_area,
    reference_config,
    reference_model,
)
from .export import (
    iteration_profile,
    load_traceset,
    save_traceset,
    trace_to_csv,
)
from .models import (
    ChannelWeights,
    CmosLeakageModel,
    LeakageModel,
    SablLeakageModel,
    WddlLeakageModel,
)
from .simulator import PowerTraceSimulator, TraceSet
from .technology import (
    OperatingPoint,
    PAPER_ENERGY_PER_PM_JOULES,
    PAPER_OPERATING_POINT,
    PAPER_POWER_WATTS,
    PAPER_THROUGHPUT_PM_PER_S,
    TechnologyParams,
    UMC_130NM,
)

__all__ = [
    "EnergyModel",
    "save_traceset",
    "load_traceset",
    "trace_to_csv",
    "iteration_profile",
    "EnergyReport",
    "calibrate_energy_model",
    "energy_per_toggle_for_activity",
    "DesignEvaluation",
    "MeasuredDesign",
    "design_area",
    "reference_config",
    "reference_model",
    "LeakageModel",
    "CmosLeakageModel",
    "SablLeakageModel",
    "WddlLeakageModel",
    "ChannelWeights",
    "PowerTraceSimulator",
    "TraceSet",
    "TechnologyParams",
    "OperatingPoint",
    "UMC_130NM",
    "PAPER_OPERATING_POINT",
    "PAPER_POWER_WATTS",
    "PAPER_ENERGY_PER_PM_JOULES",
    "PAPER_THROUGHPUT_PM_PER_S",
]
