"""Trace export and aggregation utilities.

The glue between the virtual oscilloscope and external analysis
tooling (MATLAB in the paper's Figure 4; numpy/CSV here): persist
campaigns to ``.npz``, dump single traces to CSV, and compute averaged
per-iteration profiles — the "power signature" plots the SPA
discussion reasons about.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .simulator import TraceSet

__all__ = ["save_traceset", "load_traceset", "trace_to_csv",
           "iteration_profile"]


def save_traceset(traces: TraceSet, path) -> None:
    """Persist a campaign to a ``.npz`` archive.

    Inputs are stored as (x, y) coordinate pairs; ground-truth key bits
    travel with the archive because the format serves *evaluation*
    campaigns (a real adversary's capture obviously has no such field).
    """
    path = pathlib.Path(path)
    arrays = {
        "samples": traces.samples,
        "inputs_x": np.array([p.x for p in traces.inputs], dtype=object),
        "inputs_y": np.array([p.y for p in traces.inputs], dtype=object),
        "iteration_slices": np.asarray(traces.iteration_slices,
                                       dtype=np.int64),
        "key_bits": np.asarray(traces.key_bits, dtype=np.int8),
    }
    if traces.known_randomness is not None:
        arrays["known_randomness"] = np.array(traces.known_randomness,
                                              dtype=object)
    np.savez_compressed(path, **arrays)


def load_traceset(path) -> TraceSet:
    """Load a campaign saved by :func:`save_traceset`."""
    from ..ec.point import AffinePoint

    with np.load(pathlib.Path(path), allow_pickle=True) as archive:
        inputs = [
            AffinePoint(int(x), int(y))
            for x, y in zip(archive["inputs_x"], archive["inputs_y"])
        ]
        known = None
        if "known_randomness" in archive:
            known = [int(z) for z in archive["known_randomness"]]
        return TraceSet(
            samples=archive["samples"],
            inputs=inputs,
            iteration_slices=[tuple(map(int, row))
                              for row in archive["iteration_slices"]],
            key_bits=[int(b) for b in archive["key_bits"]],
            known_randomness=known,
        )


def trace_to_csv(samples: np.ndarray, path) -> None:
    """Write one trace (or a matrix of traces) as CSV, one row per trace."""
    matrix = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    np.savetxt(pathlib.Path(path), matrix, delimiter=",", fmt="%.6f")


def iteration_profile(samples: np.ndarray, iteration_slices: list,
                      width: int = None) -> np.ndarray:
    """Average power profile of a ladder iteration.

    Aligns every iteration window (they all have the same schedule —
    the device is constant-time), truncates to the shortest (or the
    given ``width``) and averages across iterations and traces.  The
    result is the per-cycle "signature" of one ladder step.
    """
    matrix = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    if not iteration_slices:
        raise ValueError("no iteration windows supplied")
    min_width = min(end - start for start, end in iteration_slices)
    if width is not None:
        if width < 1 or width > min_width:
            raise ValueError("width out of range for these windows")
        min_width = width
    windows = [
        matrix[:, start:start + min_width] for start, __ in iteration_slices
    ]
    return np.mean(np.stack(windows), axis=(0, 1))
