"""Leakage models: from switching activity to instantaneous current.

Section 6: "During the 0->1 transition at the output, a CMOS gate
consumes power from the source, which is not the case for 0->0, 1->1
or 1->0 transitions.  This asymmetry is what enables the attacker to
develop a power consumption model."  The Hamming-distance activity the
architecture layer records is exactly the toggle count; a standard-
CMOS model passes it through (data-dependent current), while the
dynamic differential logic styles (SABL, WDDL [19]) consume a
*constant* amount per cycle with only a small residual imbalance.

All models map an :class:`~repro.arch.trace.ExecutionTrace` to a numpy
array of per-cycle current, in arbitrary "toggle units" that the
energy model converts to watts after calibration.
"""

from __future__ import annotations

import numpy as np

from ..arch.trace import ExecutionTrace

__all__ = [
    "LeakageModel",
    "CmosLeakageModel",
    "SablLeakageModel",
    "WddlLeakageModel",
    "ChannelWeights",
]


class ChannelWeights:
    """Relative electrical weight of the four activity channels.

    The control network drives long, repeater-laden wires (Section 6),
    so one control toggle switches more capacitance than one datapath
    toggle.  A clock toggle, by contrast, drives a single FF clock pin
    (the tree's per-leaf load is already counted in the architecture
    model), so its unit weight is small; with the always-on policy the
    clock then contributes a realistic ~1/3 of total power.
    """

    def __init__(self, datapath: float = 1.0, register: float = 1.2,
                 control: float = 3.0, clock: float = 0.15):
        for name, value in (("datapath", datapath), ("register", register),
                            ("control", control), ("clock", clock)):
            if value < 0:
                raise ValueError(f"{name} weight must be non-negative")
        self.datapath = datapath
        self.register = register
        self.control = control
        self.clock = clock


class LeakageModel:
    """Base class: subclasses implement :meth:`consumed`."""

    def consumed(self, trace: ExecutionTrace) -> np.ndarray:
        """Per-cycle consumed charge (toggle units) for an execution."""
        raise NotImplementedError

    @staticmethod
    def _channels(trace: ExecutionTrace) -> tuple:
        return (
            np.asarray(trace.datapath, dtype=np.float64),
            np.asarray(trace.register, dtype=np.float64),
            np.asarray(trace.control, dtype=np.float64),
            np.asarray(trace.clock, dtype=np.float64),
        )


class CmosLeakageModel(LeakageModel):
    """Standard CMOS: current proportional to switching activity.

    The fundamentally leaky style — every data-dependent toggle shows
    up in the trace.  This is the model under which the paper's chip
    is evaluated (it is a standard-cell design; its defences are
    architectural/algorithmic, not a secure logic style).
    """

    def __init__(self, weights: ChannelWeights = None):
        self.weights = weights or ChannelWeights()

    def consumed(self, trace: ExecutionTrace) -> np.ndarray:
        dp, reg, ctrl, clk = self._channels(trace)
        w = self.weights
        return w.datapath * dp + w.register * reg + w.control * ctrl + w.clock * clk


class _DifferentialLogicModel(LeakageModel):
    """Shared machinery for constant-power dual-rail styles.

    Every cycle consumes ``cells_per_cycle`` units regardless of data
    (each dual-rail gate fires exactly one of its two outputs), plus a
    ``residual_imbalance`` fraction of the true activity — the
    imperfect wire balancing that real SABL/WDDL layouts exhibit.
    """

    #: Area/power overhead factor vs standard CMOS (Section 6: "high
    #: area and power cost").
    POWER_OVERHEAD = 3.0

    def __init__(self, cells_per_cycle: float, residual_imbalance: float):
        if cells_per_cycle <= 0:
            raise ValueError("cells_per_cycle must be positive")
        if residual_imbalance < 0:
            raise ValueError("residual imbalance must be non-negative")
        self.cells_per_cycle = cells_per_cycle
        self.residual_imbalance = residual_imbalance

    def consumed(self, trace: ExecutionTrace) -> np.ndarray:
        dp, reg, ctrl, clk = self._channels(trace)
        data_dependent = dp + reg + ctrl + clk
        constant = np.full_like(data_dependent, self.cells_per_cycle)
        return self.POWER_OVERHEAD * constant + self.residual_imbalance * data_dependent


class SablLeakageModel(_DifferentialLogicModel):
    """Sense-Amplifier Based Logic: full-custom, best balancing.

    "SABL consumes the same amount of energy regardless of the data
    being processed" — modelled as constant consumption with a very
    small residual (requires the balanced dual-rail layout the paper
    mentions).
    """

    def __init__(self, cells_per_cycle: float = 400.0,
                 residual_imbalance: float = 0.01):
        super().__init__(cells_per_cycle, residual_imbalance)


class WddlLeakageModel(_DifferentialLogicModel):
    """Wave Dynamic Differential Logic: standard-cell compatible [19].

    Same principle as SABL but built from ordinary cells with a
    synthesis flow; balancing is slightly worse, so the default
    residual is larger.
    """

    def __init__(self, cells_per_cycle: float = 400.0,
                 residual_imbalance: float = 0.05):
        super().__init__(cells_per_cycle, residual_imbalance)
