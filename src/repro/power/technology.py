"""CMOS technology parameters and scaling laws.

The paper's chip is fabricated in UMC 0.13 um and characterized at one
operating point: 847.5 kHz, Vdd = 1 V, 50.4 uW, 5.1 uJ per point
multiplication (Section 6).  We have no silicon, so the technology
model is *calibrated* to that point and used to extrapolate along the
standard first-order laws: dynamic power ~ C * Vdd^2 * f * activity,
static power ~ Vdd * I_leak.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParams", "UMC_130NM", "PAPER_OPERATING_POINT",
           "OperatingPoint"]


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair the chip is characterized at."""

    frequency_hz: float
    vdd: float

    def __post_init__(self):
        if self.frequency_hz <= 0 or self.vdd <= 0:
            raise ValueError("frequency and voltage must be positive")


@dataclass(frozen=True)
class TechnologyParams:
    """A CMOS process node, as seen by the energy model.

    ``nominal_vdd`` anchors the voltage-scaling law; ``static_fraction``
    is the share of total power that is leakage at the calibration
    point (small for 0.13 um at ~1 MHz).
    """

    name: str
    feature_size_nm: float
    nominal_vdd: float
    static_fraction: float = 0.02

    def __post_init__(self):
        if not 0.0 <= self.static_fraction < 1.0:
            raise ValueError("static fraction must be in [0, 1)")

    def dynamic_scale(self, point: OperatingPoint) -> float:
        """Dynamic-energy-per-toggle multiplier vs the nominal voltage."""
        return (point.vdd / self.nominal_vdd) ** 2


#: The paper's process.
UMC_130NM = TechnologyParams(
    name="UMC 0.13um CMOS", feature_size_nm=130.0, nominal_vdd=1.0
)

#: The paper's measured operating point (Section 6).
PAPER_OPERATING_POINT = OperatingPoint(frequency_hz=847_500.0, vdd=1.0)

#: Published measurements at that point, used for calibration.
PAPER_POWER_WATTS = 50.4e-6
PAPER_ENERGY_PER_PM_JOULES = 5.1e-6
PAPER_THROUGHPUT_PM_PER_S = 9.8
