"""Command-line interface: ``python -m repro <command>``.

Quick access to the library's headline artifacts without writing a
script:

* ``info``      — design-point summary (curve, registers, cycles),
* ``energy``    — the calibrated E1 operating-point report,
* ``area``      — the gate-count table,
* ``listing``   — the microcode listing of a point multiplication,
* ``evaluate``  — the white-box attack battery (optionally against the
  unprotected strawman),
* ``campaign``  — the trace-acquisition and attack-campaign engine
  (``acquire`` / ``status`` / ``attack`` on a campaign directory).

Every command returns its report as a string (and prints it), so the
CLI is testable without subprocesses.
"""

from __future__ import annotations

import argparse
import random

__all__ = ["main", "cmd_info", "cmd_energy", "cmd_area", "cmd_listing",
           "cmd_evaluate", "cmd_campaign_acquire", "cmd_campaign_status",
           "cmd_campaign_attack"]


def cmd_info() -> str:
    """Design-point summary."""
    from . import __version__
    from .arch import CoprocessorConfig, EccCoprocessor

    coprocessor = EccCoprocessor(CoprocessorConfig())
    config = coprocessor.config
    lines = [
        f"repro {__version__} — DAC 2013 low-energy ECC coprocessor "
        "reproduction",
        f"curve: {coprocessor.domain!r}",
        f"digit size: {config.digit_size} "
        f"(multiplication = {coprocessor.malu.mul_cycles} datapath cycles)",
        f"secure-zone registers: {config.core_register_count} x "
        f"{coprocessor.domain.field.m} bits",
        f"ladder iterations per point multiplication: "
        f"{coprocessor.iterations_per_multiplication}",
        "countermeasures: randomized projective coordinates, balanced "
        "mux encoding, constant-cycle ISA, always-on clocks, input "
        "isolation",
    ]
    return "\n".join(lines)


def cmd_energy(seed: int = 1) -> str:
    """The E1 operating-point report (runs one point multiplication)."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .power import calibrate_energy_model

    coprocessor = EccCoprocessor(CoprocessorConfig())
    model = calibrate_energy_model(coprocessor)
    rng = random.Random(seed)
    key = coprocessor.domain.scalar_ring.random_scalar(rng)
    execution = coprocessor.point_multiply(
        key, coprocessor.domain.generator, rng=rng
    )
    report = model.report(execution)
    return (
        f"{report}\n"
        "paper:  50.4 uW, 5.10 uJ, 9.80 op/s (UMC 0.13um, 847.5 kHz, 1 V)"
    )


def cmd_area() -> str:
    """The gate-count comparison table."""
    from .arch import AES_ENC_GATES, SHA1_GATES, ecc_core_area
    from .primitives import PRESENT80_GATES

    ecc = ecc_core_area()
    rows = [
        ("PRESENT-80", PRESENT80_GATES),
        ("AES-128 enc", AES_ENC_GATES),
        ("SHA-1", SHA1_GATES),
        ("ECC K-163 core (model)", round(ecc.total)),
    ]
    lines = [f"{name:<26}{gates:>8} GE" for name, gates in rows]
    lines.append("")
    lines += [f"  {block:<16}{gates:>8.0f} GE"
              for block, gates in ecc.as_dict().items()]
    return "\n".join(lines)


def cmd_listing(limit: int = 40) -> str:
    """Microcode listing of (the start of) a point multiplication."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .arch.program import analyze_program, format_listing

    coprocessor = EccCoprocessor(CoprocessorConfig())
    trace = coprocessor.point_multiply(
        0x1234, coprocessor.domain.generator, initial_z=1, max_iterations=2
    )
    stats = analyze_program(trace.instructions,
                            coprocessor.config.fetch_overhead)
    return (
        format_listing(trace.instructions, limit=limit)
        + "\n\n" + str(stats)
    )


def cmd_evaluate(weak: bool = False, traces: int = 80,
                 seed: int = 2013) -> str:
    """The white-box attack battery (Figure 4).

    ``seed`` is threaded through the whole evaluation (keys, points,
    randomization, oscilloscope noise) — nothing falls back to global
    RNG state, so two runs with the same seed are identical.
    """
    from .arch import CoprocessorConfig, UnbalancedEncoding
    from .security import WhiteBoxEvaluation

    if weak:
        config = CoprocessorConfig(randomize_z=False,
                                   mux_encoding=UnbalancedEncoding())
    else:
        config = CoprocessorConfig()
    report = WhiteBoxEvaluation(config, n_traces=traces, n_bits=2,
                                seed=seed).run()
    return report.render()


# ----------------------------------------------------------------------
# campaign verbs
# ----------------------------------------------------------------------

def _campaign_spec_from_args(args) -> "object":
    from .campaign import CampaignSpec

    return CampaignSpec(
        n_traces=args.traces,
        shard_size=args.shard_size,
        scenario=args.scenario,
        seed=args.seed,
        max_iterations=None if args.bits is None else args.bits + 1,
        noise_sigma=args.noise,
    )


def cmd_campaign_acquire(directory: str, spec, workers=None,
                         quiet: bool = False) -> str:
    """Acquire (or resume) a campaign into ``directory``."""
    from .campaign import AcquisitionEngine, ConsoleReporter, NullReporter

    reporter = NullReporter() if quiet else ConsoleReporter()
    engine = AcquisitionEngine(directory, spec, workers=workers,
                               reporter=reporter)
    store = engine.run()
    m = engine.metrics
    return (
        f"campaign {directory}: {store.n_traces_on_disk}/"
        f"{spec.n_traces} traces on disk "
        f"({len(store.shard_records)} shard(s))\n"
        + m.summary()
    )


def cmd_campaign_status(directory: str) -> str:
    """Manifest summary: progress, throughput, integrity."""
    from .campaign import TraceStore

    store = TraceStore(directory)
    if not store.exists:
        return f"campaign {directory}: no manifest (nothing acquired yet)"
    store.load()
    spec = store.spec
    missing = store.missing_shards()
    walls = [r.wall_seconds for r in store.shard_records]
    rate = (store.n_traces_on_disk / sum(walls)) if walls else 0.0
    lines = [
        f"campaign {directory}",
        f"  scenario: {spec.scenario}  curve: {spec.curve}  "
        f"seed: {spec.seed}",
        f"  traces: {store.n_traces_on_disk}/{spec.n_traces} "
        f"({len(store.shard_records)}/{spec.n_shards} shards, "
        f"shard size {spec.shard_size})",
        f"  missing shards: {missing if missing else 'none — complete'}",
    ]
    if walls:
        lines.append(
            f"  acquisition wall: {sum(walls):.2f}s total, "
            f"{rate:.1f} traces/s per worker "
            f"(per-shard {min(walls):.2f}-{max(walls):.2f}s)"
        )
    return "\n".join(lines)


def cmd_campaign_attack(directory: str, attack: str = "dpa",
                        bits: int = 2, grid=None,
                        verify: bool = False) -> str:
    """Run a streaming attack over an acquired campaign."""
    from .campaign import StreamingCpa, StreamingDpa, TraceStore, \
        streaming_spa

    store = TraceStore(directory).load()
    if verify:
        store.verify_all()
    use_z = store.spec.scenario == "known_randomness"
    header = (
        f"campaign {directory}: {attack.upper()} over "
        f"{store.n_traces_on_disk} traces "
        f"({store.spec.scenario}"
        + (", stored randomness used" if use_z else "")
        + ")"
    )
    if attack == "spa":
        result = streaming_spa(store)
        return (
            f"{header}\n"
            f"recovered {len(result.recovered_bits)} ladder bits with "
            f"{result.bit_errors} errors from the averaged trace"
        )
    cls = {"dpa": StreamingDpa, "cpa": StreamingCpa}.get(attack)
    if cls is None:
        raise ValueError(f"unknown attack {attack!r}")
    engine = cls(store, use_stored_randomness=use_z)
    lines = [header]
    if grid:
        disclosure = engine.traces_to_disclosure(bits, grid)
        lines.append(
            f"traces to disclosure over grid {sorted(grid)}: {disclosure}"
        )
    result = engine.recover_bits(bits)
    lines.append(
        f"{result.num_correct}/{bits} bits recovered "
        f"(chosen {result.recovered_bits}, truth {result.true_bits})"
    )
    lines.append(
        "peak statistics: "
        f"{[round(p, 2) for p in result.peak_statistics]}"
    )
    lines.append(
        "verdict: key bits "
        + ("RECOVERED" if result.success else "NOT recovered")
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC 2013 low-energy ECC coprocessor reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="design-point summary")
    sub.add_parser("energy", help="calibrated operating-point report")
    sub.add_parser("area", help="gate-count table")
    listing = sub.add_parser("listing", help="microcode listing")
    listing.add_argument("--limit", type=int, default=40)
    evaluate = sub.add_parser("evaluate", help="white-box attack battery")
    evaluate.add_argument("--weak", action="store_true",
                          help="evaluate the unprotected strawman")
    evaluate.add_argument("--traces", type=int, default=80)
    evaluate.add_argument("--seed", type=int, default=2013,
                          help="master seed of the whole evaluation")

    campaign = sub.add_parser(
        "campaign", help="trace-acquisition / attack campaign engine"
    )
    verbs = campaign.add_subparsers(dest="verb", required=True)

    acquire = verbs.add_parser("acquire",
                               help="acquire (or resume) a campaign")
    acquire.add_argument("--dir", required=True, help="campaign directory")
    acquire.add_argument("--traces", type=int, default=256)
    acquire.add_argument("--shard-size", type=int, default=64)
    acquire.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cores, max 8)")
    acquire.add_argument("--scenario", default="protected",
                         choices=("unprotected", "known_randomness",
                                  "protected"))
    acquire.add_argument("--seed", type=int, default=0)
    acquire.add_argument("--bits", type=int, default=4,
                         help="ladder bits to acquire (truncates traces); "
                              "omit for full-length traces")
    acquire.add_argument("--full-length", dest="bits",
                         action="store_const", const=None,
                         help="acquire full point multiplications")
    acquire.add_argument("--noise", type=float, default=38.0)
    acquire.add_argument("--quiet", action="store_true")

    status = verbs.add_parser("status", help="manifest summary")
    status.add_argument("--dir", required=True)

    attack = verbs.add_parser("attack", help="streaming attack on a "
                                             "campaign directory")
    attack.add_argument("--dir", required=True)
    attack.add_argument("--attack", default="dpa",
                        choices=("dpa", "cpa", "spa"))
    attack.add_argument("--bits", type=int, default=2)
    attack.add_argument("--grid", default=None,
                        help="comma-separated traces-to-disclosure grid")
    attack.add_argument("--verify", action="store_true",
                        help="digest-check every shard before reading")

    args = parser.parse_args(argv)

    if args.command == "info":
        output = cmd_info()
    elif args.command == "energy":
        output = cmd_energy()
    elif args.command == "area":
        output = cmd_area()
    elif args.command == "listing":
        output = cmd_listing(limit=args.limit)
    elif args.command == "campaign":
        if args.verb == "acquire":
            output = cmd_campaign_acquire(
                args.dir, _campaign_spec_from_args(args),
                workers=args.workers, quiet=args.quiet,
            )
        elif args.verb == "status":
            output = cmd_campaign_status(args.dir)
        else:
            grid = None
            if args.grid:
                grid = [int(g) for g in args.grid.split(",") if g]
            output = cmd_campaign_attack(args.dir, attack=args.attack,
                                         bits=args.bits, grid=grid,
                                         verify=args.verify)
    else:
        output = cmd_evaluate(weak=args.weak, traces=args.traces,
                              seed=args.seed)
    try:
        print(output)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0
