"""Command-line interface: ``python -m repro <command>``.

Quick access to the library's headline artifacts without writing a
script:

* ``info``      — design-point summary (curve, registers, cycles),
* ``energy``    — the calibrated E1 operating-point report,
* ``area``      — the gate-count table,
* ``listing``   — the microcode listing of a point multiplication,
* ``evaluate``  — the white-box attack battery (optionally against the
  unprotected strawman).

Every command returns its report as a string (and prints it), so the
CLI is testable without subprocesses.
"""

from __future__ import annotations

import argparse
import random

__all__ = ["main", "cmd_info", "cmd_energy", "cmd_area", "cmd_listing",
           "cmd_evaluate"]


def cmd_info() -> str:
    """Design-point summary."""
    from . import __version__
    from .arch import CoprocessorConfig, EccCoprocessor

    coprocessor = EccCoprocessor(CoprocessorConfig())
    config = coprocessor.config
    lines = [
        f"repro {__version__} — DAC 2013 low-energy ECC coprocessor "
        "reproduction",
        f"curve: {coprocessor.domain!r}",
        f"digit size: {config.digit_size} "
        f"(multiplication = {coprocessor.malu.mul_cycles} datapath cycles)",
        f"secure-zone registers: {config.core_register_count} x "
        f"{coprocessor.domain.field.m} bits",
        f"ladder iterations per point multiplication: "
        f"{coprocessor.iterations_per_multiplication}",
        "countermeasures: randomized projective coordinates, balanced "
        "mux encoding, constant-cycle ISA, always-on clocks, input "
        "isolation",
    ]
    return "\n".join(lines)


def cmd_energy() -> str:
    """The E1 operating-point report (runs one point multiplication)."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .power import calibrate_energy_model

    coprocessor = EccCoprocessor(CoprocessorConfig())
    model = calibrate_energy_model(coprocessor)
    rng = random.Random(1)
    key = coprocessor.domain.scalar_ring.random_scalar(rng)
    execution = coprocessor.point_multiply(
        key, coprocessor.domain.generator, rng=rng
    )
    report = model.report(execution)
    return (
        f"{report}\n"
        "paper:  50.4 uW, 5.10 uJ, 9.80 op/s (UMC 0.13um, 847.5 kHz, 1 V)"
    )


def cmd_area() -> str:
    """The gate-count comparison table."""
    from .arch import AES_ENC_GATES, SHA1_GATES, ecc_core_area
    from .primitives import PRESENT80_GATES

    ecc = ecc_core_area()
    rows = [
        ("PRESENT-80", PRESENT80_GATES),
        ("AES-128 enc", AES_ENC_GATES),
        ("SHA-1", SHA1_GATES),
        ("ECC K-163 core (model)", round(ecc.total)),
    ]
    lines = [f"{name:<26}{gates:>8} GE" for name, gates in rows]
    lines.append("")
    lines += [f"  {block:<16}{gates:>8.0f} GE"
              for block, gates in ecc.as_dict().items()]
    return "\n".join(lines)


def cmd_listing(limit: int = 40) -> str:
    """Microcode listing of (the start of) a point multiplication."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .arch.program import analyze_program, format_listing

    coprocessor = EccCoprocessor(CoprocessorConfig())
    trace = coprocessor.point_multiply(
        0x1234, coprocessor.domain.generator, initial_z=1, max_iterations=2
    )
    stats = analyze_program(trace.instructions,
                            coprocessor.config.fetch_overhead)
    return (
        format_listing(trace.instructions, limit=limit)
        + "\n\n" + str(stats)
    )


def cmd_evaluate(weak: bool = False, traces: int = 80) -> str:
    """The white-box attack battery (Figure 4)."""
    from .arch import CoprocessorConfig, UnbalancedEncoding
    from .security import WhiteBoxEvaluation

    if weak:
        config = CoprocessorConfig(randomize_z=False,
                                   mux_encoding=UnbalancedEncoding())
    else:
        config = CoprocessorConfig()
    report = WhiteBoxEvaluation(config, n_traces=traces, n_bits=2,
                                seed=2013).run()
    return report.render()


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC 2013 low-energy ECC coprocessor reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="design-point summary")
    sub.add_parser("energy", help="calibrated operating-point report")
    sub.add_parser("area", help="gate-count table")
    listing = sub.add_parser("listing", help="microcode listing")
    listing.add_argument("--limit", type=int, default=40)
    evaluate = sub.add_parser("evaluate", help="white-box attack battery")
    evaluate.add_argument("--weak", action="store_true",
                          help="evaluate the unprotected strawman")
    evaluate.add_argument("--traces", type=int, default=80)
    args = parser.parse_args(argv)

    if args.command == "info":
        output = cmd_info()
    elif args.command == "energy":
        output = cmd_energy()
    elif args.command == "area":
        output = cmd_area()
    elif args.command == "listing":
        output = cmd_listing(limit=args.limit)
    else:
        output = cmd_evaluate(weak=args.weak, traces=args.traces)
    try:
        print(output)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0
