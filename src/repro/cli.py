"""Command-line interface: ``python -m repro <command>``.

Quick access to the library's headline artifacts without writing a
script:

* ``info``      — design-point summary (curve, registers, cycles),
* ``energy``    — the calibrated E1 operating-point report,
* ``area``      — the gate-count table,
* ``listing``   — the microcode listing of a point multiplication,
* ``evaluate``  — the white-box attack battery (optionally against the
  unprotected strawman),
* ``campaign``  — the trace-acquisition and attack-campaign engine
  (``acquire`` / ``status`` / ``attack`` / ``doctor`` on a campaign
  directory).

Every command returns its report as a string (and prints it), so the
CLI is testable without subprocesses.

Campaign exit codes form a small contract for scripts and CI:

* ``0`` — clean (full coverage, attack ran, status printed);
* ``1`` — failed (a :class:`~repro.campaign.errors.CampaignError`:
  integrity violation, schedule mismatch, refused partial store);
* ``3`` — degraded (acquisition finished but shards are quarantined);
* ``130`` — interrupted (Ctrl-C; progress is checkpointed and the
  resume command is printed).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import random
import sys

__all__ = ["main", "cmd_info", "cmd_energy", "cmd_area", "cmd_listing",
           "cmd_evaluate", "cmd_campaign_acquire", "cmd_campaign_status",
           "cmd_campaign_attack", "cmd_campaign_doctor",
           "cmd_dse_explore", "cmd_dse_pareto", "cmd_dse_report",
           "cmd_protocol_run", "cmd_protocol_soak",
           "cmd_obs_report", "cmd_obs_diff", "cmd_obs_tail",
           "cmd_obs_alerts", "cmd_obs_trend",
           "cmd_server_enroll", "cmd_server_run", "cmd_server_soak",
           "cmd_attack_run", "cmd_attack_soak",
           "cmd_power_run", "cmd_power_soak",
           "EXIT_OK", "EXIT_FAILED", "EXIT_DEGRADED", "EXIT_INTERRUPTED"]

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_DEGRADED = 3
EXIT_INTERRUPTED = 130


def cmd_info() -> str:
    """Design-point summary."""
    from . import __version__
    from .arch import CoprocessorConfig, EccCoprocessor

    coprocessor = EccCoprocessor(CoprocessorConfig())
    config = coprocessor.config
    lines = [
        f"repro {__version__} — DAC 2013 low-energy ECC coprocessor "
        "reproduction",
        f"curve: {coprocessor.domain!r}",
        f"digit size: {config.digit_size} "
        f"(multiplication = {coprocessor.malu.mul_cycles} datapath cycles)",
        f"secure-zone registers: {config.core_register_count} x "
        f"{coprocessor.domain.field.m} bits",
        f"ladder iterations per point multiplication: "
        f"{coprocessor.iterations_per_multiplication}",
        "countermeasures: randomized projective coordinates, balanced "
        "mux encoding, constant-cycle ISA, always-on clocks, input "
        "isolation",
    ]
    return "\n".join(lines)


def cmd_energy(seed: int = 1) -> str:
    """The E1 operating-point report (runs one point multiplication)."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .power import calibrate_energy_model

    coprocessor = EccCoprocessor(CoprocessorConfig())
    model = calibrate_energy_model(coprocessor)
    rng = random.Random(seed)
    key = coprocessor.domain.scalar_ring.random_scalar(rng)
    execution = coprocessor.point_multiply(
        key, coprocessor.domain.generator, rng=rng
    )
    report = model.report(execution)
    return (
        f"{report}\n"
        "paper:  50.4 uW, 5.10 uJ, 9.80 op/s (UMC 0.13um, 847.5 kHz, 1 V)"
    )


def cmd_area() -> str:
    """The gate-count comparison table."""
    from .arch import AES_ENC_GATES, SHA1_GATES, ecc_core_area
    from .primitives import PRESENT80_GATES

    ecc = ecc_core_area()
    rows = [
        ("PRESENT-80", PRESENT80_GATES),
        ("AES-128 enc", AES_ENC_GATES),
        ("SHA-1", SHA1_GATES),
        ("ECC K-163 core (model)", round(ecc.total)),
    ]
    lines = [f"{name:<26}{gates:>8} GE" for name, gates in rows]
    lines.append("")
    lines += [f"  {block:<16}{gates:>8.0f} GE"
              for block, gates in ecc.as_dict().items()]
    return "\n".join(lines)


def cmd_listing(limit: int = 40) -> str:
    """Microcode listing of (the start of) a point multiplication."""
    from .arch import CoprocessorConfig, EccCoprocessor
    from .arch.program import analyze_program, format_listing

    coprocessor = EccCoprocessor(CoprocessorConfig())
    trace = coprocessor.point_multiply(
        0x1234, coprocessor.domain.generator, initial_z=1, max_iterations=2
    )
    stats = analyze_program(trace.instructions,
                            coprocessor.config.fetch_overhead)
    return (
        format_listing(trace.instructions, limit=limit)
        + "\n\n" + str(stats)
    )


def cmd_evaluate(weak: bool = False, traces: int = 80,
                 seed: int = 2013) -> str:
    """The white-box attack battery (Figure 4).

    ``seed`` is threaded through the whole evaluation (keys, points,
    randomization, oscilloscope noise) — nothing falls back to global
    RNG state, so two runs with the same seed are identical.
    """
    from .arch import CoprocessorConfig, UnbalancedEncoding
    from .security import WhiteBoxEvaluation

    if weak:
        config = CoprocessorConfig(randomize_z=False,
                                   mux_encoding=UnbalancedEncoding())
    else:
        config = CoprocessorConfig()
    report = WhiteBoxEvaluation(config, n_traces=traces, n_bits=2,
                                seed=seed).run()
    return report.render()


# ----------------------------------------------------------------------
# campaign verbs
# ----------------------------------------------------------------------

def _campaign_spec_from_args(args) -> "object":
    from .campaign import CampaignSpec

    return CampaignSpec(
        n_traces=args.traces,
        shard_size=args.shard_size,
        scenario=args.scenario,
        seed=args.seed,
        max_iterations=None if args.bits is None else args.bits + 1,
        noise_sigma=args.noise,
        curve=args.curve,
    )


def _obs_session(obs_dir, **kwargs):
    """An obs session context, or a no-op when tracing is off."""
    if not obs_dir:
        return contextlib.nullcontext()
    from .obs import runtime as obs_runtime

    return obs_runtime.session(str(obs_dir), **kwargs)


def cmd_campaign_acquire(directory: str, spec, workers=None,
                         quiet: bool = False, shard_timeout=None,
                         max_attempts=None, chaos: str = None,
                         chaos_seed: int = 0,
                         chaos_shards=None, obs: bool = False,
                         obs_profile: bool = False) -> tuple:
    """Acquire (or resume) a campaign into ``directory``.

    Returns ``(report, exit_code)`` — ``EXIT_OK`` on full coverage,
    ``EXIT_DEGRADED`` when shards ended up quarantined.  With ``obs``
    (or ``obs_profile``) the run is traced into ``<directory>/obs``.
    """
    from .campaign import AcquisitionEngine, ChaosConfig, ConsoleReporter, \
        NullReporter, RetryPolicy

    reporter = NullReporter() if quiet else ConsoleReporter()
    policy = None
    if max_attempts is not None:
        policy = RetryPolicy(
            max_attempts=max_attempts,
            deterministic_attempts=min(
                max_attempts, RetryPolicy.deterministic_attempts
            ),
        )
    chaos_config = None
    if chaos:
        chaos_config = ChaosConfig.parse(chaos, seed=chaos_seed,
                                         only_shards=chaos_shards)
    obs_dir = os.path.join(str(directory), "obs") \
        if (obs or obs_profile) else None
    engine = AcquisitionEngine(directory, spec, workers=workers,
                               reporter=reporter,
                               shard_timeout=shard_timeout,
                               retry_policy=policy,
                               chaos=chaos_config)
    with _obs_session(obs_dir, kind="campaign", seed=spec.seed,
                      config_digest=spec.digest(), profile=obs_profile,
                      argv=["campaign", "acquire", "--dir",
                            str(directory)]):
        store = engine.run()
    m = engine.metrics
    lines = [
        f"campaign {directory}: {store.n_traces_on_disk}/"
        f"{spec.n_traces} traces on disk "
        f"({len(store.shard_records)} shard(s))",
        m.summary(),
    ]
    if obs_dir:
        lines.append(
            f"observability: {obs_dir} "
            f"(read with `python -m repro obs report --dir {directory}`)"
        )
    if m.degraded:
        lines += [
            f"DEGRADED: shard(s) {m.quarantined_shards} quarantined — "
            f"failure log at {engine.failure_log.path}",
            f"inspect with:   python -m repro campaign doctor "
            f"--dir {directory}",
            f"then retry via: python -m repro campaign doctor "
            f"--dir {directory} --clear  (and re-run acquire)",
        ]
        return "\n".join(lines), EXIT_DEGRADED
    return "\n".join(lines), EXIT_OK


def cmd_campaign_status(directory: str) -> str:
    """Manifest summary: progress, throughput, integrity.

    Every number in this view is read back out of an obs metrics
    snapshot built by :func:`repro.obs.integration.record_store` — the
    one aggregation path shared with the exported metrics, so the
    status line can never disagree with ``metrics.json``.
    """
    from .campaign import TraceStore
    from .campaign.supervisor import FailureLog, Quarantine
    from .obs.integration import record_store, snapshot_histogram, \
        snapshot_value
    from .obs.metrics import MetricRegistry

    store = TraceStore(directory)
    if not store.exists:
        return f"campaign {directory}: no manifest (nothing acquired yet)"
    store.load()
    spec = store.spec
    missing = store.missing_shards()
    log = FailureLog(directory)
    quarantine = Quarantine(directory)
    snapshot = record_store(MetricRegistry(), store, log,
                            quarantine).snapshot()
    n_traces = int(snapshot_value(snapshot, "repro_campaign_store_traces"))
    n_shards = int(snapshot_value(snapshot, "repro_campaign_store_shards"))
    walls = snapshot_histogram(snapshot,
                               "repro_campaign_store_wall_seconds")
    rate = snapshot_value(snapshot,
                          "repro_campaign_store_rate_traces_per_second")
    lines = [
        f"campaign {directory}",
        f"  scenario: {spec.scenario}  curve: {spec.curve}  "
        f"seed: {spec.seed}",
        f"  traces: {n_traces}/{spec.n_traces} "
        f"({n_shards}/{spec.n_shards} shards, "
        f"shard size {spec.shard_size})",
        f"  coverage: {store.coverage().render()}",
        f"  missing shards: {missing if missing else 'none — complete'}",
    ]
    quarantined = quarantine.entries()
    if quarantined:
        lines.append(
            f"  quarantined shards: {sorted(quarantined)} "
            f"(release with `campaign doctor --clear`)"
        )
    if log.exists:
        by_kind = {
            item["labels"]["kind"]: int(item["value"])
            for item in snapshot["metrics"].get(
                "repro_campaign_store_failures_total",
                {"values": []})["values"]
        }
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        retries = int(snapshot_value(
            snapshot, "repro_campaign_store_failure_actions_total",
            action="retry"))
        quarantines = int(snapshot_value(
            snapshot, "repro_campaign_store_failure_actions_total",
            action="quarantine"))
        lines.append(
            f"  failures: {kinds or 'none'} "
            f"({retries} retried, "
            f"{quarantines} quarantined) — {log.path}"
        )
    if walls["count"]:
        lines.append(
            f"  acquisition wall: {walls['sum']:.2f}s total, "
            f"{rate:.1f} traces/s per worker "
            f"(per-shard {walls['min']:.2f}-{walls['max']:.2f}s)"
        )
    return "\n".join(lines)


def cmd_campaign_doctor(directory: str, clear: bool = False,
                        last: int = 10) -> str:
    """Inspect (and optionally repair) a campaign's failure state.

    Prints the failure-log tally, the ``last`` most recent events,
    the quarantine roster and any crash flight-recorder dumps the
    traced run left behind; ``--clear`` releases quarantined shards
    so the next ``acquire`` retries them.
    """
    import os as _os

    from .campaign.supervisor import FailureLog, Quarantine
    from .obs.flightrec import load_flight_dumps
    from .obs.runtime import OBS_DIRNAME

    log = FailureLog(directory)
    quarantine = Quarantine(directory)
    flights = load_flight_dumps(_os.path.join(directory, OBS_DIRNAME))
    lines = [f"campaign {directory}: doctor report"]
    if not log.exists and not quarantine.entries() and not flights:
        lines.append("  no recorded failures — campaign is healthy")
        return "\n".join(lines)
    events = log.events()
    tally = log.tally()
    kinds = ", ".join(f"{k}={n}" for k, n in sorted(tally["by_kind"].items()))
    lines.append(
        f"  {len(events)} failure event(s): {kinds or 'none'} "
        f"({tally['retries']} retried, {tally['quarantines']} quarantined)"
    )
    for event in events[-last:]:
        provenance = ""
        if event.get("worker_pid"):
            provenance = (
                f" (pid {event['worker_pid']}, ran "
                f"{event.get('attempt_wall_seconds', 0.0):.2f}s)"
            )
        lines.append(
            f"    shard {event['shard']} attempt {event['attempt'] + 1} "
            f"[{event['kind']}] {event['action']}: {event['reason']}"
            f"{provenance}"
        )
    entries = quarantine.entries()
    if entries:
        for index in sorted(entries):
            entry = entries[index]
            lines.append(
                f"  quarantined shard {index}: {entry['kind']} after "
                f"{entry['attempts']} attempt(s) — {entry['reason']}"
            )
        if clear:
            released = quarantine.clear()
            lines.append(
                f"  cleared quarantine for shard(s) {released} — "
                "re-run `campaign acquire` to retry them"
            )
        else:
            lines.append(
                "  pass --clear to release them for the next acquire"
            )
    else:
        lines.append("  quarantine: empty")
    if flights:
        lines.append(f"  {len(flights)} flight-recorder dump(s) "
                     "(last spans before each death):")
        for file_name, payload in flights:
            context = ", ".join(f"{k}={v}" for k, v in
                                sorted(payload.get("context", {}).items()))
            lines.append(
                f"    {file_name}: {payload['reason']}"
                + (f" ({context})" if context else "")
                + f" — {len(payload.get('records', []))} record(s)")
    return "\n".join(lines)


def cmd_campaign_attack(directory: str, attack: str = "dpa",
                        bits: int = 2, grid=None,
                        verify: bool = False,
                        allow_partial: bool = False) -> str:
    """Run a streaming attack over an acquired campaign.

    Attacks refuse incomplete stores unless ``allow_partial`` is set,
    in which case the report states exactly which shards and traces
    backed the statistics (see
    :class:`~repro.campaign.streaming.AttackProvenance`).
    """
    from .campaign import StreamingCpa, StreamingDpa, TraceStore, \
        store_provenance, streaming_spa

    store = TraceStore(directory).load()
    if verify:
        store.verify_all()
    use_z = store.spec.scenario == "known_randomness"
    header = (
        f"campaign {directory}: {attack.upper()} over "
        f"{store.n_traces_on_disk} traces "
        f"({store.spec.scenario}"
        + (", stored randomness used" if use_z else "")
        + ")"
    )
    if attack == "spa":
        result = streaming_spa(store, allow_partial=allow_partial)
        return (
            f"{header}\n"
            f"provenance: {store_provenance(store).describe()}\n"
            f"recovered {len(result.recovered_bits)} ladder bits with "
            f"{result.bit_errors} errors from the averaged trace"
        )
    cls = {"dpa": StreamingDpa, "cpa": StreamingCpa}.get(attack)
    if cls is None:
        raise ValueError(f"unknown attack {attack!r}")
    engine = cls(store, use_stored_randomness=use_z,
                 allow_partial=allow_partial)
    lines = [header]
    if grid:
        disclosure = engine.traces_to_disclosure(bits, grid)
        lines.append(
            f"traces to disclosure over grid {sorted(grid)}: {disclosure}"
        )
    result = engine.recover_bits(bits)
    if engine.last_provenance is not None:
        lines.append(f"provenance: {engine.last_provenance.describe()}")
    lines.append(
        f"{result.num_correct}/{bits} bits recovered "
        f"(chosen {result.recovered_bits}, truth {result.true_bits})"
    )
    lines.append(
        "peak statistics: "
        f"{[round(p, 2) for p in result.peak_statistics]}"
    )
    lines.append(
        "verdict: key bits "
        + ("RECOVERED" if result.success else "NOT recovered")
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# dse verbs
# ----------------------------------------------------------------------

def _dse_spec_from_args(args) -> "object":
    from .dse import DesignSpaceSpec

    def floats(text):
        return tuple(float(x) for x in text.split(",") if x)

    return DesignSpaceSpec(
        digit_sizes=tuple(int(x) for x in args.digits.split(",") if x),
        vdd_volts=floats(args.vdd),
        frequencies_hz=floats(args.freq),
        countermeasures=tuple(
            s for s in args.countermeasures.split(",") if s),
        backends=tuple(
            s for s in getattr(args, "backends", "").split(",") if s),
        curve=args.curve,
        seed=args.seed,
        whitebox=args.whitebox,
        whitebox_traces=args.whitebox_traces,
        max_latency_s=(None if args.max_latency_ms <= 0
                       else args.max_latency_ms / 1e3),
        max_area_ge=args.max_area_ge,
        min_security=(None if args.min_security < 0
                      else args.min_security),
        objectives=tuple(s for s in args.objectives.split(",") if s),
    )


def cmd_dse_explore(directory: str, spec, workers=None,
                    quiet: bool = False, shard_timeout=None,
                    max_attempts=None, obs: bool = False,
                    obs_profile: bool = False) -> tuple:
    """Explore (or resume) a design space into ``directory``.

    Returns ``(report, exit_code)`` — ``EXIT_OK`` when every cell was
    measured or cached, ``EXIT_DEGRADED`` when cells were quarantined.
    With ``obs`` (or ``obs_profile``) the run is traced into
    ``<directory>/obs``.
    """
    from .campaign import RetryPolicy
    from .dse import ExplorationEngine

    policy = None
    if max_attempts is not None:
        policy = RetryPolicy(
            max_attempts=max_attempts,
            deterministic_attempts=min(
                max_attempts, RetryPolicy.deterministic_attempts
            ),
        )
    obs_dir = os.path.join(str(directory), "obs") \
        if (obs or obs_profile) else None
    engine = ExplorationEngine(directory, spec, workers=workers,
                               shard_timeout=shard_timeout,
                               retry_policy=policy)
    with _obs_session(obs_dir, kind="dse", seed=spec.seed,
                      config_digest=spec.digest(), profile=obs_profile,
                      argv=["dse", "explore", "--dir", str(directory)]):
        result = engine.run()
    summary = result.summary()
    lines = [summary.splitlines()[0]] if quiet else [summary]
    lines.append(f"pareto front: {os.path.join(str(directory), 'pareto.json')}")
    if obs_dir:
        lines.append(
            f"observability: {obs_dir} "
            f"(read with `python -m repro obs report --dir {directory}`)"
        )
    if result.quarantined:
        return "\n".join(lines), EXIT_DEGRADED
    return "\n".join(lines), EXIT_OK


def _dse_spec_from_directory(directory: str) -> "object":
    import json as _json

    from .dse import DesignSpaceSpec, SPACE_NAME
    from .dse.errors import DseError

    path = os.path.join(str(directory), SPACE_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return DesignSpaceSpec.from_dict(_json.load(f))
    except (OSError, ValueError) as exc:
        raise DseError(
            f"{path} is missing or unreadable — run "
            f"`repro dse explore --dir {directory}` first ({exc})"
        ) from None


def cmd_dse_pareto(directory: str, objectives=None,
                   max_latency_ms=None, max_area_ge=None,
                   min_security=None, as_json: bool = False) -> tuple:
    """Re-rank an explored directory without simulating anything.

    Reads ``space.json`` and the measurement cache, applies any
    constraint/objective overrides, recomputes the front — pure
    arithmetic, so it answers instantly.  A cell that was never
    measured is an error (explore first).
    """
    import dataclasses
    import json as _json

    from .dse import analyze_space

    spec = _dse_spec_from_directory(directory)
    overrides = {}
    if objectives is not None:
        overrides["objectives"] = tuple(objectives)
    if max_latency_ms is not None:
        overrides["max_latency_s"] = (None if max_latency_ms <= 0
                                      else max_latency_ms / 1e3)
    if max_area_ge is not None:
        overrides["max_area_ge"] = max_area_ge
    if min_security is not None:
        overrides["min_security"] = (None if min_security < 0
                                     else min_security)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    rows, front = analyze_space(str(directory), spec)
    if as_json:
        return _json.dumps({"objectives": list(spec.objectives),
                            "front": front},
                           indent=1, sort_keys=True), EXIT_OK
    lines = [
        f"objectives: {', '.join(spec.objectives)}   "
        f"feasible: {sum(1 for r in rows if r['feasible'])}/{len(rows)}   "
        f"Pareto-optimal: {len(front)}",
    ]
    lines += _dse_rows_table(front)
    return "\n".join(lines), EXIT_OK


def cmd_dse_report(directory: str, as_json: bool = False) -> tuple:
    """The full evaluated grid of an explored directory."""
    import json as _json

    from .dse import POINTS_NAME
    from .dse.errors import DseError

    path = os.path.join(str(directory), POINTS_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = _json.load(f)
    except (OSError, ValueError) as exc:
        raise DseError(
            f"{path} is missing or unreadable — run "
            f"`repro dse explore --dir {directory}` first ({exc})"
        ) from None
    if as_json:
        return _json.dumps(payload, indent=1, sort_keys=True), EXIT_OK
    rows = payload["rows"]
    lines = [f"design space {directory}: {len(rows)} operating points "
             f"(spec {payload['spec_digest']})"]
    lines += _dse_rows_table(rows)
    return "\n".join(lines), EXIT_OK


def _dse_rows_table(rows) -> list:
    per_message = any("energy_uj_per_message" in row for row in rows)
    header = (f"{'point':<30}{'GE':>7}{'ms':>9}{'uW':>9}"
              f"{'uJ':>8}{'GExuJ':>10}{'sec':>6}"
              + (f"{'uJ/msg':>9}" if per_message else "")
              + "  flags")
    lines = [header, "-" * len(header)]
    for row in rows:
        flags = []
        if row.get("pareto"):
            flags.append("PARETO")
        if not row.get("feasible", True):
            flags.append("infeasible:" + ",".join(row["violations"]))
        suffix = ""
        if per_message:
            value = row.get("energy_uj_per_message")
            suffix = f"{value:>9.3f}" if value is not None \
                else f"{'-':>9}"
        lines.append(
            f"{row['id']:<30}{row['area_ge']:>7.0f}"
            f"{row['latency_s'] * 1e3:>9.1f}{row['power_uw']:>9.1f}"
            f"{row['energy_uj']:>8.2f}{row['area_energy']:>10.0f}"
            f"{row['security']:>6.2f}{suffix}  {' '.join(flags)}"
        )
    return lines


def cmd_protocol_run(protocol: str = "peeters-hermans",
                     curve: str = "TOY-B17", loss: float = 0.1,
                     sessions: int = 5, seed: int = 2013,
                     distance: float = 0.5,
                     events: bool = False, obs_dir=None,
                     obs_profile: bool = False) -> str:
    """Run a handful of resilient sessions and narrate each one."""
    from .ec.curves import get_curve
    from .obs.integration import fleet_spec_digest
    from .protocols.fleet import FleetSpec
    from .protocols.session import make_adapter, run_resilient_session

    spec = FleetSpec(protocol=protocol, curve=curve, sessions=sessions,
                     seed=seed, sweep=(loss,), distance_m=distance)
    domain = None if protocol == "mutual-auth" else get_curve(curve)
    profile = spec.profile(loss)
    lines = [f"{protocol} over a channel with {profile.describe()}"]
    with _obs_session(obs_dir, kind="protocol-run", seed=seed,
                      config_digest=fleet_spec_digest(spec),
                      profile=obs_profile,
                      argv=["protocol", "run", "--protocol", protocol]):
        for index in range(sessions):
            adapter = make_adapter(protocol, domain, seed=seed,
                                   session_index=index)
            result = run_resilient_session(adapter, profile,
                                           spec.policy(),
                                           seed=seed, session_index=index,
                                           distance_m=distance)
            lines.append(result.summary())
            if events:
                lines.extend(f"    {event}" for event in result.events)
    return "\n".join(lines)


def cmd_protocol_soak(protocol: str = "peeters-hermans",
                      curve: str = "TOY-B17", sessions: int = 1000,
                      seed: int = 2013, sweep=None,
                      workers=None, distance: float = 0.5,
                      min_availability: float = 0.99,
                      quiet: bool = False, obs_dir=None,
                      obs_profile: bool = False) -> "tuple[str, int]":
    """Run the availability sweep; ``(report, exit_code)``.

    Exit-code contract (the campaign one): ``0`` when every session at
    every loss rate eventually identified; ``3`` (degraded) when some
    aborted but every sweep point stayed at or above
    ``min_availability``; ``1`` when availability fell below the floor.
    """
    from .obs.integration import fleet_spec_digest
    from .protocols.fleet import DEFAULT_SWEEP, FleetSpec, run_fleet

    spec = FleetSpec(protocol=protocol, curve=curve, sessions=sessions,
                     seed=seed, sweep=tuple(sweep or DEFAULT_SWEEP),
                     distance_m=distance)
    progress = None
    if not quiet:
        def progress(done, total):
            print(f"\r  slices {done}/{total}", end="",
                  file=sys.stderr, flush=True)
    with _obs_session(obs_dir, kind="protocol-soak", seed=seed,
                      config_digest=fleet_spec_digest(spec),
                      profile=obs_profile,
                      argv=["protocol", "soak", "--protocol", protocol]):
        report = run_fleet(spec, workers=workers, progress=progress)
    if not quiet:
        print(file=sys.stderr)
    floor = min(point.availability for point in report.points)
    if report.fully_available:
        code = EXIT_OK
    elif floor >= min_availability:
        code = EXIT_DEGRADED
    else:
        code = EXIT_FAILED
    return report.summary(), code


def cmd_protocol_amortize(protocol: str = "peeters-hermans",
                          backend: str = "simon-aead",
                          curve: str = "TOY-B17", epoch: int = 16,
                          messages: int = 64, sessions: int = 8,
                          seed: int = 2013, sweep=None,
                          workers=None, distance: float = 0.5,
                          min_delivery: float = 0.95,
                          directory=None, quiet: bool = False,
                          obs_dir=None,
                          obs_profile: bool = False) -> "tuple[str, int]":
    """Run the epoch-amortized sweep; ``(report, exit_code)``.

    Exit-code contract (the soak one): ``0`` when every message at
    every loss rate was delivered; ``3`` (degraded) when some were
    lost but every sweep point stayed at or above ``min_delivery``;
    ``1`` below the floor.  With ``directory`` the worker-invariant
    ``summary.json`` is written there (the CI ``cmp`` artifact).
    """
    import json as _json

    from .campaign.store import _atomic_write_bytes
    from .obs.integration import fleet_spec_digest
    from .protocols.amortized import AmortizedSpec, run_amortized_soak
    from .protocols.fleet import DEFAULT_SWEEP

    spec = AmortizedSpec(
        protocol=protocol, backend=backend, curve=curve,
        epoch_messages=epoch, messages=messages, sessions=sessions,
        seed=seed, sweep=tuple(sweep or DEFAULT_SWEEP),
        distance_m=distance)
    progress = None
    if not quiet:
        def progress(done, total):
            print(f"\r  slices {done}/{total}", end="",
                  file=sys.stderr, flush=True)
    with _obs_session(obs_dir, kind="protocol-amortize", seed=seed,
                      config_digest=fleet_spec_digest(spec),
                      profile=obs_profile,
                      argv=["protocol", "amortize",
                            "--backend", backend]):
        report = run_amortized_soak(spec, workers=workers,
                                    progress=progress)
    if not quiet:
        print(file=sys.stderr)
    if directory:
        os.makedirs(str(directory), exist_ok=True)
        _atomic_write_bytes(
            os.path.join(str(directory), "summary.json"),
            _json.dumps(report.summary_payload(), indent=1,
                        sort_keys=True).encode())
    if report.fully_delivered:
        code = EXIT_OK
    elif report.min_delivery_rate >= min_delivery:
        code = EXIT_DEGRADED
    else:
        code = EXIT_FAILED
    return report.summary(), code


# ----------------------------------------------------------------------
# obs verbs
# ----------------------------------------------------------------------

def cmd_obs_report(directory: str, as_json: bool = False, top: int = 10,
                   require_spans=None,
                   require_metrics=None) -> "tuple[str, int]":
    """Render one traced run; ``(report, exit_code)``.

    Exits ``EXIT_FAILED`` when a required span name or metric family
    is absent (the CI guard against silently-degraded tracing).
    """
    import json as _json

    from .obs import report as obs_report

    if as_json:
        output = _json.dumps(obs_report.report_json(directory, top=top),
                             indent=1, sort_keys=True)
    else:
        output = obs_report.render_report(directory, top=top)
    code = EXIT_OK
    if require_spans or require_metrics:
        missing = obs_report.check_required(directory, require_spans,
                                            require_metrics)
        problems = []
        if missing["missing_spans"]:
            problems.append("missing span name(s): "
                            + ", ".join(missing["missing_spans"]))
        if missing["missing_metrics"]:
            problems.append("missing metric famil(ies): "
                            + ", ".join(missing["missing_metrics"]))
        if problems:
            output += "\n" + "\n".join(f"  {p}" for p in problems)
            code = EXIT_FAILED
    return output, code


def cmd_obs_diff(path_a: str, path_b: str, patterns=None,
                 max_regression=None) -> "tuple[str, int]":
    """Regression table between two runs; ``(table, exit_code)``.

    ``EXIT_FAILED`` when any matched metric increased by more than
    ``max_regression`` percent.
    """
    from .obs import report as obs_report

    output, regressions = obs_report.render_diff(
        path_a, path_b, patterns=patterns, max_regression=max_regression,
    )
    return output, EXIT_FAILED if regressions else EXIT_OK


def _telemetry_file(directory: str, name: str) -> str:
    """``<dir>/<name>`` or ``<dir>/obs/<name>`` — soaks write their
    telemetry next to the summary, traced runs under ``obs/``."""
    import os as _os

    from .obs.runtime import OBS_DIRNAME

    for candidate in (directory, _os.path.join(directory, OBS_DIRNAME)):
        path = _os.path.join(candidate, name)
        if _os.path.exists(path):
            return path
    raise FileNotFoundError(
        f"no {name} under {directory} (directly or in "
        f"'{OBS_DIRNAME}/') — was the soak run with telemetry "
        "(any attack/server soak writes it)?")


def cmd_obs_tail(directory: str, as_json: bool = False) -> "tuple[str, int]":
    """Render a run's live telemetry snapshot; ``(report, code)``.

    Shows every telemetry series with its count/sum/min/max, the
    derived p50/p95/p99 and the peak per-source window, then lists
    any crash flight-recorder dumps.  ``EXIT_FAILED`` (via the
    dispatcher) when the run recorded no telemetry.
    """
    import json as _json
    import os as _os

    from .obs.flightrec import load_flight_dumps
    from .obs.runtime import OBS_DIRNAME
    from .obs.stream import TELEMETRY_NAME

    path = _telemetry_file(directory, TELEMETRY_NAME)
    with open(path, "r", encoding="utf-8") as f:
        snapshot = _json.load(f)
    if as_json:
        return _json.dumps(snapshot, indent=1, sort_keys=True), EXIT_OK
    lines = [
        f"obs tail: {path}",
        f"  {snapshot.get('events', 0)} event(s) from "
        f"{len(snapshot.get('sources', []))} source(s), "
        f"window {snapshot.get('window_s')} s",
    ]
    for name, entry in sorted(snapshot.get("series", {}).items()):

        def fmt(key):
            value = entry.get(key)
            return "-" if value is None else f"{value:g}"

        lines.append(
            f"  {name:<24} n={entry['count']:<6} sum={fmt('sum'):<12}"
            f"p50={fmt('p50'):<10}p95={fmt('p95'):<10}"
            f"p99={fmt('p99'):<10}max={fmt('max')}")
        peak = entry.get("peak_window")
        if peak is not None:
            lines.append(
                f"    peak window {peak['window']}: "
                f"{peak['sum']:g} from {peak['source']}")
    dumps = []
    for candidate in (directory, _os.path.join(directory, OBS_DIRNAME)):
        dumps = load_flight_dumps(candidate)
        if dumps:
            break
    if dumps:
        lines.append(f"  {len(dumps)} flight-recorder dump(s):")
        for file_name, payload in dumps:
            lines.append(
                f"    {file_name}: {payload['reason']}, "
                f"{len(payload.get('records', []))} record(s) "
                f"(of {payload.get('recorded', 0)} recorded)")
    else:
        lines.append("  no flight-recorder dumps — no worker died")
    return "\n".join(lines), EXIT_OK


def cmd_obs_alerts(directory: str,
                   as_json: bool = False) -> "tuple[str, int]":
    """Render a run's alert log; ``(report, exit_code)``.

    ``EXIT_OK`` when every rule stayed silent, ``EXIT_DEGRADED`` when
    any alert fired (CI treats a firing like a degraded soak), and
    ``EXIT_FAILED`` (via the dispatcher) when no alert log exists.
    """
    import json as _json

    from .obs.alerts import ALERTS_NAME, load_alert_log, render_alert_log

    path = _telemetry_file(directory, ALERTS_NAME)
    payload = load_alert_log(path)
    code = EXIT_DEGRADED if payload.get("firings", 0) else EXIT_OK
    if as_json:
        return _json.dumps(payload, indent=1, sort_keys=True), code
    return f"obs alerts: {path}\n" + render_alert_log(payload), code


def cmd_obs_trend(results_dir: str, label=None, write: bool = True,
                  as_json: bool = False) -> "tuple[str, int]":
    """Fold ``BENCH_*.json`` into the trend log; ``(report, code)``.

    Idempotent: a bench whose figures did not change since the last
    fold gains no history entry, so re-running after an unchanged
    bench refresh leaves the trend file byte-identical.
    """
    import json as _json
    import os as _os

    from .obs import trend as obs_trend

    if not _os.path.isdir(results_dir):
        raise FileNotFoundError(f"no results directory {results_dir}")
    trend, folded = obs_trend.fold_trend(results_dir, label=label)
    if write:
        obs_trend.write_trend(results_dir, trend)
    if as_json:
        return _json.dumps(trend, indent=1, sort_keys=True), EXIT_OK
    output = obs_trend.render_trend(trend)
    output += ("\n  folded new entry for: " + ", ".join(folded)
               if folded else "\n  no figure changed — trend untouched")
    return output, EXIT_OK


# ----------------------------------------------------------------------
# server verbs
# ----------------------------------------------------------------------

def _server_chaos(chaos: "Optional[str]", chaos_seed: int):
    if not chaos:
        return None
    from .campaign.chaos import ChaosConfig

    return ChaosConfig.parse(chaos, seed=chaos_seed)


def cmd_server_enroll(store_dir: str, tags: int = 10000,
                      shard_size: int = 65536, seed: int = 2013,
                      curve: str = "TOY-B17", workers=None,
                      chaos=None, chaos_seed: int = 0) -> tuple:
    """Enroll (or resume) a deterministic tag fleet; ``(report, code)``.

    ``EXIT_OK`` when every shard verified, ``EXIT_DEGRADED`` when
    shards were quarantined (no manifest is written then — the
    directory is not a fleet yet).
    """
    from .server import EnrollmentSpec, enroll_fleet

    spec = EnrollmentSpec(tags=tags, curve=curve, shard_size=shard_size,
                          seed=seed)
    report = enroll_fleet(store_dir, spec, workers=workers,
                          chaos=_server_chaos(chaos, chaos_seed))
    lines = [
        f"fleet {spec.digest()[:12]}: {report.tags} tags over "
        f"{report.shards_total} shard(s) in {report.directory}",
        f"  built {report.shards_built}, reused {report.shards_reused}, "
        f"retried {report.retried_attempts} attempt(s)",
    ]
    if report.quarantined:
        lines.append(
            f"  QUARANTINED shard(s): "
            f"{', '.join(map(str, report.quarantined))} — no manifest "
            f"written; rerun to retry"
        )
        return "\n".join(lines), EXIT_DEGRADED
    lines.append(f"  manifest: "
                 f"{os.path.join(str(store_dir), 'enrollment.json')}")
    return "\n".join(lines), EXIT_OK


def _server_soak_spec(args) -> "object":
    from .server import EnrollmentStore, SoakSpec

    store = EnrollmentStore(args.store, verify=False)
    return SoakSpec(
        enrollment_digest=store.spec.digest(),
        store_dir=str(args.store),
        sessions=args.sessions,
        cohorts=getattr(args, "cohorts", 1),
        arrival_rate=args.rate,
        frame_loss=args.loss,
        seed=args.seed,
        capacity=args.capacity,
        admission_queue=args.admission_queue,
        session_deadline_s=args.deadline,
        search_mode=args.search,
        distance_m=args.distance,
    )


def cmd_server_soak(directory: str, spec, workers=None, chaos=None,
                    chaos_seed: int = 0, min_acceptance: float = 0.9,
                    obs: bool = False,
                    obs_profile: bool = False) -> tuple:
    """Run the supervised fleet soak; ``(report, exit_code)``.

    ``EXIT_OK`` when clean and the acceptance rate holds,
    ``EXIT_DEGRADED`` when cohorts were quarantined, ``EXIT_FAILED``
    when acceptance fell below ``min_acceptance``.
    """
    from .server import run_soak

    obs_dir = os.path.join(str(directory), "obs") \
        if (obs or obs_profile) else None
    with _obs_session(obs_dir, kind="server-soak", seed=spec.seed,
                      config_digest=spec.digest(), profile=obs_profile,
                      argv=["server", "soak", "--dir", str(directory)]):
        report = run_soak(directory, spec, workers=workers,
                          chaos=_server_chaos(chaos, chaos_seed))
    output = report.text()
    if report.sessions and report.acceptance_rate < min_acceptance:
        output += (f"\n  FAILED: acceptance {report.acceptance_rate:.1%}"
                   f" below the floor {min_acceptance:.1%}")
        return output, EXIT_FAILED
    if report.outcome == "degraded":
        return output, EXIT_DEGRADED
    return output, EXIT_OK


def cmd_server_run(spec, metrics_port=None, serve_seconds: float = 0.0,
                   quiet: bool = False) -> tuple:
    """One in-process cohort with a live ``/metrics`` endpoint.

    Starts the HTTP exporter *before* the simulation so a scrape loop
    watches sessions/energy counters move, then keeps serving for
    ``serve_seconds`` after the run so late scrapes see the final
    state.  ``(report, exit_code)``.
    """
    import time as _time

    from .obs.metrics import MetricRegistry
    from .obs.stream import StreamAggregator, run_pipeline
    from .server import MetricsServer
    from .server.soak import simulate_cohort, soak_rulebook

    registry = MetricRegistry()
    rules = soak_rulebook(spec)
    stream = StreamAggregator(window_s=rules[0].window_s)
    exporter = None
    lines = []
    if metrics_port is not None:
        exporter = MetricsServer(registry, port=metrics_port,
                                 stream=stream).start()
        print(f"serving metrics at {exporter.url}", flush=True)
    try:
        payload = simulate_cohort(spec, 0, registry=registry)
        live, alert_records = run_pipeline(
            payload.get("telemetry", ()), rules, aggregator=stream)
        outcomes = payload["outcomes"]
        lines.append(
            f"served {payload['sessions']} session(s): "
            + ", ".join(f"{k} {v}" for k, v in outcomes.items())
            + (f", shed {payload['shed']}" if payload["shed"] else "")
        )
        lines.append(
            f"  peak {payload['peak_in_flight']} in flight; "
            f"{payload['frames']} frames "
            f"({payload['retransmissions']} retransmitted); "
            f"scheduler coalesced {payload['scheduler']['requests']} "
            f"mults into {payload['scheduler']['batches']} batches"
        )
        lines.append(
            f"  energy: tag {payload['tag_energy_uj']:.1f} uJ, "
            f"reader {payload['reader_energy_uj']:.1f} uJ"
        )
        firings = sorted({r["rule"] for r in alert_records
                          if r["state"] == "firing"})
        lines.append(
            f"  telemetry: {live['events']} event(s), "
            + (f"ALERTS FIRING: {', '.join(firings)}" if firings
               else "no alert fired")
        )
        if not quiet and exporter is not None and serve_seconds > 0:
            lines.append(f"  serving /metrics for another "
                         f"{serve_seconds:g} s")
            _print("\n".join(lines))
            lines = []
            _time.sleep(serve_seconds)
        elif serve_seconds > 0:
            _time.sleep(serve_seconds)
    finally:
        if exporter is not None:
            exporter.stop()
    return "\n".join(lines), EXIT_OK


def cmd_attack_run(adversary: str = "amplification", defenses=None,
                   sessions: int = 6, seed: int = 7, loss: float = 0.1,
                   curve: str = "TOY-B17", distance: float = 0.5) -> str:
    """Narrate one adversary against each defense posture, in process.

    Runs ``sessions`` seeded attack sessions per posture against a
    fresh tag and reports what the flood drained, what the defenses
    refused, and the tag-vs-adversary energy amplification.
    """
    from .adversary import (ADVERSARY_NAMES, DEFENSE_SETS, defense_config,
                            run_attack_session)
    from .channel import LossProfile

    if adversary not in ADVERSARY_NAMES + ("legit",):
        known = ", ".join(ADVERSARY_NAMES + ("legit",))
        raise ValueError(f"unknown adversary {adversary!r}; known: {known}")
    names = list(defenses) if defenses else list(DEFENSE_SETS)
    for name in names:
        if name not in DEFENSE_SETS:
            known = ", ".join(sorted(DEFENSE_SETS))
            raise ValueError(f"unknown defense set {name!r}; "
                             f"known: {known}")
    profile = LossProfile(frame_loss=loss)
    lines = [f"adversary {adversary}: {sessions} session(s) per defense "
             f"posture, {loss:.0%} frame loss, seed {seed}"]
    for name in names:
        tag_uj = adv_uj = 0.0
        outcomes: dict = {}
        refusals = budget_refusals = 0
        for index in range(sessions):
            result = run_attack_session(
                adversary, defense=defense_config(name), profile=profile,
                seed=seed, session_index=index, curve=curve,
                distance_m=distance)
            tag_uj += result.tag_uj
            adv_uj += result.adversary_uj
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            refusals += result.wake_refusals
            budget_refusals += result.budget_refusals
        buckets = ", ".join(f"{k} {v}" for k, v in sorted(outcomes.items()))
        amp = tag_uj / adv_uj if adv_uj > 0 else float("inf")
        lines.append(
            f"  {name:<11} tag drained {tag_uj:8.1f} uJ "
            f"(adversary spent {adv_uj:7.1f} uJ, x{amp:.1f}); {buckets}")
        if refusals or budget_refusals:
            lines.append(
                f"  {'':<11} refused {refusals} wake token(s), "
                f"{budget_refusals} budget charge(s)")
    return "\n".join(lines)


def _attack_spec_from_args(args) -> "object":
    from .adversary import AttackSpec

    return AttackSpec(
        adversary=args.adversary,
        defense=args.defense,
        sessions=args.sessions,
        cohorts=args.cohorts,
        legit_fraction=args.legit_fraction,
        arrival_rate=args.rate,
        frame_loss=args.loss,
        seed=args.seed,
        curve=args.curve,
        distance_m=args.distance,
        budget_cap_uj=args.budget_cap,
        budget_window_s=args.budget_window,
    )


def cmd_attack_soak(directory: str, spec, workers=None, chaos=None,
                    chaos_seed: int = 0,
                    min_legit_success: float = 0.0,
                    obs: bool = False, obs_profile: bool = False) -> tuple:
    """Run the supervised attack soak; ``(report, exit_code)``.

    ``EXIT_OK`` when clean and the legit success rate holds,
    ``EXIT_DEGRADED`` when cohorts were quarantined, ``EXIT_FAILED``
    when legitimate sessions fell below ``min_legit_success``.
    """
    from .adversary import run_attack_soak

    obs_dir = os.path.join(str(directory), "obs") \
        if (obs or obs_profile) else None
    with _obs_session(obs_dir, kind="attack-soak", seed=spec.seed,
                      config_digest=spec.digest(), profile=obs_profile,
                      argv=["attack", "soak", "--dir", str(directory)]):
        report = run_attack_soak(directory, spec, workers=workers,
                                 chaos=_server_chaos(chaos, chaos_seed))
    output = report.text()
    if (report.legit_sessions
            and report.legit_success_rate < min_legit_success):
        output += (f"\n  FAILED: legit success "
                   f"{report.legit_success_rate:.1%} below the floor "
                   f"{min_legit_success:.1%}")
        return output, EXIT_FAILED
    if report.outcome == "degraded":
        return output, EXIT_DEGRADED
    return output, EXIT_OK


def cmd_power_run(curve: str = "TOY-B17", seed: int = 2013,
                  session: int = 0, cuts: int = 3, on_cycles: int = 8000,
                  interval: int = 8, schedules: int = 5,
                  attack: bool = True) -> str:
    """Narrate one session's survival of power cuts, in process.

    Baseline the session on stable power, replay it under seeded cut
    schedules and under cuts aimed at every protocol tender spot,
    check every outcome is byte-identical, then (unless disabled) run
    the field-cutting key-recovery attack against the naive and the
    checkpointing tag.
    """
    from .intermittent import (IntermittentSpec, PowerCutSchedule,
                               adversarial_schedules, probe_timeline,
                               run_intermittent_session, run_with_schedule)

    spec = IntermittentSpec(curve=curve, seed=seed,
                            checkpoint_interval=interval)
    base = run_intermittent_session(spec, session)
    lines = [
        f"intermittent session {session} on {curve}, seed {seed}, "
        f"checkpoint every {interval} ladder steps",
        f"  stable power: {'accepted' if base.accepted else 'rejected'} "
        f"as identity {base.identity}, {base.cycles} cycles, "
        f"{base.total_uj:.2f} uJ ({base.checkpoint_uj:.2f} on "
        f"checkpoints), digest {base.outcome_digest[:16]}",
    ]
    lines.append(f"  {schedules} seeded schedule(s), {cuts} cuts around "
                 f"{on_cycles} cycles:")
    for index in range(schedules):
        sched = PowerCutSchedule.seeded(index, session, cuts,
                                        mean_on_cycles=on_cycles)
        result = run_with_schedule(spec, session, sched)
        verdict = "IDENTICAL" if (result.completed and
                                  result.outcome_digest
                                  == base.outcome_digest) else (
            result.abort_reason or "DIVERGED")
        lines.append(
            f"    cut-seed {index}: {result.power_cycles} cut(s), "
            f"{result.steps_wasted} step(s) re-executed, "
            f"{result.torn_discards} torn record(s) discarded "
            f"-> {verdict}")
    scheds = adversarial_schedules(probe_timeline(spec, session))
    lines.append(f"  {len(scheds)} adversarially aimed cut(s):")
    for label in sorted(scheds):
        result = run_with_schedule(spec, session, scheds[label])
        verdict = "IDENTICAL" if (result.completed and
                                  result.outcome_digest
                                  == base.outcome_digest) else (
            result.abort_reason or "DIVERGED")
        lines.append(f"    before {label:<22} -> {verdict}")
    if attack:
        from .adversary.fieldcut import run_fieldcut_attack

        naive, durable = run_fieldcut_attack(spec, session)
        lines.append("  field-cutting attacker (cut in the ack window, "
                     "fresh challenge on restart):")
        lines.append(f"    {naive.verdict()}")
        lines.append(f"    {durable.verdict()}")
    return "\n".join(lines)


def cmd_power_soak(directory: str, spec, workers=None,
                   min_completed: float = 1.0,
                   obs: bool = False, obs_profile: bool = False) -> tuple:
    """Run the power-cut fleet soak; ``(report, exit_code)``.

    Writes the placement-invariant ``summary.json`` atomically into
    ``directory``.  ``EXIT_OK`` when every session completed,
    ``EXIT_DEGRADED`` when some aborted typed-cleanly but the
    completion floor held, ``EXIT_FAILED`` when the floor broke or a
    session died unclean.
    """
    import json as _json

    from .obs.integration import fleet_spec_digest
    from .obs.metrics import atomic_write_bytes
    from .protocols.fleet import run_power_soak

    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    obs_dir = os.path.join(directory, "obs") \
        if (obs or obs_profile) else None
    with _obs_session(obs_dir, kind="power-soak", seed=spec.seed,
                      config_digest=fleet_spec_digest(spec),
                      profile=obs_profile,
                      argv=["power", "soak", "--dir", directory]):
        report = run_power_soak(spec, workers=workers)
    payload = _json.dumps(report.summary_payload(), indent=1,
                          sort_keys=True).encode()
    summary_path = os.path.join(directory, "summary.json")
    atomic_write_bytes(summary_path, payload)
    output = report.summary() + f"\n  wrote {summary_path}"
    if not report.all_clean:
        return (output + "\n  FAILED: a session died without a typed "
                "abort", EXIT_FAILED)
    fraction = report.completed / report.sessions
    if fraction < min_completed:
        return (output + f"\n  FAILED: completion {fraction:.1%} below "
                f"the floor {min_completed:.1%}", EXIT_FAILED)
    if report.completed < report.sessions:
        return output, EXIT_DEGRADED
    return output, EXIT_OK


def _power_soak_spec_from_args(args) -> "object":
    from .protocols.fleet import PowerSoakSpec

    return PowerSoakSpec(
        curve=args.curve,
        sessions=args.sessions,
        seed=args.seed,
        cut_seed=args.cut_seed,
        cuts=args.cuts,
        mean_on_cycles=args.on_cycles,
        checkpoint_interval=args.interval,
        max_power_cycles=args.max_power_cycles,
    )


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC 2013 low-energy ECC coprocessor reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="design-point summary")
    sub.add_parser("energy", help="calibrated operating-point report")
    sub.add_parser("area", help="gate-count table")
    listing = sub.add_parser("listing", help="microcode listing")
    listing.add_argument("--limit", type=int, default=40)
    evaluate = sub.add_parser("evaluate", help="white-box attack battery")
    evaluate.add_argument("--weak", action="store_true",
                          help="evaluate the unprotected strawman")
    evaluate.add_argument("--traces", type=int, default=80)
    evaluate.add_argument("--seed", type=int, default=2013,
                          help="master seed of the whole evaluation")

    campaign = sub.add_parser(
        "campaign", help="trace-acquisition / attack campaign engine"
    )
    verbs = campaign.add_subparsers(dest="verb", required=True)

    acquire = verbs.add_parser("acquire",
                               help="acquire (or resume) a campaign")
    acquire.add_argument("--dir", required=True, help="campaign directory")
    acquire.add_argument("--traces", type=int, default=256)
    acquire.add_argument("--shard-size", type=int, default=64)
    acquire.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cores, max 8)")
    acquire.add_argument("--scenario", default="protected",
                         choices=("unprotected", "known_randomness",
                                  "protected"))
    acquire.add_argument("--seed", type=int, default=0)
    acquire.add_argument("--bits", type=int, default=4,
                         help="ladder bits to acquire (truncates traces); "
                              "omit for full-length traces")
    acquire.add_argument("--full-length", dest="bits",
                         action="store_const", const=None,
                         help="acquire full point multiplications")
    acquire.add_argument("--noise", type=float, default=38.0)
    acquire.add_argument("--quiet", action="store_true")
    acquire.add_argument("--shard-timeout", type=float, default=None,
                         help="watchdog seconds per shard attempt "
                              "(worker processes only)")
    acquire.add_argument("--max-attempts", type=int, default=None,
                         help="attempts per shard before quarantine")
    acquire.add_argument("--chaos", default=None, metavar="SPEC",
                         help="inject deterministic faults, e.g. "
                              "'crash=0.4,corrupt=0.25' (tests/CI only)")
    acquire.add_argument("--chaos-seed", type=int, default=0)
    acquire.add_argument("--chaos-shards", default=None,
                         help="comma-separated shard indices the chaos "
                              "faults apply to (default: all)")
    acquire.add_argument("--curve", default="K-163",
                         help="named curve (K-163, B-163, TOY-B17)")
    acquire.add_argument("--obs", action="store_true",
                         help="trace the run into <dir>/obs "
                              "(spans, metrics, manifest)")
    acquire.add_argument("--obs-profile", action="store_true",
                         help="--obs plus perf_counter hot-path timers")

    status = verbs.add_parser("status", help="manifest summary")
    status.add_argument("--dir", required=True)

    attack = verbs.add_parser("attack", help="streaming attack on a "
                                             "campaign directory")
    attack.add_argument("--dir", required=True)
    attack.add_argument("--attack", default="dpa",
                        choices=("dpa", "cpa", "spa"))
    attack.add_argument("--bits", type=int, default=2)
    attack.add_argument("--grid", default=None,
                        help="comma-separated traces-to-disclosure grid")
    attack.add_argument("--verify", action="store_true",
                        help="digest-check every shard before reading")
    attack.add_argument("--allow-partial", action="store_true",
                        help="attack an incomplete store (the report "
                             "states which shards backed the statistics)")

    doctor = verbs.add_parser(
        "doctor", help="inspect failures.jsonl and the quarantine"
    )
    doctor.add_argument("--dir", required=True)
    doctor.add_argument("--clear", action="store_true",
                        help="release quarantined shards for re-acquire")
    doctor.add_argument("--last", type=int, default=10,
                        help="failure events to show (most recent)")

    dse = sub.add_parser(
        "dse", help="design-space exploration with a security axis"
    )
    dverbs = dse.add_subparsers(dest="verb", required=True)

    explore = dverbs.add_parser(
        "explore", help="measure a design space and compute its front"
    )
    explore.add_argument("--dir", required=True,
                         help="exploration directory (measurement cache, "
                              "space.json, points.json, pareto.json)")
    explore.add_argument("--digits", default="1,2,4,8,16",
                         help="comma-separated digit sizes")
    explore.add_argument("--vdd", default="0.8,1.0,1.2",
                         help="comma-separated core voltages")
    explore.add_argument("--freq", default="100e3,847.5e3,4e6",
                         help="comma-separated clock frequencies in Hz")
    explore.add_argument("--countermeasures", default="full,none",
                         help="comma-separated countermeasure sets "
                              "(full, no-rpc, unbalanced-mux, none)")
    explore.add_argument("--backends", default="",
                         help="comma-separated crypto-backend axis "
                              "(ecc, simon-aead, sha1-aead, "
                              "hybrid:<epoch>, "
                              "hybrid:<engine>:<epoch>); empty keeps "
                              "the classic ECC-only space")
    explore.add_argument("--curve", default="K-163",
                         help="named curve (K-163, B-163, TOY-B17)")
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--whitebox", action="store_true",
                         help="run the white-box attack battery per "
                              "cell and fold findings into the score")
    explore.add_argument("--whitebox-traces", type=int, default=60)
    explore.add_argument("--max-latency-ms", type=float, default=105.0,
                         help="latency constraint (paper: 105 ms; "
                              "0 disables)")
    explore.add_argument("--max-area-ge", type=float, default=None,
                         help="gate budget constraint")
    explore.add_argument("--min-security", type=float, default=1.0,
                         help="security-score floor in [0,1] "
                              "(negative disables)")
    explore.add_argument("--objectives",
                         default="area_energy,power,security",
                         help="comma-separated objectives (area, cycles, "
                              "latency, power, energy, area_energy, "
                              "security; energy_per_message with "
                              "--backends)")
    explore.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cores, max 8)")
    explore.add_argument("--quiet", action="store_true")
    explore.add_argument("--shard-timeout", type=float, default=None,
                         help="watchdog seconds per measurement attempt "
                              "(worker processes only)")
    explore.add_argument("--max-attempts", type=int, default=None,
                         help="attempts per cell before quarantine")
    explore.add_argument("--obs", action="store_true",
                         help="trace the run into <dir>/obs")
    explore.add_argument("--obs-profile", action="store_true",
                         help="--obs plus perf_counter hot-path timers")

    dpareto = dverbs.add_parser(
        "pareto", help="re-rank an explored directory (no simulation)"
    )
    dpareto.add_argument("--dir", required=True)
    dpareto.add_argument("--objectives", default=None,
                         help="override the spec's objectives")
    dpareto.add_argument("--max-latency-ms", type=float, default=None,
                         help="override the latency constraint "
                              "(0 disables)")
    dpareto.add_argument("--max-area-ge", type=float, default=None,
                         help="override the gate budget")
    dpareto.add_argument("--min-security", type=float, default=None,
                         help="override the security floor "
                              "(negative disables)")
    dpareto.add_argument("--json", action="store_true",
                         help="machine-readable front")

    dreport = dverbs.add_parser(
        "report", help="the full evaluated grid of a directory"
    )
    dreport.add_argument("--dir", required=True)
    dreport.add_argument("--json", action="store_true",
                         help="dump points.json verbatim")

    protocol = sub.add_parser(
        "protocol", help="resilient sessions over the lossy channel"
    )
    pverbs = protocol.add_subparsers(dest="verb", required=True)

    prun = pverbs.add_parser("run", help="narrate a few sessions")
    prun.add_argument("--protocol", default="peeters-hermans",
                      choices=("peeters-hermans", "schnorr",
                               "mutual-auth"))
    prun.add_argument("--curve", default="TOY-B17")
    prun.add_argument("--loss", type=float, default=0.1,
                      help="frame-loss probability")
    prun.add_argument("--sessions", type=int, default=5)
    prun.add_argument("--seed", type=int, default=2013)
    prun.add_argument("--distance", type=float, default=0.5,
                      help="radio distance in meters (sets the BER)")
    prun.add_argument("--events", action="store_true",
                      help="print the per-frame event log")
    prun.add_argument("--obs-dir", default=None,
                      help="trace the sessions into this directory")
    prun.add_argument("--obs-profile", action="store_true",
                      help="also time the hot paths (needs --obs-dir)")

    psoak = pverbs.add_parser(
        "soak", help="availability/energy sweep over loss rates"
    )
    psoak.add_argument("--protocol", default="peeters-hermans",
                       choices=("peeters-hermans", "schnorr",
                                "mutual-auth"))
    psoak.add_argument("--curve", default="TOY-B17")
    psoak.add_argument("--sessions", type=int, default=1000,
                       help="sessions per sweep point")
    psoak.add_argument("--seed", type=int, default=2013)
    psoak.add_argument("--sweep", default=None,
                       help="comma-separated frame-loss rates "
                            "(default 0,0.05,0.1,0.2)")
    psoak.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 8; "
                            "0 = in-process)")
    psoak.add_argument("--distance", type=float, default=0.5)
    psoak.add_argument("--min-availability", type=float, default=0.99,
                       help="floor below which the soak FAILS "
                            "(above it but short of 100%% = degraded)")
    psoak.add_argument("--quiet", action="store_true")
    psoak.add_argument("--obs-dir", default=None,
                       help="trace the soak into this directory")
    psoak.add_argument("--obs-profile", action="store_true",
                       help="also time the hot paths (needs --obs-dir)")

    pamort = pverbs.add_parser(
        "amortize",
        help="epoch-amortized sessions: one handshake per epoch, "
             "symmetric AEAD per message",
    )
    pamort.add_argument("--protocol", default="peeters-hermans",
                        choices=("peeters-hermans", "schnorr"))
    pamort.add_argument("--backend", default="simon-aead",
                        choices=("simon-aead", "sha1-aead"))
    pamort.add_argument("--curve", default="TOY-B17")
    pamort.add_argument("--epoch", type=int, default=16,
                        help="messages per handshake (the "
                             "forward-secrecy window)")
    pamort.add_argument("--messages", type=int, default=64,
                        help="messages per session")
    pamort.add_argument("--sessions", type=int, default=8,
                        help="sessions per sweep point")
    pamort.add_argument("--seed", type=int, default=2013)
    pamort.add_argument("--sweep", default=None,
                        help="comma-separated frame-loss rates "
                             "(default 0,0.05,0.1,0.2)")
    pamort.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cores, max "
                             "8; 0 = in-process)")
    pamort.add_argument("--distance", type=float, default=0.5)
    pamort.add_argument("--min-delivery", type=float, default=0.95,
                        help="delivery floor below which the run "
                             "FAILS (above it but short of 100%% = "
                             "degraded)")
    pamort.add_argument("--dir", default=None,
                        help="write the worker-invariant "
                             "summary.json here")
    pamort.add_argument("--quiet", action="store_true")
    pamort.add_argument("--obs-dir", default=None,
                        help="trace the run into this directory")
    pamort.add_argument("--obs-profile", action="store_true",
                        help="also time the hot paths (needs "
                             "--obs-dir)")

    obs = sub.add_parser(
        "obs", help="observability reports over a traced run"
    )
    overbs = obs.add_subparsers(dest="verb", required=True)

    oreport = overbs.add_parser(
        "report", help="span/energy/metric report of one run"
    )
    oreport.add_argument("--dir", required=True,
                         help="run directory (or its obs/ subdir)")
    oreport.add_argument("--json", action="store_true",
                         help="machine-readable report")
    oreport.add_argument("--top", type=int, default=10,
                         help="slowest spans to list")
    oreport.add_argument("--require-spans", default=None,
                         help="comma-separated span names that must "
                              "appear (exit 1 otherwise)")
    oreport.add_argument("--require-metrics", default=None,
                         help="comma-separated metric families that "
                              "must appear (exit 1 otherwise)")

    odiff = overbs.add_parser(
        "diff", help="metric regression table between two runs"
    )
    odiff.add_argument("a", help="baseline: run dir, obs dir or "
                                 "metrics.json")
    odiff.add_argument("b", help="candidate: run dir, obs dir or "
                                 "metrics.json")
    odiff.add_argument("--filter", action="append", default=None,
                       metavar="GLOB",
                       help="only diff metrics matching this glob "
                            "(repeatable)")
    odiff.add_argument("--max-regression", type=float, default=None,
                       metavar="PCT",
                       help="exit 1 when any metric rose by more than "
                            "this percentage")

    otail = overbs.add_parser(
        "tail", help="live telemetry snapshot + flight-recorder dumps"
    )
    otail.add_argument("--dir", required=True,
                       help="soak/run directory holding telemetry.json")
    otail.add_argument("--json", action="store_true",
                       help="raw snapshot JSON")

    oalerts = overbs.add_parser(
        "alerts", help="alert log of one soak (exit 3 when any fired)"
    )
    oalerts.add_argument("--dir", required=True,
                         help="soak/run directory holding alerts.json")
    oalerts.add_argument("--json", action="store_true",
                         help="raw alert-log JSON")

    otrend = overbs.add_parser(
        "trend", help="fold BENCH_*.json into the bench trend log"
    )
    otrend.add_argument("--results", default="results",
                        help="results directory (default: results/)")
    otrend.add_argument("--label", default=None,
                        help="name for newly folded entries "
                             "(e.g. a git rev)")
    otrend.add_argument("--no-write", action="store_true",
                        help="render only; do not update the trend file")
    otrend.add_argument("--json", action="store_true",
                        help="raw trend JSON")

    server = sub.add_parser(
        "server", help="fleet-scale private-identification service"
    )
    sverbs = server.add_subparsers(dest="verb", required=True)

    senroll = sverbs.add_parser(
        "enroll", help="enroll a deterministic tag fleet into shards"
    )
    senroll.add_argument("--dir", required=True,
                         help="fleet store directory")
    senroll.add_argument("--tags", type=int, default=10000)
    senroll.add_argument("--shard-size", type=int, default=65536,
                         help="tags per shard file")
    senroll.add_argument("--seed", type=int, default=2013)
    senroll.add_argument("--curve", default="TOY-B17")
    senroll.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cores, max 8)")
    senroll.add_argument("--chaos", default=None,
                         help="fault injection, e.g. "
                              "'crash=0.3,corrupt=0.2'")
    senroll.add_argument("--chaos-seed", type=int, default=0)

    ssoak = sverbs.add_parser(
        "soak", help="supervised multi-cohort soak against a fleet"
    )
    ssoak.add_argument("--store", required=True,
                       help="enrolled fleet directory")
    ssoak.add_argument("--dir", required=True,
                       help="soak output directory")
    ssoak.add_argument("--sessions", type=int, default=200,
                       help="sessions per cohort")
    ssoak.add_argument("--cohorts", type=int, default=4)
    ssoak.add_argument("--rate", type=float, default=2000.0,
                       help="mean session arrivals per virtual second")
    ssoak.add_argument("--loss", type=float, default=0.1,
                       help="frame-loss probability")
    ssoak.add_argument("--seed", type=int, default=2013)
    ssoak.add_argument("--capacity", type=int, default=256,
                       help="concurrent sessions before queueing")
    ssoak.add_argument("--admission-queue", type=int, default=64,
                       help="queued admissions before shedding")
    ssoak.add_argument("--deadline", type=float, default=2.0,
                       help="per-session deadline (virtual seconds)")
    ssoak.add_argument("--search", default="cached",
                       choices=("cached", "uncached"),
                       help="identification search mode")
    ssoak.add_argument("--distance", type=float, default=0.5,
                       help="radio distance in meters (sets the BER)")
    ssoak.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 8)")
    ssoak.add_argument("--chaos", default=None,
                       help="fault injection, e.g. 'crash=0.3'")
    ssoak.add_argument("--chaos-seed", type=int, default=0)
    ssoak.add_argument("--min-acceptance", type=float, default=0.9,
                       help="acceptance-rate floor below which the "
                            "soak FAILS")
    ssoak.add_argument("--obs", action="store_true",
                       help="trace the soak into <dir>/obs")
    ssoak.add_argument("--obs-profile", action="store_true",
                       help="--obs plus perf_counter hot-path timers")

    srun = sverbs.add_parser(
        "run", help="one in-process cohort with live /metrics"
    )
    srun.add_argument("--store", required=True,
                      help="enrolled fleet directory")
    srun.add_argument("--sessions", type=int, default=200)
    srun.add_argument("--rate", type=float, default=2000.0)
    srun.add_argument("--loss", type=float, default=0.1)
    srun.add_argument("--seed", type=int, default=2013)
    srun.add_argument("--capacity", type=int, default=256)
    srun.add_argument("--admission-queue", type=int, default=64)
    srun.add_argument("--deadline", type=float, default=2.0)
    srun.add_argument("--search", default="cached",
                      choices=("cached", "uncached"))
    srun.add_argument("--distance", type=float, default=0.5)
    srun.add_argument("--metrics-port", type=int, default=None,
                      help="serve /metrics on this port while running "
                           "(0 = ephemeral; omit to disable)")
    srun.add_argument("--serve-seconds", type=float, default=0.0,
                      help="keep serving /metrics this long after the "
                           "run so a scrape loop sees the final state")
    srun.add_argument("--quiet", action="store_true")

    attack_p = sub.add_parser(
        "attack", help="adversary lab: battery-depletion floods vs "
                       "energy-budget defenses"
    )
    averbs = attack_p.add_subparsers(dest="verb", required=True)

    arun = averbs.add_parser(
        "run", help="narrate one adversary against each defense posture"
    )
    arun.add_argument("--adversary", default="amplification",
                      help="bogus-flood | replay-flood | amplification | "
                           "abandonment | legit")
    arun.add_argument("--defense", action="append", dest="defenses",
                      default=None,
                      help="defense posture to include (repeatable; "
                           "default: all)")
    arun.add_argument("--sessions", type=int, default=6,
                      help="attack sessions per posture")
    arun.add_argument("--seed", type=int, default=7)
    arun.add_argument("--loss", type=float, default=0.1,
                      help="frame-loss probability")
    arun.add_argument("--curve", default="TOY-B17")
    arun.add_argument("--distance", type=float, default=0.5,
                      help="radio distance in meters (sets the BER)")

    asoak = averbs.add_parser(
        "soak", help="supervised multi-cohort flood soak"
    )
    asoak.add_argument("--dir", required=True,
                       help="soak output directory")
    asoak.add_argument("--adversary", default="mixed",
                       help="mixed | bogus-flood | replay-flood | "
                            "amplification | abandonment")
    asoak.add_argument("--defense", default="none",
                       help="none | budget-cap | wake-gating | backoff | "
                            "full")
    asoak.add_argument("--sessions", type=int, default=50,
                       help="sessions per cohort")
    asoak.add_argument("--cohorts", type=int, default=4)
    asoak.add_argument("--legit-fraction", type=float, default=0.2,
                       help="fraction of honest sessions in the mix")
    asoak.add_argument("--rate", type=float, default=40.0,
                       help="mean session arrivals per virtual second")
    asoak.add_argument("--loss", type=float, default=0.1,
                       help="frame-loss probability")
    asoak.add_argument("--seed", type=int, default=0)
    asoak.add_argument("--curve", default="TOY-B17")
    asoak.add_argument("--distance", type=float, default=0.5)
    asoak.add_argument("--budget-cap", type=float, default=0.0,
                       help="override the posture's per-window budget "
                            "cap (uJ; 0 keeps the posture default)")
    asoak.add_argument("--budget-window", type=float, default=0.0,
                       help="override the budget window (seconds)")
    asoak.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 8)")
    asoak.add_argument("--chaos", default=None,
                       help="fault injection, e.g. 'crash=0.3'")
    asoak.add_argument("--chaos-seed", type=int, default=0)
    asoak.add_argument("--min-legit-success", type=float, default=0.0,
                       help="honest-session success floor below which "
                            "the soak FAILS")
    asoak.add_argument("--obs", action="store_true",
                       help="trace the soak into <dir>/obs")
    asoak.add_argument("--obs-profile", action="store_true",
                       help="--obs plus perf_counter hot-path timers")

    power = sub.add_parser(
        "power", help="intermittent power: brownouts, checkpoints, "
                      "zero nonce reuse"
    )
    wverbs = power.add_subparsers(dest="verb", required=True)

    wrun = wverbs.add_parser(
        "run", help="narrate one session across seeded and "
                    "adversarial power cuts"
    )
    wrun.add_argument("--curve", default="TOY-B17")
    wrun.add_argument("--seed", type=int, default=2013)
    wrun.add_argument("--session", type=int, default=0)
    wrun.add_argument("--cuts", type=int, default=3,
                      help="cuts per seeded schedule")
    wrun.add_argument("--on-cycles", type=int, default=8000,
                      help="mean power-on window (cycles)")
    wrun.add_argument("--interval", type=int, default=8,
                      help="ladder steps between checkpoints")
    wrun.add_argument("--schedules", type=int, default=5,
                      help="seeded cut schedules to replay")
    wrun.add_argument("--no-attack", action="store_true",
                      help="skip the field-cutting attack demo")

    wsoak = wverbs.add_parser(
        "soak", help="fleet soak under seeded power-cut schedules"
    )
    wsoak.add_argument("--dir", required=True,
                       help="soak output directory (summary.json "
                            "lands here)")
    wsoak.add_argument("--curve", default="TOY-B17")
    wsoak.add_argument("--sessions", type=int, default=50)
    wsoak.add_argument("--seed", type=int, default=2013)
    wsoak.add_argument("--cut-seed", type=int, default=1,
                       help="seed of the cut-placement stream")
    wsoak.add_argument("--cuts", type=int, default=3,
                       help="cuts per session")
    wsoak.add_argument("--on-cycles", type=int, default=8000,
                       help="mean power-on window (cycles)")
    wsoak.add_argument("--interval", type=int, default=8,
                       help="ladder steps between checkpoints")
    wsoak.add_argument("--max-power-cycles", type=int, default=64,
                       help="restarts before a session aborts typed")
    wsoak.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cores, max 8; "
                            "0 = in-process)")
    wsoak.add_argument("--min-completed", type=float, default=1.0,
                       help="completion floor below which the soak "
                            "FAILS")
    wsoak.add_argument("--obs", action="store_true",
                       help="trace the soak into <dir>/obs")
    wsoak.add_argument("--obs-profile", action="store_true",
                       help="--obs plus perf_counter hot-path timers")

    args = parser.parse_args(argv)

    if args.command == "info":
        output = cmd_info()
    elif args.command == "energy":
        output = cmd_energy()
    elif args.command == "area":
        output = cmd_area()
    elif args.command == "listing":
        output = cmd_listing(limit=args.limit)
    elif args.command == "campaign":
        return _campaign_main(args, argv if argv is not None
                              else sys.argv[1:])
    elif args.command == "dse":
        return _dse_main(args, argv if argv is not None
                         else sys.argv[1:])
    elif args.command == "protocol":
        return _protocol_main(args)
    elif args.command == "obs":
        return _obs_main(args)
    elif args.command == "server":
        return _server_main(args)
    elif args.command == "attack":
        return _attack_main(args)
    elif args.command == "power":
        return _power_main(args)
    else:
        output = cmd_evaluate(weak=args.weak, traces=args.traces,
                              seed=args.seed)
    _print(output)
    return EXIT_OK


def _print(output: str) -> None:
    try:
        print(output)
    except BrokenPipeError:  # e.g. piped into `head`
        pass


def _obs_main(args) -> int:
    """Dispatch an ``obs`` verb under the exit-code contract."""
    try:
        if args.verb == "report":
            output, code = cmd_obs_report(
                args.dir, as_json=args.json, top=args.top,
                require_spans=[s for s in
                               (args.require_spans or "").split(",") if s],
                require_metrics=[s for s in
                                 (args.require_metrics or "").split(",")
                                 if s],
            )
        elif args.verb == "diff":
            output, code = cmd_obs_diff(
                args.a, args.b, patterns=args.filter,
                max_regression=args.max_regression,
            )
        elif args.verb == "tail":
            output, code = cmd_obs_tail(args.dir, as_json=args.json)
        elif args.verb == "alerts":
            output, code = cmd_obs_alerts(args.dir, as_json=args.json)
        else:
            output, code = cmd_obs_trend(
                args.results, label=args.label,
                write=not args.no_write, as_json=args.json,
            )
    except FileNotFoundError as exc:
        print(f"obs error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _protocol_main(args) -> int:
    """Dispatch a ``protocol`` verb under the exit-code contract."""
    code = EXIT_OK
    try:
        if args.verb == "run":
            output = cmd_protocol_run(
                protocol=args.protocol, curve=args.curve, loss=args.loss,
                sessions=args.sessions, seed=args.seed,
                distance=args.distance, events=args.events,
                obs_dir=args.obs_dir, obs_profile=args.obs_profile,
            )
        elif args.verb == "amortize":
            sweep = None
            if args.sweep:
                sweep = [float(s) for s in args.sweep.split(",") if s]
            output, code = cmd_protocol_amortize(
                protocol=args.protocol, backend=args.backend,
                curve=args.curve, epoch=args.epoch,
                messages=args.messages, sessions=args.sessions,
                seed=args.seed, sweep=sweep, workers=args.workers,
                distance=args.distance,
                min_delivery=args.min_delivery, directory=args.dir,
                quiet=args.quiet, obs_dir=args.obs_dir,
                obs_profile=args.obs_profile,
            )
        else:
            sweep = None
            if args.sweep:
                sweep = [float(s) for s in args.sweep.split(",") if s]
            output, code = cmd_protocol_soak(
                protocol=args.protocol, curve=args.curve,
                sessions=args.sessions, seed=args.seed, sweep=sweep,
                workers=args.workers, distance=args.distance,
                min_availability=args.min_availability, quiet=args.quiet,
                obs_dir=args.obs_dir, obs_profile=args.obs_profile,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — the sweep is deterministic; rerunning "
              "the same command reproduces it from scratch",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except (ValueError, KeyError) as exc:
        print(f"protocol error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _server_main(args) -> int:
    """Dispatch a ``server`` verb under the exit-code contract."""
    from .server import ServerError

    code = EXIT_OK
    try:
        if args.verb == "enroll":
            output, code = cmd_server_enroll(
                args.dir, tags=args.tags, shard_size=args.shard_size,
                seed=args.seed, curve=args.curve, workers=args.workers,
                chaos=args.chaos, chaos_seed=args.chaos_seed,
            )
        elif args.verb == "soak":
            output, code = cmd_server_soak(
                args.dir, _server_soak_spec(args), workers=args.workers,
                chaos=args.chaos, chaos_seed=args.chaos_seed,
                min_acceptance=args.min_acceptance,
                obs=args.obs, obs_profile=args.obs_profile,
            )
        else:
            output, code = cmd_server_run(
                _server_soak_spec(args),
                metrics_port=args.metrics_port,
                serve_seconds=args.serve_seconds, quiet=args.quiet,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — enrollment shards and finished cohorts "
              "are cached; rerunning the same command resumes",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except (ServerError, ValueError, KeyError) as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _attack_main(args) -> int:
    """Dispatch an ``attack`` verb under the exit-code contract."""
    from .adversary import AdversaryError

    code = EXIT_OK
    try:
        if args.verb == "run":
            output = cmd_attack_run(
                adversary=args.adversary, defenses=args.defenses,
                sessions=args.sessions, seed=args.seed, loss=args.loss,
                curve=args.curve, distance=args.distance,
            )
        else:
            output, code = cmd_attack_soak(
                args.dir, _attack_spec_from_args(args),
                workers=args.workers, chaos=args.chaos,
                chaos_seed=args.chaos_seed,
                min_legit_success=args.min_legit_success,
                obs=args.obs, obs_profile=args.obs_profile,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — the flood is deterministic; rerunning "
              "the same command reproduces it from scratch",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except (AdversaryError, ValueError, KeyError) as exc:
        print(f"attack error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _power_main(args) -> int:
    """Dispatch a ``power`` verb under the exit-code contract."""
    from .intermittent import IntermittentError

    code = EXIT_OK
    try:
        if args.verb == "run":
            output = cmd_power_run(
                curve=args.curve, seed=args.seed, session=args.session,
                cuts=args.cuts, on_cycles=args.on_cycles,
                interval=args.interval, schedules=args.schedules,
                attack=not args.no_attack,
            )
        else:
            output, code = cmd_power_soak(
                args.dir, _power_soak_spec_from_args(args),
                workers=args.workers, min_completed=args.min_completed,
                obs=args.obs, obs_profile=args.obs_profile,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — the soak is deterministic; rerunning "
              "the same command reproduces it from scratch",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except (IntermittentError, ValueError, KeyError) as exc:
        print(f"power error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _dse_main(args, argv) -> int:
    """Dispatch a ``dse`` verb under the exit-code contract."""
    from .dse import DseError

    code = EXIT_OK
    try:
        if args.verb == "explore":
            output, code = cmd_dse_explore(
                args.dir, _dse_spec_from_args(args),
                workers=args.workers, quiet=args.quiet,
                shard_timeout=args.shard_timeout,
                max_attempts=args.max_attempts,
                obs=args.obs, obs_profile=args.obs_profile,
            )
        elif args.verb == "pareto":
            objectives = None
            if args.objectives:
                objectives = [s for s in args.objectives.split(",") if s]
            output, code = cmd_dse_pareto(
                args.dir, objectives=objectives,
                max_latency_ms=args.max_latency_ms,
                max_area_ge=args.max_area_ge,
                min_security=args.min_security,
                as_json=args.json,
            )
        else:
            output, code = cmd_dse_report(args.dir, as_json=args.json)
    except KeyboardInterrupt:
        resume = " ".join(argv) if argv else "<the same command>"
        print(
            "\ninterrupted — completed measurements are cached; "
            f"resume with: python -m repro {resume}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except DseError as exc:
        print(f"dse error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code


def _campaign_main(args, argv) -> int:
    """Dispatch a ``campaign`` verb under the exit-code contract."""
    from .campaign import CampaignError

    code = EXIT_OK
    try:
        if args.verb == "acquire":
            chaos_shards = None
            if args.chaos_shards:
                chaos_shards = [int(s) for s in
                                args.chaos_shards.split(",") if s]
            output, code = cmd_campaign_acquire(
                args.dir, _campaign_spec_from_args(args),
                workers=args.workers, quiet=args.quiet,
                shard_timeout=args.shard_timeout,
                max_attempts=args.max_attempts,
                chaos=args.chaos, chaos_seed=args.chaos_seed,
                chaos_shards=chaos_shards,
                obs=args.obs, obs_profile=args.obs_profile,
            )
        elif args.verb == "status":
            output = cmd_campaign_status(args.dir)
        elif args.verb == "doctor":
            output = cmd_campaign_doctor(args.dir, clear=args.clear,
                                         last=args.last)
        else:
            grid = None
            if args.grid:
                grid = [int(g) for g in args.grid.split(",") if g]
            output = cmd_campaign_attack(args.dir, attack=args.attack,
                                         bits=args.bits, grid=grid,
                                         verify=args.verify,
                                         allow_partial=args.allow_partial)
    except KeyboardInterrupt:
        resume = " ".join(argv) if argv else "<the same command>"
        print(
            "\ninterrupted — progress up to the last completed shard is "
            "checkpointed in the manifest;\n"
            f"resume with: python -m repro {resume}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return EXIT_FAILED
    _print(output)
    return code
