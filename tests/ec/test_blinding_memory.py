"""Tests for scalar/point blinding and the register-usage profiles."""

import random

import pytest

from repro.ec import (
    MEMORY_PROFILES,
    NIST_K163,
    blind_scalar,
    blinded_scalar_multiply,
    memory_profile,
    montgomery_ladder_full,
    point_blinded_multiply,
    register_area_ge,
)

CURVE, G, ORDER = NIST_K163.curve, NIST_K163.generator, NIST_K163.order


class TestScalarBlinding:
    def test_blinded_scalar_is_congruent(self):
        rng = random.Random(1)
        k = NIST_K163.scalar_ring.random_scalar(rng)
        blinded = blind_scalar(k, ORDER, rng)
        assert blinded % ORDER == k
        assert blinded > ORDER  # actually blinded

    def test_blinding_varies_per_call(self):
        rng = random.Random(2)
        k = 12345
        assert blind_scalar(k, ORDER, rng) != blind_scalar(k, ORDER, rng)

    def test_result_unchanged(self):
        rng = random.Random(3)
        k = NIST_K163.scalar_ring.random_scalar(rng)
        expected = CURVE.multiply_naive(k, G)
        for __ in range(3):
            assert blinded_scalar_multiply(CURVE, k, G, ORDER, rng) == expected

    def test_ladder_bit_pattern_changes(self):
        """The countermeasure's point: the bits the ladder consumes
        differ run to run."""
        rng = random.Random(4)
        k = 0xABCDE
        b1 = blind_scalar(k, ORDER, rng)
        b2 = blind_scalar(k, ORDER, rng)
        run1 = montgomery_ladder_full(CURVE, b1, G, randomize_z=False)
        run2 = montgomery_ladder_full(CURVE, b2, G, randomize_z=False)
        bits1 = [it.key_bit for it in run1.iterations]
        bits2 = [it.key_bit for it in run2.iterations]
        assert bits1 != bits2
        assert run1.result == run2.result

    def test_validation(self):
        rng = random.Random(5)
        with pytest.raises(ValueError):
            blind_scalar(0, ORDER, rng)
        with pytest.raises(ValueError):
            blind_scalar(ORDER, ORDER, rng)
        with pytest.raises(ValueError):
            blind_scalar(5, ORDER, rng, blinding_bits=0)


class TestPointBlinding:
    def test_result_unchanged(self):
        rng = random.Random(6)
        k = NIST_K163.scalar_ring.random_scalar(rng)
        expected = CURVE.multiply_naive(k, G)
        for __ in range(2):
            assert point_blinded_multiply(CURVE, k, G, rng) == expected

    def test_small_scalars(self):
        rng = random.Random(7)
        for k in (1, 2, 3, 17):
            assert point_blinded_multiply(CURVE, k, G, rng) == \
                CURVE.multiply_naive(k, G)

    def test_zero_scalar(self):
        rng = random.Random(8)
        assert point_blinded_multiply(CURVE, 0, G, rng).is_infinity

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            point_blinded_multiply(CURVE, -1, G, random.Random(9))


class TestMemoryProfiles:
    def test_paper_claim_six_vs_eight(self):
        """Section 4: the x-only ladder fits six m-bit registers, 'the
        best known algorithm for ECPM over a prime field uses 8'."""
        ours = memory_profile("mpl-xonly-koblitz")
        prime = memory_profile("coz-prime-field")
        assert ours.registers == 6
        assert prime.registers == 8

    def test_coprocessor_matches_profile(self):
        from repro.arch import CoprocessorConfig

        assert CoprocessorConfig().core_register_count == \
            memory_profile("mpl-xonly-koblitz").registers

    def test_generic_b_needs_seven(self):
        from repro.arch import CoprocessorConfig
        from repro.ec import NIST_B163

        profile = memory_profile("mpl-xonly-generic")
        config = CoprocessorConfig(domain=NIST_B163)
        assert config.core_register_count == profile.registers == 7

    def test_storage_and_area(self):
        profile = memory_profile("mpl-xonly-koblitz")
        assert profile.storage_bits(163) == 6 * 163
        assert register_area_ge("mpl-xonly-koblitz") == 6 * 163 * 6.0

    def test_register_saving_in_ge(self):
        """The two saved registers are worth ~2 kGE of silicon."""
        saving = register_area_ge("coz-prime-field") - register_area_ge(
            "mpl-xonly-koblitz"
        )
        assert 1800 < saving < 2200

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="known profiles"):
            memory_profile("magic")

    def test_profiles_consistent(self):
        for profile in MEMORY_PROFILES.values():
            assert profile.registers == len(profile.live_values)
