"""Tests for Koblitz-curve Frobenius arithmetic and tau-adic NAF."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    NIST_B163,
    NIST_K163,
    NIST_K233,
    frobenius,
    is_koblitz,
    tnaf,
    tnaf_multiply,
)

small_scalars = st.integers(min_value=1, max_value=1_000_000)


class TestClassification:
    def test_k163_is_koblitz(self):
        assert is_koblitz(NIST_K163.curve)

    def test_k233_is_koblitz(self):
        assert is_koblitz(NIST_K233.curve)

    def test_b163_is_not(self):
        assert not is_koblitz(NIST_B163.curve)


class TestFrobenius:
    def test_maps_curve_to_curve(self):
        curve = NIST_K163.curve
        rng = random.Random(4)
        for _ in range(5):
            p = curve.random_point(rng)
            assert curve.is_on_curve(frobenius(curve, p))

    def test_fixes_infinity(self):
        from repro.ec import AffinePoint

        assert frobenius(NIST_K163.curve, AffinePoint.infinity()).is_infinity

    def test_characteristic_equation(self):
        """tau^2(P) + 2P = mu * tau(P) with mu = +1 for a = 1 (K-163)."""
        curve = NIST_K163.curve
        rng = random.Random(12)
        for _ in range(3):
            p = curve.random_point(rng)
            tau_p = frobenius(curve, p)
            tau2_p = frobenius(curve, tau_p)
            lhs = curve.add(tau2_p, curve.multiply_naive(2, p))
            assert lhs == tau_p  # mu = 1

    def test_characteristic_equation_mu_minus_one(self):
        """For K-233 (a = 0): tau^2(P) + 2P = -tau(P)."""
        curve = NIST_K233.curve
        rng = random.Random(13)
        p = curve.random_point(rng)
        tau_p = frobenius(curve, p)
        tau2_p = frobenius(curve, tau_p)
        lhs = curve.add(tau2_p, curve.multiply_naive(2, p))
        assert lhs == curve.negate(tau_p)

    def test_commutes_with_addition(self):
        curve = NIST_K163.curve
        rng = random.Random(14)
        p, q = curve.random_point(rng), curve.random_point(rng)
        assert frobenius(curve, curve.add(p, q)) == curve.add(
            frobenius(curve, p), frobenius(curve, q)
        )


class TestTnaf:
    @given(small_scalars)
    @settings(max_examples=40)
    def test_digits_in_range(self, k):
        assert set(tnaf(k, 1)) <= {-1, 0, 1}

    @given(small_scalars)
    @settings(max_examples=40)
    def test_nonadjacent(self, k):
        digits = tnaf(k, 1)
        for a, b in zip(digits, digits[1:]):
            assert a == 0 or b == 0

    def test_zero(self):
        assert tnaf(0, 1) == []

    def test_bad_mu(self):
        with pytest.raises(ValueError):
            tnaf(5, 2)

    @given(small_scalars)
    @settings(max_examples=5, deadline=None)
    def test_tnaf_multiply_matches_reference(self, k):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert tnaf_multiply(curve, k, g) == curve.multiply_naive(k, g)

    def test_tnaf_multiply_large_scalar(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0xDEADBEEFCAFEBABE1234
        assert tnaf_multiply(curve, k, g) == curve.multiply_naive(k, g)

    def test_tnaf_multiply_negative_and_zero(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert tnaf_multiply(curve, 0, g).is_infinity
        assert tnaf_multiply(curve, -5, g) == curve.negate(
            curve.multiply_naive(5, g)
        )

    def test_rejects_non_koblitz(self):
        with pytest.raises(ValueError):
            tnaf_multiply(NIST_B163.curve, 5, NIST_B163.generator)

    def test_operation_sequence_is_key_dependent(self):
        """The tau-NAF digit pattern leaks through the op sequence —
        why the paper's secure design does NOT use it for secrets."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        ops_a, ops_b = [], []
        tnaf_multiply(curve, 0b1010101, g, operations=ops_a)
        tnaf_multiply(curve, 0b1111111, g, operations=ops_b)
        assert ops_a != ops_b

    def test_frobenius_count_vs_double_count(self):
        """tau-NAF replaces doublings with Frobenius maps (cheap)."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0xFFFFF
        ops = []
        tnaf_multiply(curve, k, g, operations=ops)
        assert ops.count("F") >= k.bit_length()
        assert "D" not in ops
