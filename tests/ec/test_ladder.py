"""Tests for the Montgomery powering ladder (Algorithm 1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    AffinePoint,
    NIST_B163,
    NIST_K163,
    montgomery_ladder,
    montgomery_ladder_full,
)

scalars = st.integers(min_value=1, max_value=(1 << 170) - 1)


class TestCorrectness:
    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_matches_naive_small_scalars(self, k):
        curve, g = NIST_K163.curve, NIST_K163.generator
        expected = curve.multiply_naive(k, g)
        rng = random.Random(k)
        assert montgomery_ladder(curve, k, g, rng=rng) == expected

    @given(scalars)
    @settings(max_examples=10, deadline=None)
    def test_matches_naive_large_scalars(self, k):
        curve, g = NIST_K163.curve, NIST_K163.generator
        expected = curve.multiply_naive(k, g)
        assert montgomery_ladder(curve, k, g, randomize_z=False) == expected

    def test_works_on_random_curve_b163(self):
        curve, g = NIST_B163.curve, NIST_B163.generator
        rng = random.Random(7)
        for _ in range(3):
            k = rng.getrandbits(163)
            assert montgomery_ladder(curve, k, g, rng=rng) == curve.multiply_naive(
                k, g
            )

    def test_arbitrary_base_points(self):
        curve = NIST_K163.curve
        rng = random.Random(21)
        for _ in range(3):
            p = curve.random_point(rng)
            k = rng.getrandbits(160)
            assert montgomery_ladder(curve, k, p, rng=rng) == curve.multiply_naive(
                k, p
            )


class TestEdgeCases:
    def test_k_zero(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert montgomery_ladder(curve, 0, g, randomize_z=False).is_infinity

    def test_k_one(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert montgomery_ladder(curve, 1, g, randomize_z=False) == g

    def test_k_two(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert montgomery_ladder(curve, 2, g, randomize_z=False) == curve.double(g)

    def test_k_equal_order_gives_infinity(self):
        curve, g, n = NIST_K163.curve, NIST_K163.generator, NIST_K163.order
        assert montgomery_ladder(curve, n, g, randomize_z=False).is_infinity

    def test_k_order_minus_one_gives_negation(self):
        curve, g, n = NIST_K163.curve, NIST_K163.generator, NIST_K163.order
        assert montgomery_ladder(curve, n - 1, g, randomize_z=False) == curve.negate(g)

    def test_infinity_base(self):
        curve = NIST_K163.curve
        result = montgomery_ladder(curve, 5, AffinePoint.infinity(), randomize_z=False)
        assert result.is_infinity

    def test_two_torsion_base_falls_back(self):
        curve = NIST_K163.curve
        p = curve.lift_x(0)
        assert montgomery_ladder(curve, 2, p, randomize_z=False).is_infinity
        assert montgomery_ladder(curve, 3, p, randomize_z=False) == p

    def test_negative_scalar_rejected(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        with pytest.raises(ValueError):
            montgomery_ladder(curve, -1, g, randomize_z=False)

    def test_randomize_without_rng_rejected(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        with pytest.raises(ValueError):
            montgomery_ladder(curve, 5, g, randomize_z=True)

    def test_bad_initial_z_rejected(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        with pytest.raises(ValueError):
            montgomery_ladder(curve, 5, g, initial_z=0)
        with pytest.raises(ValueError):
            montgomery_ladder(curve, 5, g, initial_z=1 << 163)


class TestRandomizationCountermeasure:
    def test_result_invariant_under_randomization(self):
        """Randomized projective coordinates must not change the result."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0x1234567890ABCDEF
        reference = montgomery_ladder(curve, k, g, randomize_z=False)
        rng = random.Random(99)
        for _ in range(5):
            assert montgomery_ladder(curve, k, g, rng=rng) == reference

    def test_intermediates_differ_across_runs(self):
        """With randomization on, intermediate registers are unpredictable."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0xDEADBEEFCAFE
        rng = random.Random(5)
        run1 = montgomery_ladder_full(curve, k, g, rng=rng)
        run2 = montgomery_ladder_full(curve, k, g, rng=rng)
        assert run1.result == run2.result
        differing = sum(
            1
            for a, b in zip(run1.iterations, run2.iterations)
            if (a.X1, a.Z1) != (b.X1, b.Z1)
        )
        assert differing == len(run1.iterations)

    def test_intermediates_deterministic_without_randomization(self):
        """With randomization off, every run exposes the same intermediates.

        This determinism is exactly what the Section 7 DPA exploits.
        """
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0xDEADBEEFCAFE
        run1 = montgomery_ladder_full(curve, k, g, randomize_z=False)
        run2 = montgomery_ladder_full(curve, k, g, randomize_z=False)
        assert [
            (it.X1, it.Z1, it.X2, it.Z2) for it in run1.iterations
        ] == [(it.X1, it.Z1, it.X2, it.Z2) for it in run2.iterations]

    def test_explicit_initial_z_reproducible(self):
        """White-box scenario: known randomness -> predictable intermediates."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0xABCDEF
        z = 0x1337
        run1 = montgomery_ladder_full(curve, k, g, initial_z=z)
        run2 = montgomery_ladder_full(curve, k, g, initial_z=z)
        assert run1.initial_z == z
        assert [(it.X1, it.Z1) for it in run1.iterations] == [
            (it.X1, it.Z1) for it in run2.iterations
        ]


class TestExecutionRecord:
    def test_iteration_count_is_bitlength_minus_one(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0b101101
        run = montgomery_ladder_full(curve, k, g, randomize_z=False)
        assert run.num_iterations == k.bit_length() - 1

    def test_key_bits_recorded_in_order(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0b1011001
        run = montgomery_ladder_full(curve, k, g, randomize_z=False)
        bits = [it.key_bit for it in run.iterations]
        assert bits == [int(c) for c in bin(k)[3:]]

    def test_ladder_invariant_holds_every_iteration(self):
        """(X1:Z1) = prefix*P and (X2:Z2) = (prefix+1)*P throughout."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        f = curve.field
        k = 0b110101101
        run = montgomery_ladder_full(curve, k, g, randomize_z=False)
        prefix = 1
        for it in run.iterations:
            prefix = 2 * prefix + it.key_bit
            r1 = curve.multiply_naive(prefix, g)
            r2 = curve.multiply_naive(prefix + 1, g)
            if it.Z1:
                assert f.mul_raw(it.X1, f.inverse_raw(it.Z1)) == r1.x
            else:
                assert r1.is_infinity
            if it.Z2:
                assert f.mul_raw(it.X2, f.inverse_raw(it.Z2)) == r2.x
            else:
                assert r2.is_infinity

    def test_operation_counts(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        run = montgomery_ladder_full(curve, 0b1111, g, randomize_z=False)
        assert run.field_multiplications == 6 * 3
        assert run.field_squarings == 4 * 3

    def test_memory_footprint_is_six_registers(self):
        """The ladder state is (X1, Z1, X2, Z2) + base x + one temp:
        six m-bit registers, matching the paper's claim (Section 4)."""
        # Structural check: each iteration record carries exactly the
        # four live ladder coordinates.
        curve, g = NIST_K163.curve, NIST_K163.generator
        run = montgomery_ladder_full(curve, 0b101, g, randomize_z=False)
        fields = set(vars(run.iterations[0]).keys()) if hasattr(
            run.iterations[0], "__dict__"
        ) else {f.name for f in run.iterations[0].__dataclass_fields__.values()}
        assert {"X1", "Z1", "X2", "Z2"} <= fields
