"""Tests for scalar-ring arithmetic and primality testing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import NIST_K163, ScalarRing, is_probable_prime

RING = ScalarRing(NIST_K163.order)
values = st.integers(min_value=-(1 << 170), max_value=(1 << 170))


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 2**13 - 1, NIST_K163.order])
    def test_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 9, 561, 1105, 2**16, 2**13 - 3])
    def test_composites_and_trivia(self, c):
        assert not is_probable_prime(c)

    def test_large_composite(self):
        assert not is_probable_prime(NIST_K163.order * 3)


class TestRingOps:
    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            ScalarRing(1)

    def test_require_prime(self):
        with pytest.raises(ValueError):
            ScalarRing(15, require_prime=True)
        assert ScalarRing(13, require_prime=True).n == 13

    @given(values, values)
    @settings(max_examples=30)
    def test_add_sub_inverse(self, a, b):
        assert RING.sub(RING.add(a, b), b) == RING.reduce(a)

    @given(values)
    @settings(max_examples=30)
    def test_neg(self, a):
        assert RING.add(a, RING.neg(a)) == 0

    @given(st.integers(min_value=1, max_value=(1 << 163) - 1))
    @settings(max_examples=20)
    def test_inverse(self, a):
        if RING.reduce(a) == 0:
            return
        assert RING.mul(a, RING.inverse(a)) == 1

    def test_inverse_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            RING.inverse(0)

    def test_non_invertible(self):
        ring = ScalarRing(12)
        with pytest.raises(ArithmeticError):
            ring.inverse(4)

    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=-5, max_value=20))
    @settings(max_examples=30)
    def test_pow(self, a, e):
        if e < 0 and RING.reduce(a) == 0:
            return
        expected = RING.pow(RING.pow(a, abs(e)), -1 if e < 0 else 1)
        assert RING.pow(a, e) == expected

    def test_pow_matches_builtin(self):
        assert RING.pow(7, 100) == pow(7, 100, RING.n)

    def test_random_scalar_in_range(self):
        rng = random.Random(2)
        for _ in range(50):
            k = RING.random_scalar(rng)
            assert 1 <= k < RING.n

    def test_equality_and_repr(self):
        assert RING == ScalarRing(NIST_K163.order)
        assert RING != ScalarRing(13)
        assert hex(NIST_K163.order) in repr(RING)
