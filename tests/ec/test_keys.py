"""Tests for key generation, ECDH and ECDSA."""

import random

import pytest

from repro.ec import (
    AffinePoint,
    NIST_B163,
    NIST_K163,
    ecdh_shared_secret,
    ecdsa_sign,
    ecdsa_verify,
    generate_keypair,
    montgomery_ladder,
)


class TestKeyGeneration:
    def test_public_key_matches_private(self):
        rng = random.Random(1)
        kp = generate_keypair(NIST_K163, rng)
        expected = montgomery_ladder(
            NIST_K163.curve, kp.private, NIST_K163.generator, randomize_z=False
        )
        assert kp.public == expected

    def test_private_in_range(self):
        rng = random.Random(2)
        for _ in range(5):
            kp = generate_keypair(NIST_K163, rng)
            assert 1 <= kp.private < NIST_K163.order

    def test_repr_hides_private_key(self):
        rng = random.Random(3)
        kp = generate_keypair(NIST_K163, rng)
        assert hex(kp.private) not in repr(kp)
        assert format(kp.private, "x") not in repr(kp).lower()


class TestEcdh:
    def test_shared_secret_agreement(self):
        rng = random.Random(4)
        alice = generate_keypair(NIST_K163, rng)
        bob = generate_keypair(NIST_K163, rng)
        s1 = ecdh_shared_secret(alice, bob.public, rng)
        s2 = ecdh_shared_secret(bob, alice.public, rng)
        assert s1 == s2

    def test_different_peers_different_secrets(self):
        rng = random.Random(5)
        alice = generate_keypair(NIST_K163, rng)
        bob = generate_keypair(NIST_K163, rng)
        carol = generate_keypair(NIST_K163, rng)
        assert ecdh_shared_secret(alice, bob.public, rng) != ecdh_shared_secret(
            alice, carol.public, rng
        )

    def test_invalid_point_rejected(self):
        """Invalid-point injection (a fault/protocol attack) must fail."""
        rng = random.Random(6)
        alice = generate_keypair(NIST_K163, rng)
        with pytest.raises(ValueError):
            ecdh_shared_secret(alice, AffinePoint(123, 456), rng)

    def test_infinity_rejected(self):
        rng = random.Random(7)
        alice = generate_keypair(NIST_K163, rng)
        with pytest.raises(ValueError):
            ecdh_shared_secret(alice, AffinePoint.infinity(), rng)


class TestEcdsa:
    def test_sign_verify_roundtrip(self):
        rng = random.Random(8)
        kp = generate_keypair(NIST_K163, rng)
        message = b"pacemaker telemetry frame 0001"
        sig = ecdsa_sign(kp, message, rng)
        assert ecdsa_verify(NIST_K163, kp.public, message, sig)

    def test_works_on_b163(self):
        rng = random.Random(9)
        kp = generate_keypair(NIST_B163, rng)
        sig = ecdsa_sign(kp, b"x", rng)
        assert ecdsa_verify(NIST_B163, kp.public, b"x", sig)

    def test_tampered_message_rejected(self):
        rng = random.Random(10)
        kp = generate_keypair(NIST_K163, rng)
        sig = ecdsa_sign(kp, b"set rate 60bpm", rng)
        assert not ecdsa_verify(NIST_K163, kp.public, b"set rate 99bpm", sig)

    def test_tampered_signature_rejected(self):
        rng = random.Random(11)
        kp = generate_keypair(NIST_K163, rng)
        r, s = ecdsa_sign(kp, b"msg", rng)
        assert not ecdsa_verify(NIST_K163, kp.public, b"msg", (r, s ^ 1))
        assert not ecdsa_verify(NIST_K163, kp.public, b"msg", (r ^ 1, s))

    def test_wrong_key_rejected(self):
        rng = random.Random(12)
        kp1 = generate_keypair(NIST_K163, rng)
        kp2 = generate_keypair(NIST_K163, rng)
        sig = ecdsa_sign(kp1, b"msg", rng)
        assert not ecdsa_verify(NIST_K163, kp2.public, b"msg", sig)

    def test_degenerate_signature_rejected(self):
        rng = random.Random(13)
        kp = generate_keypair(NIST_K163, rng)
        assert not ecdsa_verify(NIST_K163, kp.public, b"msg", (0, 1))
        assert not ecdsa_verify(NIST_K163, kp.public, b"msg", (1, 0))
        assert not ecdsa_verify(
            NIST_K163, kp.public, b"msg", (NIST_K163.order, 1)
        )

    def test_signatures_are_randomized(self):
        rng = random.Random(14)
        kp = generate_keypair(NIST_K163, rng)
        assert ecdsa_sign(kp, b"m", rng) != ecdsa_sign(kp, b"m", rng)

    def test_custom_hash_function(self):
        rng = random.Random(15)
        kp = generate_keypair(NIST_K163, rng)

        def toy_hash(message: bytes) -> bytes:
            return message.ljust(20, b"\x00")[:20]

        sig = ecdsa_sign(kp, b"m", rng, hash_function=toy_hash)
        assert ecdsa_verify(NIST_K163, kp.public, b"m", sig, hash_function=toy_hash)
        assert not ecdsa_verify(NIST_K163, kp.public, b"m", sig)
