"""Tests for the named-curve registry and domain parameters."""

import pytest

from repro.ec import (
    CURVE_REGISTRY,
    NIST_B163,
    NIST_B233,
    NIST_K163,
    NIST_K233,
    get_curve,
    is_probable_prime,
    montgomery_ladder,
)

ALL_CURVES = [NIST_K163, NIST_B163, NIST_K233, NIST_B233]


class TestRegistry:
    def test_all_registered(self):
        assert set(CURVE_REGISTRY) == {"K-163", "B-163", "K-233", "B-233",
                                       "TOY-B17"}

    def test_get_curve(self):
        assert get_curve("K-163") is NIST_K163

    def test_unknown_curve(self):
        with pytest.raises(KeyError, match="known curves"):
            get_curve("P-256")


class TestDomainParameters:
    @pytest.mark.parametrize("domain", ALL_CURVES, ids=lambda d: d.name)
    def test_generator_on_curve(self, domain):
        assert domain.curve.is_on_curve(domain.generator)

    @pytest.mark.parametrize("domain", ALL_CURVES, ids=lambda d: d.name)
    def test_order_is_prime(self, domain):
        assert is_probable_prime(domain.order)

    @pytest.mark.parametrize("domain", ALL_CURVES, ids=lambda d: d.name)
    def test_generator_has_stated_order(self, domain):
        result = montgomery_ladder(
            domain.curve, domain.order, domain.generator, randomize_z=False
        )
        assert result.is_infinity

    @pytest.mark.parametrize("domain", ALL_CURVES, ids=lambda d: d.name)
    def test_hasse_bound(self, domain):
        """#E = h*n must lie within the Hasse interval around 2^m + 1."""
        m = domain.field.m
        group_size = domain.cofactor * domain.order
        center = (1 << m) + 1
        half_width = 2 * (1 << (m // 2 + 1))  # loose bound on 2*sqrt(q)
        assert abs(group_size - center) <= half_width

    def test_k163_matches_paper(self):
        """The paper's curve: Koblitz over F_2^163, ~80-bit security."""
        assert NIST_K163.field.m == 163
        assert NIST_K163.curve.a == 1
        assert NIST_K163.curve.b == 1
        assert NIST_K163.security_bits == 81  # "80-bit security" in the paper

    def test_scalar_ring_modulus(self):
        assert NIST_K163.scalar_ring.n == NIST_K163.order

    def test_repr(self):
        assert "K-163" in repr(NIST_K163)
