"""The suspendable ladder: bit-identical to the full run, any split."""

import random

import pytest

from repro.ec.curves import TOY_B17, get_curve
from repro.ec.ladder import (
    LadderState,
    ladder_suspend_advance,
    ladder_suspend_init,
    ladder_suspend_result,
    montgomery_ladder_full,
)

DOMAIN = get_curve("TOY-B17")


def run_suspended(k, point, z0, chunks):
    """Run the ladder in the given step chunks, round-tripping the
    state through its checkpoint dict between every advance."""
    state = ladder_suspend_init(DOMAIN.curve, k, point, z0)
    for steps in chunks:
        state = ladder_suspend_advance(DOMAIN.curve, state, steps)
        state = LadderState.from_dict(state.to_dict())
    while not state.finished:
        state = ladder_suspend_advance(DOMAIN.curve, state, 1)
    return ladder_suspend_result(DOMAIN.curve, state)


class TestEquivalence:
    def test_matches_full_ladder_over_random_trials(self):
        rng = random.Random(42)
        ring = DOMAIN.scalar_ring
        for _ in range(25):
            k = ring.random_scalar(rng)
            z0 = rng.randrange(1, DOMAIN.field.order)
            expected = montgomery_ladder_full(
                DOMAIN.curve, k, DOMAIN.generator, initial_z=z0).result
            got = run_suspended(k, DOMAIN.generator, z0,
                                chunks=[rng.randrange(1, 6)
                                        for _ in range(4)])
            assert got == expected

    def test_registers_match_uninterrupted_run_exactly(self):
        """Not just the result point: the frozen registers after N
        steps equal the full ladder's N-th iteration registers."""
        k, z0 = 0x1234 % DOMAIN.order, 7
        full = montgomery_ladder_full(DOMAIN.curve, k, DOMAIN.generator,
                                      initial_z=z0)
        state = ladder_suspend_init(DOMAIN.curve, k, DOMAIN.generator, z0)
        for iteration in full.iterations:
            state = ladder_suspend_advance(DOMAIN.curve, state, 1)
            assert (state.x1, state.z1, state.x2, state.z2) == \
                (iteration.X1, iteration.Z1, iteration.X2, iteration.Z2)

    def test_advance_is_pure(self):
        state = ladder_suspend_init(DOMAIN.curve, 0x55 % DOMAIN.order,
                                    DOMAIN.generator, 3)
        before = state.to_dict()
        ladder_suspend_advance(DOMAIN.curve, state, 5)
        assert state.to_dict() == before

    def test_overshooting_steps_is_harmless(self):
        k = 0x31 % DOMAIN.order
        expected = montgomery_ladder_full(DOMAIN.curve, k,
                                          DOMAIN.generator,
                                          initial_z=1).result
        state = ladder_suspend_init(DOMAIN.curve, k, DOMAIN.generator, 1)
        state = ladder_suspend_advance(DOMAIN.curve, state, 10_000)
        assert state.finished
        assert ladder_suspend_result(DOMAIN.curve, state) == expected


class TestStateAccounting:
    def test_progress_counters(self):
        k = 0b1011  # 4 bits -> 3 iterations
        state = ladder_suspend_init(DOMAIN.curve, k, DOMAIN.generator, 1)
        assert state.steps_total == 3
        assert state.steps_done == 0
        state = ladder_suspend_advance(DOMAIN.curve, state, 2)
        assert state.steps_done == 2
        assert not state.finished

    def test_checkpoint_dict_round_trip(self):
        state = ladder_suspend_init(DOMAIN.curve, 0x19 % DOMAIN.order,
                                    DOMAIN.generator, 5)
        state = ladder_suspend_advance(DOMAIN.curve, state, 2)
        assert LadderState.from_dict(state.to_dict()) == state


class TestContract:
    def test_degenerate_inputs_rejected(self):
        from repro.ec.point import AffinePoint

        with pytest.raises(ValueError):
            ladder_suspend_init(DOMAIN.curve, 0, DOMAIN.generator, 1)
        with pytest.raises(ValueError):
            ladder_suspend_init(DOMAIN.curve, 5,
                                AffinePoint.infinity(), 1)
        with pytest.raises(ValueError):
            ladder_suspend_init(DOMAIN.curve, 5, DOMAIN.generator, 0)

    def test_result_before_finish_rejected(self):
        state = ladder_suspend_init(DOMAIN.curve, 0x55 % DOMAIN.order,
                                    DOMAIN.generator, 1)
        with pytest.raises(ValueError, match="iterations to run"):
            ladder_suspend_result(DOMAIN.curve, state)

    def test_negative_advance_rejected(self):
        state = ladder_suspend_init(DOMAIN.curve, 3, DOMAIN.generator, 1)
        with pytest.raises(ValueError):
            ladder_suspend_advance(DOMAIN.curve, state, -1)
