"""Tests for the affine group law on binary curves."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import AffinePoint, BinaryEllipticCurve, NIST_B163, NIST_K163
from repro.gf2m import BinaryField

RNG = random.Random(0xC0FFEE)


def random_points(domain, count, seed=1):
    rng = random.Random(seed)
    return [domain.curve.random_point(rng) for _ in range(count)]


class TestConstruction:
    def test_singular_curve_rejected(self):
        field = BinaryField(3, 0b1011)
        with pytest.raises(ValueError):
            BinaryEllipticCurve(field, 1, 0)

    def test_unreduced_coefficients_rejected(self):
        field = BinaryField(3, 0b1011)
        with pytest.raises(ValueError):
            BinaryEllipticCurve(field, 8, 1)

    def test_j_invariant(self):
        assert NIST_K163.curve.j_invariant == 1  # b = 1

    def test_equality(self):
        field = BinaryField(3, 0b1011)
        assert BinaryEllipticCurve(field, 1, 1) == BinaryEllipticCurve(field, 1, 1)
        assert BinaryEllipticCurve(field, 1, 1) != BinaryEllipticCurve(field, 0, 1)


class TestPointValidation:
    def test_generators_on_curve(self):
        assert NIST_K163.curve.is_on_curve(NIST_K163.generator)
        assert NIST_B163.curve.is_on_curve(NIST_B163.generator)

    def test_infinity_on_curve(self):
        assert NIST_K163.curve.is_on_curve(AffinePoint.infinity())

    def test_random_junk_rejected(self):
        assert not NIST_K163.curve.is_on_curve(AffinePoint(12345, 67890))

    def test_oversized_coordinates_rejected(self):
        big = 1 << 200
        assert not NIST_K163.curve.is_on_curve(AffinePoint(big, 0))

    def test_infinity_invariants(self):
        inf = AffinePoint.infinity()
        assert inf.is_infinity
        with pytest.raises(ValueError):
            AffinePoint(1, 0, True)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            AffinePoint(-1, 0)


class TestGroupLaw:
    def test_identity(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        inf = AffinePoint.infinity()
        assert curve.add(g, inf) == g
        assert curve.add(inf, g) == g
        assert curve.add(inf, inf) == inf

    def test_inverse(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert curve.add(g, curve.negate(g)).is_infinity
        assert curve.negate(curve.negate(g)) == g
        assert curve.negate(AffinePoint.infinity()).is_infinity

    def test_closure_and_on_curve(self):
        curve = NIST_K163.curve
        for p in random_points(NIST_K163, 5):
            for q in random_points(NIST_K163, 3, seed=9):
                assert curve.is_on_curve(curve.add(p, q))
            assert curve.is_on_curve(curve.double(p))

    def test_commutativity(self):
        curve = NIST_K163.curve
        pts = random_points(NIST_K163, 6)
        for p in pts[:3]:
            for q in pts[3:]:
                assert curve.add(p, q) == curve.add(q, p)

    def test_associativity(self):
        curve = NIST_K163.curve
        p, q, r = random_points(NIST_K163, 3)
        assert curve.add(curve.add(p, q), r) == curve.add(p, curve.add(q, r))

    def test_double_equals_add_self(self):
        curve = NIST_K163.curve
        for p in random_points(NIST_K163, 4):
            assert curve.double(p) == curve.add(p, p)

    def test_two_torsion_point(self):
        # The point with x = 0 is its own negative: doubling gives infinity.
        curve = NIST_K163.curve
        p = curve.lift_x(0)
        assert p is not None and curve.is_on_curve(p)
        assert curve.double(p).is_infinity
        assert curve.add(p, p).is_infinity
        assert curve.negate(p) == p

    def test_subtract(self):
        curve = NIST_K163.curve
        p, q = random_points(NIST_K163, 2)
        assert curve.add(curve.subtract(p, q), q) == p

    def test_small_multiples_consistent(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        acc = AffinePoint.infinity()
        for k in range(1, 12):
            acc = curve.add(acc, g)
            assert acc == curve.multiply_naive(k, g)

    def test_multiply_negative(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert curve.multiply_naive(-3, g) == curve.negate(
            curve.multiply_naive(3, g)
        )

    def test_multiply_zero(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert curve.multiply_naive(0, g).is_infinity

    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_multiplication_is_homomorphic(self, j, k):
        curve, g = NIST_K163.curve, NIST_K163.generator
        lhs = curve.multiply_naive(j + k, g)
        rhs = curve.add(curve.multiply_naive(j, g), curve.multiply_naive(k, g))
        assert lhs == rhs


class TestCompression:
    def test_lift_x_roundtrip(self):
        curve = NIST_K163.curve
        for p in random_points(NIST_K163, 8):
            x, bit = curve.compress(p)
            assert curve.lift_x(x, bit) == p

    def test_lift_x_two_solutions(self):
        curve = NIST_K163.curve
        p = random_points(NIST_K163, 1)[0]
        p0 = curve.lift_x(p.x, 0)
        p1 = curve.lift_x(p.x, 1)
        assert p0 is not None and p1 is not None
        assert p0 != p1
        assert curve.negate(p0) == p1

    def test_lift_x_no_solution(self):
        curve = NIST_K163.curve
        rng = random.Random(55)
        misses = 0
        for _ in range(40):
            x = rng.getrandbits(163)
            if curve.lift_x(x) is None:
                misses += 1
        # About half of all x values have no point; require at least some.
        assert misses > 5

    def test_compress_infinity_rejected(self):
        with pytest.raises(ValueError):
            NIST_K163.curve.compress(AffinePoint.infinity())

    def test_x_zero_special_case(self):
        curve = NIST_K163.curve
        p = curve.lift_x(0)
        assert p.x == 0
        assert curve.compress(p) == (0, 0)


class TestProjectiveConversion:
    def test_roundtrip_z1(self):
        curve = NIST_K163.curve
        p = random_points(NIST_K163, 1)[0]
        assert curve.to_affine(curve.to_projective(p)) == p

    def test_roundtrip_random_z(self):
        curve = NIST_K163.curve
        rng = random.Random(3)
        p = random_points(NIST_K163, 1)[0]
        for _ in range(5):
            z = rng.getrandbits(163) | 1
            z &= (1 << 163) - 1
            proj = curve.to_projective(p, z)
            assert proj.Z == z
            assert curve.to_affine(proj) == p

    def test_infinity_roundtrip(self):
        curve = NIST_K163.curve
        inf = AffinePoint.infinity()
        proj = curve.to_projective(inf)
        assert proj.is_infinity
        assert curve.to_affine(proj).is_infinity

    def test_zero_z_rejected(self):
        curve = NIST_K163.curve
        p = random_points(NIST_K163, 1)[0]
        with pytest.raises(ValueError):
            curve.to_projective(p, 0)


class TestRandomPoint:
    def test_random_points_are_on_curve_and_distinct(self):
        curve = NIST_K163.curve
        rng = random.Random(11)
        points = [curve.random_point(rng) for _ in range(10)]
        assert all(curve.is_on_curve(p) for p in points)
        assert len({(p.x, p.y) for p in points}) == 10
