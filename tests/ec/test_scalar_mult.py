"""Tests for baseline scalar-multiplication algorithms and NAF forms."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    NIST_K163,
    double_and_add,
    double_and_add_always,
    non_adjacent_form,
    width_w_naf,
    wnaf_multiply,
)

small_scalars = st.integers(min_value=1, max_value=100_000)


def naf_value(digits):
    return sum(d << i for i, d in enumerate(digits))


class TestNafForms:
    @given(small_scalars)
    @settings(max_examples=50)
    def test_naf_reconstructs(self, k):
        assert naf_value(non_adjacent_form(k)) == k

    @given(small_scalars)
    @settings(max_examples=50)
    def test_naf_nonadjacent(self, k):
        digits = non_adjacent_form(k)
        for a, b in zip(digits, digits[1:]):
            assert a == 0 or b == 0

    @given(small_scalars)
    @settings(max_examples=30)
    def test_naf_weight_not_worse_than_binary(self, k):
        naf_weight = sum(1 for d in non_adjacent_form(k) if d)
        binary_weight = bin(k).count("1")
        assert naf_weight <= binary_weight

    def test_naf_negative(self):
        assert naf_value(non_adjacent_form(-7)) == -7

    @given(small_scalars, st.integers(min_value=2, max_value=6))
    @settings(max_examples=40)
    def test_wnaf_reconstructs(self, k, w):
        assert naf_value(width_w_naf(k, w)) == k

    @given(small_scalars, st.integers(min_value=2, max_value=6))
    @settings(max_examples=40)
    def test_wnaf_digit_bounds(self, k, w):
        for d in width_w_naf(k, w):
            assert abs(d) < (1 << (w - 1))
            if d:
                assert d % 2 == 1

    def test_wnaf_bad_width(self):
        with pytest.raises(ValueError):
            width_w_naf(5, 1)


class TestAlgorithmsAgree:
    @given(small_scalars)
    @settings(max_examples=10, deadline=None)
    def test_all_algorithms_match_reference(self, k):
        curve, g = NIST_K163.curve, NIST_K163.generator
        expected = curve.multiply_naive(k, g)
        assert double_and_add(curve, k, g) == expected
        assert double_and_add_always(curve, k, g) == expected
        assert wnaf_multiply(curve, k, g) == expected
        assert wnaf_multiply(curve, k, g, width=5) == expected

    def test_zero_and_negative(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        assert double_and_add(curve, 0, g).is_infinity
        assert double_and_add_always(curve, 0, g).is_infinity
        assert wnaf_multiply(curve, 0, g).is_infinity
        minus = curve.negate(curve.multiply_naive(9, g))
        assert double_and_add(curve, -9, g) == minus
        assert double_and_add_always(curve, -9, g) == minus
        assert wnaf_multiply(curve, -9, g) == minus


class TestOperationSequences:
    """The algorithm-level side-channel profiles (Section 4)."""

    def test_double_and_add_leaks_hamming_weight(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0b1011010111
        ops = []
        double_and_add(curve, k, g, operations=ops)
        assert ops.count("A") == bin(k).count("1") - 1
        assert ops.count("D") == k.bit_length() - 1

    def test_double_and_add_sequence_reveals_key(self):
        """An SPA adversary reading D/DA patterns recovers every bit."""
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0b110100111011
        ops = []
        double_and_add(curve, k, g, operations=ops)
        recovered_bits = [1]
        i = 0
        while i < len(ops):
            assert ops[i] == "D"
            if i + 1 < len(ops) and ops[i + 1] == "A":
                recovered_bits.append(1)
                i += 2
            else:
                recovered_bits.append(0)
                i += 1
        recovered = int("".join(map(str, recovered_bits)), 2)
        assert recovered == k

    def test_always_add_sequence_is_key_independent(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        rng = random.Random(8)
        shapes = set()
        for _ in range(5):
            k = rng.getrandbits(24) | (1 << 23)
            ops = []
            double_and_add_always(curve, k, g, operations=ops)
            # Collapse real/dummy adds: that's all a sequence-level
            # adversary can see.
            shapes.add("".join("A" if o in "Aa" else o for o in ops))
        assert len(shapes) == 1

    def test_always_add_marks_dummies(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        k = 0b1001
        ops = []
        double_and_add_always(curve, k, g, operations=ops)
        assert ops == ["D", "a", "D", "a", "D", "A"]

    def test_wnaf_is_sparser_than_binary(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        rng = random.Random(77)
        k = rng.getrandbits(163)
        ops_da, ops_wnaf = [], []
        double_and_add(curve, k, g, operations=ops_da)
        wnaf_multiply(curve, k, g, width=4, operations=ops_wnaf)
        assert ops_wnaf.count("A") < ops_da.count("A")
