"""Tests for the SEC1-style point wire codec."""

import random

import pytest

from repro.ec import (
    AffinePoint,
    NIST_B163,
    NIST_K163,
    PointDecodingError,
    decode_point,
    encode_point,
    point_wire_bits,
)

CURVE, G = NIST_K163.curve, NIST_K163.generator


class TestRoundtrip:
    @pytest.mark.parametrize("compressed", [True, False])
    def test_generator(self, compressed):
        data = encode_point(CURVE, G, compressed=compressed)
        assert decode_point(CURVE, data) == G

    @pytest.mark.parametrize("compressed", [True, False])
    def test_random_points(self, compressed):
        rng = random.Random(1)
        for __ in range(6):
            point = CURVE.random_point(rng)
            data = encode_point(CURVE, point, compressed=compressed)
            assert decode_point(CURVE, data) == point

    def test_identity(self):
        data = encode_point(CURVE, AffinePoint.infinity())
        assert data == b"\x00"
        assert decode_point(CURVE, data).is_infinity

    def test_other_curve(self):
        data = encode_point(NIST_B163.curve, NIST_B163.generator)
        assert decode_point(NIST_B163.curve, data) == NIST_B163.generator

    def test_two_torsion_point(self):
        point = CURVE.lift_x(0)
        data = encode_point(CURVE, point)
        assert decode_point(CURVE, data) == point


class TestWireFormat:
    def test_prefixes(self):
        rng = random.Random(2)
        point = CURVE.random_point(rng)
        compressed = encode_point(CURVE, point, compressed=True)
        uncompressed = encode_point(CURVE, point, compressed=False)
        assert compressed[0] in (0x02, 0x03)
        assert uncompressed[0] == 0x04

    def test_sizes(self):
        point = G
        assert len(encode_point(CURVE, point, True)) == 1 + 21  # 163 bits
        assert len(encode_point(CURVE, point, False)) == 1 + 42
        assert point_wire_bits(CURVE, True) == 8 * 22
        assert point_wire_bits(CURVE, False) == 8 * 43

    def test_compression_halves_the_payload(self):
        assert point_wire_bits(CURVE, True) < point_wire_bits(CURVE, False) / 1.8

    def test_y_bit_distinguishes_negatives(self):
        rng = random.Random(3)
        point = CURVE.random_point(rng)
        negated = CURVE.negate(point)
        a = encode_point(CURVE, point)
        b = encode_point(CURVE, negated)
        assert a[1:] == b[1:]      # same x
        assert a[0] != b[0]        # different selector


class TestRejection:
    def test_empty(self):
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"")

    def test_unknown_prefix(self):
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x05" + bytes(21))

    def test_bad_lengths(self):
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x02" + bytes(5))
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x04" + bytes(21))
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x00\x00")

    def test_off_curve_uncompressed_rejected(self):
        data = b"\x04" + (123).to_bytes(21, "big") + (456).to_bytes(21, "big")
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, data)

    def test_x_without_point_rejected(self):
        rng = random.Random(4)
        while True:
            x = rng.getrandbits(163)
            if x and CURVE.lift_x(x) is None:
                break
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x02" + x.to_bytes(21, "big"))

    def test_unreduced_coordinate_rejected(self):
        big = (1 << 167) - 1
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x02" + big.to_bytes(21, "big"))

    def test_encoding_off_curve_rejected(self):
        with pytest.raises(PointDecodingError):
            encode_point(CURVE, AffinePoint(1, 2))

    def test_twist_x_rejected_at_the_parser(self):
        """The parser is the first line of the invalid-point defence:
        a quadratic-twist x never reaches the multiplier."""
        from repro.fault import quadratic_twist

        twist = quadratic_twist(CURVE)
        rng = random.Random(5)
        while True:
            x = rng.getrandbits(163) & ((1 << 163) - 1)
            if x and CURVE.lift_x(x) is None and twist.lift_x(x) is not None:
                break
        with pytest.raises(PointDecodingError):
            decode_point(CURVE, b"\x02" + x.to_bytes(21, "big"))
