"""The deterministic virtual-time loop under the server."""

import pytest

from repro.server.simloop import (
    SimCancelled,
    SimFuture,
    SimLoop,
    SimQueue,
    SimQueueFull,
)


class TestClockAndOrdering:
    def test_virtual_time_advances_only_by_events(self):
        loop = SimLoop()
        seen = []

        async def main():
            seen.append(loop.now)
            await loop.sleep(1.5)
            seen.append(loop.now)
            await loop.sleep(0.25)
            seen.append(loop.now)
            return "done"

        assert loop.run_until_complete(main()) == "done"
        assert seen == [0.0, 1.5, 1.75]

    def test_fifo_at_equal_times(self):
        loop = SimLoop()
        order = []
        for i in range(5):
            loop.call_at(1.0, order.append, i)
        loop.call_soon(order.append, "first")
        loop.run()
        assert order == ["first", 0, 1, 2, 3, 4]

    def test_identical_schedules_are_reproducible(self):
        def run_once():
            loop = SimLoop()
            trace = []

            async def worker(idx, delay):
                await loop.sleep(delay)
                trace.append((round(loop.now, 6), idx))

            async def main():
                tasks = [loop.create_task(worker(i, (i * 7 % 5) * 0.1))
                         for i in range(20)]
                for task in tasks:
                    await task

            loop.run_until_complete(main())
            return trace

        assert run_once() == run_once()


class TestTasks:
    def test_task_result_and_exception(self):
        loop = SimLoop()

        async def boom():
            await loop.sleep(0.1)
            raise ValueError("kaput")

        task = loop.create_task(boom())
        loop.run()
        assert task.done()
        with pytest.raises(ValueError, match="kaput"):
            task.result()

    def test_await_propagates_exception(self):
        loop = SimLoop()

        async def boom():
            raise KeyError("inner")

        async def outer():
            try:
                await loop.create_task(boom())
            except KeyError:
                return "caught"

        assert loop.run_until_complete(outer()) == "caught"

    def test_cancel_interrupts_sleep(self):
        loop = SimLoop()
        log = []

        async def sleeper():
            try:
                await loop.sleep(100.0)
            except SimCancelled:
                log.append(("cancelled", loop.now))
                raise

        task = loop.create_task(sleeper())
        loop.call_at(2.0, task.cancel, "deadline")
        loop.run()
        assert log == [("cancelled", 2.0)]
        assert isinstance(task.exception(), SimCancelled)

    def test_cancel_after_completion_is_noop(self):
        loop = SimLoop()

        async def quick():
            return 42

        task = loop.create_task(quick())
        loop.run()
        assert task.cancel() is False
        assert task.result() == 42

    def test_deadlock_is_loud(self):
        loop = SimLoop()

        async def forever():
            await SimFuture(loop)  # never resolved

        with pytest.raises(RuntimeError, match="deadlock"):
            loop.run_until_complete(forever())


class TestQueue:
    def test_bounded_put_raises(self):
        loop = SimLoop()
        queue = SimQueue(loop, maxsize=2)
        queue.put_nowait("a")
        queue.put_nowait("b")
        with pytest.raises(SimQueueFull):
            queue.put_nowait("c")

    def test_get_wakes_in_fifo_order(self):
        loop = SimLoop()
        queue = SimQueue(loop, maxsize=4)
        got = []

        async def consumer(tag):
            got.append((tag, await queue.get()))

        async def main():
            tasks = [loop.create_task(consumer(i)) for i in range(3)]
            await loop.sleep(1.0)
            for item in "xyz":
                queue.put_nowait(item)
            for task in tasks:
                await task

        loop.run_until_complete(main())
        assert got == [(0, "x"), (1, "y"), (2, "z")]

    def test_cancelled_getter_does_not_swallow_items(self):
        loop = SimLoop()
        queue = SimQueue(loop, maxsize=4)
        got = []

        async def doomed():
            await queue.get()

        async def patient():
            got.append(await queue.get())

        async def main():
            doomed_task = loop.create_task(doomed())
            patient_task = loop.create_task(patient())
            await loop.sleep(1.0)
            doomed_task.cancel()
            await loop.sleep(1.0)
            queue.put_nowait("survivor")
            await patient_task
            assert doomed_task.done()

        loop.run_until_complete(main())
        assert got == ["survivor"]
