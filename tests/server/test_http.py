"""Tests for the live /metrics HTTP endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricRegistry
from repro.server import MetricsServer


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode()


class TestMetricsServer:
    def test_scrape_round_trip(self):
        registry = MetricRegistry()
        registry.counter("repro_server_sessions_total",
                         "sessions by outcome").inc(3, outcome="accepted")
        registry.gauge("repro_server_sessions_in_flight",
                       "live sessions").set(2.0)
        with MetricsServer(registry) as server:
            status, body = fetch(server.url)
            assert status == 200
            assert "repro_server_sessions_total" in body
            assert 'outcome="accepted"' in body
            assert "repro_server_sessions_in_flight 2" in body

    def test_scrape_sees_live_updates(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_server_sheds_total", "sheds")
        with MetricsServer(registry) as server:
            counter.inc(1)
            _, before = fetch(server.url)
            counter.inc(41)
            _, after = fetch(server.url)
            assert "repro_server_sheds_total 1" in before
            assert "repro_server_sheds_total 42" in after

    def test_healthz_and_404(self):
        with MetricsServer(MetricRegistry()) as server:
            base = f"http://{server.host}:{server.port}"
            status, body = fetch(base + "/healthz")
            assert status == 200 and body == "ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(base + "/nope")
            assert excinfo.value.code == 404

    def test_port_requires_start(self):
        server = MetricsServer(MetricRegistry())
        with pytest.raises(RuntimeError):
            server.port
        server.stop()  # no-op when never started
