"""Shared fixtures: one small enrolled fleet per test session."""

import pytest

from repro.server import EnrollmentSpec, EnrollmentStore, enroll_fleet

FLEET_TAGS = 200
FLEET_SHARD = 64
FLEET_SEED = 5


@pytest.fixture(scope="session")
def fleet_spec():
    return EnrollmentSpec(tags=FLEET_TAGS, shard_size=FLEET_SHARD,
                          seed=FLEET_SEED)


@pytest.fixture(scope="session")
def fleet_dir(tmp_path_factory, fleet_spec):
    directory = tmp_path_factory.mktemp("fleet")
    report = enroll_fleet(directory, fleet_spec, workers=1)
    assert report.complete
    return directory


@pytest.fixture(scope="session")
def fleet_store(fleet_dir):
    return EnrollmentStore(fleet_dir)
