"""Tests for the supervised soak: determinism is the headline.

The ISSUE's acceptance criterion: ``summary.json`` is byte-identical
across worker counts and across chaos (a worker killed mid-session is
retried and the retry reproduces the cohort exactly).
"""

import json

import pytest

from repro.campaign.chaos import ChaosConfig
from repro.obs.alerts import ALERTS_NAME
from repro.obs.stream import TELEMETRY_NAME
from repro.server import ServerError, SoakSpec, run_soak
from repro.server.soak import SUMMARY_NAME, simulate_cohort


@pytest.fixture(scope="module")
def soak_spec(fleet_store):
    return SoakSpec(
        enrollment_digest=fleet_store.spec.digest(),
        store_dir=fleet_store.directory,
        sessions=40,
        cohorts=2,
        frame_loss=0.15,
        seed=11,
    )


class TestSpec:
    def test_digest_ignores_store_dir(self, soak_spec):
        import dataclasses
        moved = dataclasses.replace(soak_spec,
                                    store_dir="/somewhere/else")
        assert moved.digest() == soak_spec.digest()
        assert "store_dir" not in soak_spec.identity_dict()

    def test_round_trip(self, soak_spec):
        assert SoakSpec.from_dict(soak_spec.to_dict()) == soak_spec

    def test_validation(self, fleet_store):
        with pytest.raises(ValueError):
            SoakSpec(enrollment_digest="x", store_dir=".", sessions=0)
        with pytest.raises(ValueError):
            SoakSpec(enrollment_digest="x", store_dir=".",
                     arrival_rate=0)


class TestSimulateCohort:
    def test_deterministic(self, soak_spec):
        a = simulate_cohort(soak_spec, 0)
        b = simulate_cohort(soak_spec, 0)
        assert a == b

    def test_cohorts_are_disjoint(self, soak_spec):
        a = simulate_cohort(soak_spec, 0)
        b = simulate_cohort(soak_spec, 1)
        assert a["first_index"] == 0
        assert b["first_index"] == soak_spec.sessions
        assert a["outcomes"] != {} and b["outcomes"] != {}

    def test_refuses_wrong_fleet(self, soak_spec):
        import dataclasses
        wrong = dataclasses.replace(soak_spec,
                                    enrollment_digest="0" * 64)
        with pytest.raises(ServerError, match="holds fleet"):
            simulate_cohort(wrong, 0)


class TestByteIdenticalSummaries:
    def test_across_worker_counts_and_chaos(self, tmp_path, soak_spec):
        dir_1 = tmp_path / "w1"
        dir_4 = tmp_path / "w4"
        dir_chaos = tmp_path / "chaos"
        run_soak(dir_1, soak_spec, workers=1)
        run_soak(dir_4, soak_spec, workers=4)
        # crash=0.4: workers die mid-session (os._exit with sessions
        # in flight); the supervisor retries and the retry must
        # reproduce the cohort exactly.
        chaos_report = run_soak(dir_chaos, soak_spec, workers=2,
                                chaos=ChaosConfig.parse("crash=0.4",
                                                        seed=1))
        assert chaos_report.outcome == "clean"
        for name in (SUMMARY_NAME, TELEMETRY_NAME, ALERTS_NAME):
            baseline = (dir_1 / name).read_bytes()
            assert (dir_4 / name).read_bytes() == baseline
            assert (dir_chaos / name).read_bytes() == baseline

    def test_clean_soak_raises_no_alerts(self, tmp_path, soak_spec):
        """An honest fleet under ordinary loss must not trip the
        default rulebook — zero false positives is the baseline the
        detection claims stand on."""
        report = run_soak(tmp_path / "quiet", soak_spec, workers=1)
        assert report.alert_firings == 0
        summary = json.loads(
            (tmp_path / "quiet" / SUMMARY_NAME).read_text())
        block = summary["telemetry"]
        assert block["alerts"] == {"firings": 0, "by_rule": {}}
        assert block["events"] > 0
        assert set(block["session_uj"]) == \
            {"count", "p50", "p95", "p99", "max"}
        assert block["session_uj"]["count"] == report.sessions
        telemetry = json.loads(
            (tmp_path / "quiet" / TELEMETRY_NAME).read_text())
        assert telemetry["series"]["session_uj"]["count"] == \
            report.sessions

    def test_summary_shape(self, tmp_path, soak_spec):
        report = run_soak(tmp_path / "s", soak_spec, workers=1)
        assert report.outcome == "clean"
        assert report.sessions == soak_spec.sessions * soak_spec.cohorts
        assert report.accepted == report.correct == report.sessions
        summary = json.loads((tmp_path / "s" / SUMMARY_NAME).read_text())
        assert summary["spec_digest"] == soak_spec.digest()
        assert summary["totals"]["sessions"] == report.sessions
        assert len(summary["cohorts"]) == soak_spec.cohorts
        families = set(summary["metrics"]["metrics"])
        assert "repro_server_sessions_total" in families
        assert "repro_server_energy_uj_total" in families
        # Wall-clock families never reach a summary.
        assert not any(name.endswith("_seconds") for name in families)

    def test_energy_totals_match_metrics_exactly(self, tmp_path,
                                                 soak_spec):
        """The summary's µJ totals and the merged metric counter are
        the same numbers — the energy model is the single source."""
        run_soak(tmp_path / "e", soak_spec, workers=1)
        summary = json.loads((tmp_path / "e" / SUMMARY_NAME).read_text())
        counter = summary["metrics"]["metrics"][
            "repro_server_energy_uj_total"]["values"]
        by_role = {tuple(v["labels"].items())[0][1]: v["value"]
                   for v in counter}
        totals = summary["totals"]
        assert totals["tag_energy_uj"] == \
            pytest.approx(by_role["tag"], rel=1e-9)
        assert totals["reader_energy_uj"] == \
            pytest.approx(by_role["reader"], rel=1e-9)


class TestChaosQuarantine:
    def test_always_crashing_cohort_degrades_not_hangs(self, tmp_path,
                                                       soak_spec):
        """ISSUE satellite: a worker killed mid-session leaves no
        stuck session — the supervisor retries, quarantines, and the
        soak returns degraded instead of hanging."""
        import dataclasses
        spec = dataclasses.replace(soak_spec, cohorts=1, sessions=10)
        report = run_soak(tmp_path / "q", spec, workers=2,
                          chaos=ChaosConfig.parse("crash=1.0", seed=0))
        assert report.outcome == "degraded"
        assert report.quarantined == [0]
        assert report.cohorts_completed == 0
        summary = json.loads((tmp_path / "q" / SUMMARY_NAME).read_text())
        assert summary["outcome"] == "degraded"
        assert summary["quarantined"] == [0]

    def test_wrong_fleet_fails_fast(self, tmp_path, soak_spec):
        import dataclasses
        wrong = dataclasses.replace(soak_spec,
                                    enrollment_digest="f" * 64)
        with pytest.raises(ServerError, match="holds fleet"):
            run_soak(tmp_path / "w", wrong, workers=1)
