"""Tests for sharded fleet enrollment and the read-back store."""

import json
import os

import pytest

from repro.campaign.chaos import ChaosConfig
from repro.ec.curves import TOY_B17
from repro.server import (
    EnrollmentError,
    EnrollmentSpec,
    EnrollmentStore,
    ShardedTagDatabase,
    enroll_fleet,
)
from repro.server.enrollment import MANIFEST_NAME, enroll_shard


class TestSpec:
    def test_digest_round_trip(self):
        spec = EnrollmentSpec(tags=500, shard_size=128, seed=9)
        again = EnrollmentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_digest_varies(self):
        a = EnrollmentSpec(tags=500, seed=9)
        assert a.digest() != EnrollmentSpec(tags=501, seed=9).digest()
        assert a.digest() != EnrollmentSpec(tags=500, seed=10).digest()

    def test_layout(self):
        spec = EnrollmentSpec(tags=200, shard_size=64)
        assert spec.num_shards == 4
        assert [spec.shard_count(i) for i in range(4)] == [64, 64, 64, 8]

    def test_secrets_consecutive_and_nonzero(self):
        spec = EnrollmentSpec(tags=200, seed=5)
        nonzero = TOY_B17.order - 1
        for i in range(5):
            secret = spec.secret_for(i)
            assert 1 <= secret <= nonzero
        assert spec.secret_for(1) == \
            1 + (spec.secret_for(0) - 1 + 1) % nonzero

    def test_canonical_identity_wraps_at_group_order(self):
        spec = EnrollmentSpec(tags=200)
        nonzero = TOY_B17.order - 1
        assert spec.canonical_identity(5) == 5
        assert spec.canonical_identity(nonzero + 5) == 5

    def test_validation(self):
        with pytest.raises(EnrollmentError):
            EnrollmentSpec(tags=0)
        with pytest.raises(EnrollmentError):
            EnrollmentSpec(tags=10, shard_size=0)
        with pytest.raises(EnrollmentError):
            EnrollmentSpec(tags=10, schema_version=99)


class TestEnrollFleet:
    def test_points_match_secrets(self, fleet_store, fleet_spec):
        domain = fleet_spec.domain()
        for identity in (0, 1, 63, 64, 199):
            expected = domain.curve.multiply_naive(
                fleet_spec.secret_for(identity), domain.generator)
            assert fleet_store.point(identity) == expected

    def test_reenroll_reuses_every_shard(self, fleet_dir, fleet_spec):
        report = enroll_fleet(fleet_dir, fleet_spec, workers=1)
        assert report.complete
        assert report.shards_built == 0
        assert report.shards_reused == fleet_spec.num_shards

    def test_refuses_directory_of_other_fleet(self, fleet_dir):
        other = EnrollmentSpec(tags=200, shard_size=64, seed=6)
        with pytest.raises(EnrollmentError, match="different fleet"):
            enroll_fleet(fleet_dir, other, workers=1)

    def test_rebuilds_tampered_shard(self, tmp_path, fleet_spec):
        spec = EnrollmentSpec(tags=100, shard_size=32, seed=5)
        enroll_fleet(tmp_path, spec, workers=1)
        victim = tmp_path / spec.shard_filename(1)
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        report = enroll_fleet(tmp_path, spec, workers=1)
        assert report.complete
        assert report.shards_built == 1
        assert report.shards_reused == spec.num_shards - 1
        EnrollmentStore(tmp_path).verify()

    def test_shards_are_deterministic(self, tmp_path, fleet_spec,
                                      fleet_dir):
        other_dir = tmp_path / "again"
        enroll_fleet(other_dir, fleet_spec, workers=1)
        for index in range(fleet_spec.num_shards):
            name = fleet_spec.shard_filename(index)
            assert (other_dir / name).read_bytes() == \
                (fleet_dir / name).read_bytes()

    def test_chaos_corrupt_is_caught_and_retried(self, tmp_path):
        spec = EnrollmentSpec(tags=60, shard_size=20, seed=5)
        chaos = ChaosConfig.parse("corrupt=0.4", seed=1)
        report = enroll_fleet(tmp_path, spec, workers=2, chaos=chaos)
        assert report.complete
        assert report.retried_attempts > 0
        store = EnrollmentStore(tmp_path)
        store.verify()
        assert len(store) == 60

    def test_shard_index_bounds(self, tmp_path, fleet_spec):
        with pytest.raises(EnrollmentError):
            enroll_shard(fleet_spec.to_dict(), str(tmp_path),
                         fleet_spec.num_shards, 0, None)


class TestEnrollmentStore:
    def test_requires_manifest(self, tmp_path):
        with pytest.raises(EnrollmentError, match="manifest"):
            EnrollmentStore(tmp_path)

    def test_verify_detects_tampering(self, tmp_path):
        spec = EnrollmentSpec(tags=40, shard_size=20, seed=5)
        enroll_fleet(tmp_path, spec, workers=1)
        victim = tmp_path / spec.shard_filename(0)
        raw = bytearray(victim.read_bytes())
        raw[3] ^= 0x01
        victim.write_bytes(bytes(raw))
        with pytest.raises(EnrollmentError, match="digest mismatch"):
            EnrollmentStore(tmp_path)
        # verify=False defers; an explicit verify() still catches it.
        store = EnrollmentStore(tmp_path, verify=False)
        with pytest.raises(EnrollmentError, match="digest mismatch"):
            store.verify()

    def test_detects_missing_shard(self, tmp_path):
        spec = EnrollmentSpec(tags=40, shard_size=20, seed=5)
        enroll_fleet(tmp_path, spec, workers=1)
        os.unlink(tmp_path / spec.shard_filename(1))
        with pytest.raises(EnrollmentError, match="missing"):
            EnrollmentStore(tmp_path)

    def test_detects_noncontiguous_manifest(self, tmp_path):
        spec = EnrollmentSpec(tags=40, shard_size=20, seed=5)
        enroll_fleet(tmp_path, spec, workers=1)
        path = tmp_path / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["shards"][0]
        path.write_text(json.dumps(manifest))
        with pytest.raises(EnrollmentError, match="contiguous"):
            EnrollmentStore(tmp_path, verify=False)

    def test_record_bounds(self, fleet_store):
        with pytest.raises(EnrollmentError):
            fleet_store.record(-1)
        with pytest.raises(EnrollmentError):
            fleet_store.record(len(fleet_store))

    def test_iter_shards_covers_fleet(self, fleet_store, fleet_spec):
        total = 0
        for first, data in fleet_store.iter_shards():
            assert first == total
            total += len(data) // fleet_store.record_width
        assert total == fleet_spec.tags


class TestShardedTagDatabase:
    def test_lookup_returns_canonical_identity(self, fleet_store,
                                               fleet_spec):
        db = ShardedTagDatabase(fleet_store)
        assert len(db) == fleet_spec.tags
        for identity in (0, 77, 199):
            assert db.lookup(fleet_store.point(identity)) == \
                fleet_spec.canonical_identity(identity)

    def test_lookup_miss(self, fleet_store, fleet_spec):
        db = ShardedTagDatabase(fleet_store)
        domain = fleet_spec.domain()
        # A point no enrolled secret maps to: secrets are consecutive
        # from the base, so fleet_spec.tags steps past the last one.
        secret = 1 + (fleet_spec.base_secret() - 1 + fleet_spec.tags) \
            % (domain.order - 1)
        stranger = domain.curve.multiply_naive(secret, domain.generator)
        assert db.lookup(stranger) is None

    def test_infinity_never_matches(self, fleet_store):
        from repro.ec.point import AffinePoint
        db = ShardedTagDatabase(fleet_store)
        assert db.lookup(AffinePoint.infinity()) is None

    def test_enroll_refused(self, fleet_store):
        db = ShardedTagDatabase(fleet_store)
        with pytest.raises(EnrollmentError, match="immutable"):
            db.enroll(0, fleet_store.point(0))

    def test_drives_the_sync_reader(self, fleet_store, fleet_spec):
        """The TagDatabase seam end-to-end: the protocol-layer reader
        identifies a fleet tag against the sharded store unchanged."""
        import random

        from repro.protocols.peeters_hermans import (
            PeetersHermansReader,
            PeetersHermansTag,
        )

        domain = fleet_spec.domain()
        db = ShardedTagDatabase(fleet_store)
        reader = PeetersHermansReader(
            domain, fleet_spec.reader_secret(), database=db)
        identity = 150
        tag = PeetersHermansTag(domain, fleet_spec.secret_for(identity),
                                reader.public)
        rng = random.Random(42)
        commitment = tag.commit(rng)
        challenge = reader.challenge(rng)
        response = tag.respond(challenge, rng)
        found = reader.identify(commitment, challenge, response)
        assert found == fleet_spec.canonical_identity(identity)
