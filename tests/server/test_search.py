"""Tests for the O(N) scan and the per-epoch search cache."""

import pytest

from repro.server import EpochSearchCache, epoch_nonce, scan_lookup
from repro.server.search import NONCE_WIDTH


class TestEpochNonce:
    def test_deterministic(self):
        assert epoch_nonce(7, 3) == epoch_nonce(7, 3)
        assert len(epoch_nonce(7, 3)) == NONCE_WIDTH

    def test_varies_by_seed_and_epoch(self):
        assert epoch_nonce(7, 3) != epoch_nonce(7, 4)
        assert epoch_nonce(7, 3) != epoch_nonce(8, 3)


class TestScanLookup:
    def test_finds_every_enrolled_record(self, fleet_store, fleet_spec):
        for identity in (0, 1, 63, 64, 137, fleet_spec.tags - 1):
            needle = fleet_store.record(identity)
            found, scanned = scan_lookup(fleet_store, needle)
            assert found == fleet_spec.canonical_identity(identity)
            assert scanned >= 1

    def test_miss_scans_the_whole_fleet(self, fleet_store, fleet_spec):
        width = fleet_store.record_width
        needle = b"\xff" * width
        found, scanned = scan_lookup(fleet_store, needle)
        assert found is None
        assert scanned == fleet_spec.tags


class TestEpochSearchCache:
    def test_agrees_with_scan_everywhere(self, fleet_store, fleet_spec):
        cache = EpochSearchCache(fleet_store, epoch_nonce(0, 0))
        for identity in range(fleet_spec.tags):
            needle = fleet_store.record(identity)
            assert cache.lookup(needle) == \
                scan_lookup(fleet_store, needle)[0]

    def test_build_is_idempotent(self, fleet_store, fleet_spec):
        cache = EpochSearchCache(fleet_store, epoch_nonce(0, 0))
        assert cache.build() == fleet_spec.tags
        assert cache.build() == fleet_spec.tags
        assert cache.records == fleet_spec.tags

    def test_miss_returns_none(self, fleet_store):
        cache = EpochSearchCache(fleet_store, epoch_nonce(0, 0))
        assert cache.lookup(b"\xff" * fleet_store.record_width) is None

    def test_nonce_width_enforced(self, fleet_store):
        with pytest.raises(ValueError):
            EpochSearchCache(fleet_store, b"short")

    def test_tables_differ_across_epochs(self, fleet_store):
        a = EpochSearchCache(fleet_store, epoch_nonce(0, 0))
        b = EpochSearchCache(fleet_store, epoch_nonce(0, 1))
        a.build()
        b.build()
        # Same identities, disjoint key material: an epoch-0 table
        # entry is useless for epoch 1.
        assert set(a._table.values()) == set(b._table.values())
        assert not set(a._table) & set(b._table)
