"""Tests for the batched point-multiplication scheduler."""

import pytest

from repro.ec.curves import TOY_B17
from repro.obs.metrics import MetricRegistry
from repro.server import NaiveScalarEngine, ScalarMultScheduler, SimLoop
from repro.server.scheduler import ScalarMultEngine


def make(window_s=1e-4, max_batch=256, registry=None, engine=None):
    loop = SimLoop()
    scheduler = ScalarMultScheduler(
        loop, engine or NaiveScalarEngine(TOY_B17.curve),
        window_s=window_s, max_batch=max_batch, registry=registry)
    return loop, scheduler


class CountingEngine(ScalarMultEngine):
    """Records each batch it executes."""

    name = "counting"

    def __init__(self):
        self.curve = TOY_B17.curve
        self.batches = []

    def execute(self, requests):
        self.batches.append(len(requests))
        return [self.curve.multiply_naive(k, p) for k, p in requests]


class BrokenEngine(ScalarMultEngine):
    name = "broken"

    def execute(self, requests):
        return []


class TestCoalescing:
    def test_results_correct_and_in_order(self):
        loop, scheduler = make()
        P = TOY_B17.generator
        scalars = [3, 7, 11, 2, 5]

        async def drive():
            futures = [scheduler.multiply(k, P) for k in scalars]
            return [await f for f in futures]

        results = loop.run_until_complete(drive())
        expected = [TOY_B17.curve.multiply_naive(k, P) for k in scalars]
        assert results == expected

    def test_burst_coalesces_into_one_batch(self):
        engine = CountingEngine()
        loop, scheduler = make(engine=engine)
        P = TOY_B17.generator

        async def drive():
            futures = [scheduler.multiply(i + 1, P) for i in range(8)]
            for f in futures:
                await f

        loop.run_until_complete(drive())
        assert engine.batches == [8]
        assert scheduler.requests_total == 8
        assert scheduler.batches_total == 1

    def test_requests_across_windows_split_batches(self):
        engine = CountingEngine()
        loop, scheduler = make(window_s=1e-3, engine=engine)
        P = TOY_B17.generator

        async def drive():
            first = scheduler.multiply(3, P)
            await first
            second = scheduler.multiply(5, P)
            await second

        loop.run_until_complete(drive())
        assert engine.batches == [1, 1]

    def test_max_batch_overflow_rearms(self):
        engine = CountingEngine()
        loop, scheduler = make(max_batch=3, engine=engine)
        P = TOY_B17.generator

        async def drive():
            futures = [scheduler.multiply(i + 1, P) for i in range(7)]
            for f in futures:
                await f

        loop.run_until_complete(drive())
        assert engine.batches == [3, 3, 1]
        assert scheduler.batches_total == 3

    def test_zero_window_still_batches_same_instant(self):
        engine = CountingEngine()
        loop, scheduler = make(window_s=0.0, engine=engine)
        P = TOY_B17.generator

        async def drive():
            futures = [scheduler.multiply(i + 1, P) for i in range(4)]
            for f in futures:
                await f

        loop.run_until_complete(drive())
        assert engine.batches == [4]


class TestMetricsAndErrors:
    def test_registry_families(self):
        registry = MetricRegistry()
        loop, scheduler = make(registry=registry)
        P = TOY_B17.generator

        async def drive():
            futures = [scheduler.multiply(i + 1, P) for i in range(5)]
            for f in futures:
                await f

        loop.run_until_complete(drive())
        families = set(registry.snapshot()["metrics"])
        assert "repro_server_scalarmult_requests_total" in families
        assert "repro_server_scalarmult_batches_total" in families
        assert "repro_server_scalarmult_batch_size" in families

    def test_engine_length_mismatch_is_fatal(self):
        loop, scheduler = make(engine=BrokenEngine())
        P = TOY_B17.generator

        async def drive():
            await scheduler.multiply(3, P)

        with pytest.raises(RuntimeError, match="broken"):
            loop.run_until_complete(drive())

    def test_constructor_validation(self):
        loop = SimLoop()
        engine = NaiveScalarEngine(TOY_B17.curve)
        with pytest.raises(ValueError):
            ScalarMultScheduler(loop, engine, window_s=-1.0)
        with pytest.raises(ValueError):
            ScalarMultScheduler(loop, engine, max_batch=0)
