"""Server-side graceful degradation: throttling, replay quarantine,
and the adversarial / budget_exhausted outcome buckets."""

import dataclasses
import json

import pytest

from repro.server import (
    SESSION_OUTCOMES,
    SoakSpec,
    run_soak,
)
from repro.server.soak import SUMMARY_NAME, simulate_cohort


@pytest.fixture(scope="module")
def adversarial_spec(fleet_store):
    return SoakSpec(
        enrollment_digest=fleet_store.spec.digest(),
        store_dir=fleet_store.directory,
        sessions=40,
        cohorts=2,
        frame_loss=0.1,
        seed=3,
        session_deadline_s=1.0,
        adversarial_fraction=0.3,
        throttle_limit=2,
        replay_quarantine=True,
        tag_budget_uj=80.0,
    )


class TestSpec:
    def test_round_trip(self, adversarial_spec):
        assert SoakSpec.from_dict(adversarial_spec.to_dict()) == \
            adversarial_spec

    def test_old_dicts_still_load(self, adversarial_spec):
        """Dicts from before the adversary lab (no defense fields)
        still deserialize with the defenses off."""
        d = adversarial_spec.to_dict()
        for name in ("adversarial_fraction", "throttle_limit",
                     "replay_quarantine", "tag_budget_uj"):
            d.pop(name)
        spec = SoakSpec.from_dict(d)
        assert spec.adversarial_fraction == 0.0
        assert spec.throttle_limit == 0
        assert not spec.replay_quarantine

    def test_validation(self, adversarial_spec):
        with pytest.raises(ValueError):
            dataclasses.replace(adversarial_spec,
                                adversarial_fraction=1.5)
        with pytest.raises(ValueError):
            dataclasses.replace(adversarial_spec, throttle_limit=-1)
        with pytest.raises(ValueError):
            dataclasses.replace(adversarial_spec, tag_budget_uj=-1.0)

    def test_adversarial_draws_are_seeded(self, adversarial_spec):
        total = adversarial_spec.sessions * adversarial_spec.cohorts
        flags = [adversarial_spec.is_adversarial(i)
                 for i in range(total)]
        assert flags == [adversarial_spec.is_adversarial(i)
                         for i in range(total)]
        assert any(flags) and not all(flags)

    def test_adversarial_sources_pool(self, adversarial_spec):
        sources = {adversarial_spec.source_for(i)
                   for i in range(80) if adversarial_spec.is_adversarial(i)}
        assert sources <= {"adv-0", "adv-1", "adv-2", "adv-3"}
        honest = {adversarial_spec.source_for(i)
                  for i in range(80)
                  if not adversarial_spec.is_adversarial(i)}
        assert all(s.startswith("tag-") for s in honest)


class TestOutcomeBuckets:
    def test_no_outcome_falls_through(self, adversarial_spec):
        """Every session lands in a named SESSION_OUTCOMES bucket —
        adversarial and budget_exhausted included, nothing generic."""
        payload = simulate_cohort(adversarial_spec, 0)
        assert set(payload["outcomes"]) == set(SESSION_OUTCOMES)
        assert sum(payload["outcomes"].values()) + payload["shed"] == \
            payload["sessions"]
        assert payload["outcomes"]["adversarial"] > 0

    def test_adversarial_sessions_never_identify(self, adversarial_spec):
        payload = simulate_cohort(adversarial_spec, 0)
        assert payload["outcomes"]["accepted"] + \
            payload["outcomes"]["rejected"] <= \
            payload["sessions"] - payload["outcomes"]["adversarial"]

    def test_shed_reasons_are_itemized(self, adversarial_spec):
        payload = simulate_cohort(adversarial_spec, 0)
        reasons = payload["shed_reasons"]
        assert set(reasons) <= {"overload", "throttled", "quarantined"}
        assert sum(reasons.values()) == payload["shed"]


class TestDefenses:
    def test_throttle_caps_concurrent_adversarial_sessions(
            self, adversarial_spec):
        # Quarantine off, or it blocks the flood sources before the
        # throttle ever sees a concurrent burst.
        spec = dataclasses.replace(adversarial_spec,
                                   replay_quarantine=False)
        throttled = simulate_cohort(spec, 0)
        open_spec = dataclasses.replace(spec, throttle_limit=0)
        unthrottled = simulate_cohort(open_spec, 0)
        assert throttled["shed_reasons"].get("throttled", 0) > 0
        assert unthrottled["shed_reasons"].get("throttled", 0) == 0

    def test_replay_quarantine_blocks_the_source(self, adversarial_spec):
        payload = simulate_cohort(adversarial_spec, 0)
        assert payload["quarantined_sources"]
        assert all(s.startswith("adv-")
                   for s in payload["quarantined_sources"])
        assert payload["shed_reasons"].get("quarantined", 0) > 0
        off = dataclasses.replace(adversarial_spec,
                                  replay_quarantine=False)
        assert simulate_cohort(off, 0)["quarantined_sources"] == []

    def test_budget_bucket_appears(self, fleet_store):
        spec = SoakSpec(
            enrollment_digest=fleet_store.spec.digest(),
            store_dir=fleet_store.directory,
            sessions=20,
            cohorts=1,
            frame_loss=0.4,
            seed=3,
            tag_budget_uj=40.0,
        )
        payload = simulate_cohort(spec, 0)
        assert payload["outcomes"]["budget_exhausted"] > 0


class TestSoakSummary:
    def test_byte_identical_and_bucketed(self, tmp_path,
                                         adversarial_spec):
        report_1 = run_soak(tmp_path / "w1", adversarial_spec,
                            workers=1)
        run_soak(tmp_path / "w4", adversarial_spec, workers=4)
        assert (tmp_path / "w1" / SUMMARY_NAME).read_bytes() == \
            (tmp_path / "w4" / SUMMARY_NAME).read_bytes()
        assert report_1.adversarial > 0
        assert "adversarial" in report_1.text()
        summary = json.loads((tmp_path / "w1" / SUMMARY_NAME).read_text())
        totals = summary["totals"]
        assert totals["adversarial"] == report_1.adversarial
        assert totals["sessions"] == \
            adversarial_spec.sessions * adversarial_spec.cohorts
        families = summary["metrics"]["metrics"]
        assert "repro_server_quarantines_total" in families
        assert "repro_server_throttles_total" in families
