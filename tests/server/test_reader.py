"""Tests for the concurrent identification server.

Covers the overload contract of the ISSUE: a full admission queue is
a *typed, synchronous* reject (never a hang), the per-session deadline
fires under loss, and the ``/metrics`` energy totals match the energy
model exactly.
"""

import pytest

from repro.channel import LossProfile
from repro.obs.metrics import MetricRegistry
from repro.server import (
    AdmissionRejectedError,
    IdentificationServer,
    ServerConfig,
    ServerError,
    SimLoop,
)


def make_server(store, registry=None, **config_kwargs):
    loop = SimLoop()
    profile = config_kwargs.pop("profile", None)
    config = ServerConfig(**config_kwargs)
    server = IdentificationServer(
        loop, store, config, seed=7,
        profile=profile if profile is not None else LossProfile(),
        registry=registry)
    return loop, server


def serve(loop, server, indices):
    """Submit ``indices`` at one instant, await all outcomes."""

    async def drive():
        server.start()
        futures = [server.submit(i) for i in indices]
        outcomes = [await f for f in futures]
        await server.close()
        return outcomes

    return loop.run_until_complete(drive())


class TestLossless:
    def test_sessions_identify_correctly(self, fleet_store):
        loop, server = make_server(fleet_store)
        outcomes = serve(loop, server, range(8))
        assert [o.outcome for o in outcomes] == ["accepted"] * 8
        for o in outcomes:
            assert o.identified_correctly
            assert o.epochs_used == 1
            assert o.frames_sent == 3
            assert o.retransmissions == 0
            assert o.detail == f"identified tag {o.identity}"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(capacity=0)
        with pytest.raises(ValueError):
            ServerConfig(admission_queue=0)
        with pytest.raises(ValueError):
            ServerConfig(session_deadline_s=0)
        with pytest.raises(ValueError):
            ServerConfig(search_mode="telepathy")

    def test_submit_before_start_is_typed(self, fleet_store):
        loop, server = make_server(fleet_store)
        with pytest.raises(ServerError, match="not started"):
            server.submit(0)

    def test_cached_and_uncached_agree(self, fleet_store):
        loop_a, cached = make_server(fleet_store, search_mode="cached")
        loop_b, uncached = make_server(fleet_store,
                                       search_mode="uncached")
        a = serve(loop_a, cached, range(6))
        b = serve(loop_b, uncached, range(6))
        assert [(o.outcome, o.identity) for o in a] == \
            [(o.outcome, o.identity) for o in b]
        # The uncached path pays the O(N) wall per session.
        assert all(o.records_scanned >= 1 for o in b)
        assert all(o.records_scanned == 0 for o in a)


class TestOverload:
    def test_queue_full_is_synchronous_typed_reject(self, fleet_store):
        """ISSUE satellite: a full admission queue raises *now* — the
        submitting client is never left hanging on a future."""
        loop, server = make_server(fleet_store, capacity=2,
                                   admission_queue=4)

        async def drive():
            server.start()
            futures = []
            # No awaits between submits: the acceptor cannot drain,
            # so the queue genuinely fills.
            for i in range(4):
                futures.append(server.submit(i))
            with pytest.raises(AdmissionRejectedError) as excinfo:
                server.submit(99)
            assert excinfo.value.session_index == 99
            assert "admission queue full" in str(excinfo.value)
            outcomes = [await f for f in futures]
            await server.close()
            return outcomes

        outcomes = loop.run_until_complete(drive())
        assert server.shed == 1
        assert server.admitted == 4
        # Admitted sessions still ran to completion behind the shed.
        assert [o.outcome for o in outcomes] == ["accepted"] * 4

    def test_shed_is_counted_in_metrics(self, fleet_store):
        registry = MetricRegistry()
        loop, server = make_server(fleet_store, registry=registry,
                                   admission_queue=2)

        async def drive():
            server.start()
            futures = [server.submit(i) for i in range(2)]
            for i in range(3):
                with pytest.raises(AdmissionRejectedError):
                    server.submit(10 + i)
            for f in futures:
                await f
            await server.close()

        loop.run_until_complete(drive())
        metrics = registry.snapshot()["metrics"]
        sheds = metrics["repro_server_sheds_total"]["values"]
        assert sheds[0]["value"] == 3

    def test_capacity_bounds_concurrency(self, fleet_store):
        loop, server = make_server(fleet_store, capacity=3,
                                   admission_queue=64)
        outcomes = serve(loop, server, range(12))
        assert len(outcomes) == 12
        assert server.peak_in_flight <= 3


class TestDeadline:
    def test_deadline_fires_under_loss(self, fleet_store):
        """ISSUE satellite: under 20% loss a tight per-session deadline
        fires and the session resolves as ``deadline`` — never a hang
        (run_until_complete returning *is* the no-hang proof)."""
        registry = MetricRegistry()
        loop, server = make_server(
            fleet_store, registry=registry,
            profile=LossProfile(frame_loss=0.2),
            session_deadline_s=0.05)
        outcomes = serve(loop, server, range(40))
        by_outcome = {}
        for o in outcomes:
            by_outcome[o.outcome] = by_outcome.get(o.outcome, 0) + 1
        assert by_outcome.get("deadline", 0) >= 1
        assert by_outcome.get("accepted", 0) >= 1
        deadline_outcomes = [o for o in outcomes
                             if o.outcome == "deadline"]
        for o in deadline_outcomes:
            assert o.identity is None
            assert o.detail == "session deadline expired"
            # The deadline charges the energy actually spent so far.
            assert o.tag_energy_uj > 0
        metrics = registry.snapshot()["metrics"]
        values = metrics["repro_server_sessions_total"]["values"]
        counted = {tuple(v["labels"].items())[0][1]: v["value"]
                   for v in values}
        assert counted == {k: float(v) for k, v in by_outcome.items()}

    def test_generous_deadline_never_fires_lossless(self, fleet_store):
        loop, server = make_server(fleet_store, session_deadline_s=10.0)
        outcomes = serve(loop, server, range(5))
        assert all(o.outcome == "accepted" for o in outcomes)


class TestEnergyExactness:
    def test_metrics_energy_matches_outcomes_exactly(self, fleet_store):
        """The /metrics µJ counter is the same float sum as the
        outcomes' energies — no estimation, no drift."""
        registry = MetricRegistry()
        loop, server = make_server(
            fleet_store, registry=registry,
            profile=LossProfile(frame_loss=0.15))
        outcomes = serve(loop, server, range(30))
        metrics = registry.snapshot()["metrics"]
        values = metrics["repro_server_energy_uj_total"]["values"]
        by_role = {tuple(v["labels"].items())[0][1]: v["value"]
                   for v in values}
        tag_sum = reader_sum = 0.0
        for o in outcomes:
            tag_sum += o.tag_energy_uj
            reader_sum += o.reader_energy_uj
        # Counter increments happen in completion order, the sums here
        # in submission order — identical up to float associativity.
        assert by_role["tag"] == pytest.approx(tag_sum, rel=1e-12)
        assert by_role["reader"] == pytest.approx(reader_sum, rel=1e-12)

    def test_single_session_counter_is_bit_exact(self, fleet_store):
        registry = MetricRegistry()
        loop, server = make_server(fleet_store, registry=registry)
        outcome = serve(loop, server, [5])[0]
        metrics = registry.snapshot()["metrics"]
        values = metrics["repro_server_energy_uj_total"]["values"]
        by_role = {tuple(v["labels"].items())[0][1]: v["value"]
                   for v in values}
        assert by_role["tag"] == outcome.tag_energy_uj
        assert by_role["reader"] == outcome.reader_energy_uj

    def test_lossless_energy_matches_session_layer(self, fleet_store):
        """A lossless server session spends exactly what the
        protocol-layer resilient session spends: same frames, same
        point multiplications, same model — the server adds batching,
        not energy."""
        from repro.ec.curves import TOY_B17
        from repro.protocols.session import (
            make_adapter,
            run_resilient_session,
        )

        loop, server = make_server(fleet_store)
        outcome = serve(loop, server, [3])[0]
        assert outcome.outcome == "accepted"

        adapter = make_adapter("peeters-hermans", TOY_B17, seed=123,
                               session_index=0)
        reference = run_resilient_session(adapter, LossProfile(),
                                          distance_m=0.5)
        assert reference.accepted
        assert outcome.tag_energy_uj == pytest.approx(
            reference.initiator_energy.total_j * 1e6, rel=1e-12)
        assert outcome.reader_energy_uj == pytest.approx(
            reference.responder_energy.total_j * 1e6, rel=1e-12)


class TestEpochCache:
    def test_cache_built_once_per_epoch(self, fleet_store):
        registry = MetricRegistry()
        loop, server = make_server(fleet_store, registry=registry,
                                   epoch_sessions=10)
        serve(loop, server, range(25))  # spans epochs 0, 1, 2
        metrics = registry.snapshot()["metrics"]
        builds = metrics["repro_server_cache_builds_total"]["values"]
        assert builds[0]["value"] == 3

    def test_stale_epochs_evicted(self, fleet_store):
        loop, server = make_server(fleet_store, epoch_sessions=10)
        # Epochs advancing in order: only current + previous survive.
        for index in (5, 15, 25, 35):
            server._cache_for(index)
        assert sorted(server._caches) == [2, 3]
