"""Tests for PRESENT-80 (published test vectors from the CHES 2007 paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import PRESENT80_GATES, Present80
from repro.arch import AES_ENC_GATES, SHA1_GATES


class TestPublishedVectors:
    @pytest.mark.parametrize(
        "key,plaintext,ciphertext",
        [
            (bytes(10), bytes(8), "5579c1387b228445"),
            (b"\xff" * 10, bytes(8), "e72c46c0f5945049"),
            (bytes(10), b"\xff" * 8, "a112ffc72f68417b"),
            (b"\xff" * 10, b"\xff" * 8, "3333dcd3213210d2"),
        ],
    )
    def test_encrypt(self, key, plaintext, ciphertext):
        assert Present80(key).encrypt_block(plaintext).hex() == ciphertext

    @pytest.mark.parametrize(
        "key,plaintext,ciphertext",
        [
            (bytes(10), bytes(8), "5579c1387b228445"),
            (b"\xff" * 10, b"\xff" * 8, "3333dcd3213210d2"),
        ],
    )
    def test_decrypt(self, key, plaintext, ciphertext):
        assert Present80(key).decrypt_block(bytes.fromhex(ciphertext)) == \
            plaintext


class TestRoundtripAndValidation:
    @given(st.binary(min_size=10, max_size=10),
           st.binary(min_size=8, max_size=8))
    @settings(max_examples=25)
    def test_roundtrip(self, key, block):
        cipher = Present80(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_key_size(self):
        with pytest.raises(ValueError):
            Present80(bytes(16))

    def test_block_size(self):
        cipher = Present80(bytes(10))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(16))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(4))

    def test_avalanche(self):
        cipher = Present80(bytes(10))
        a = cipher.encrypt_block(bytes(8))
        b = cipher.encrypt_block(b"\x01" + bytes(7))
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 16 <= diff <= 48  # roughly half of 64 bits

    def test_key_sensitivity(self):
        a = Present80(bytes(10)).encrypt_block(bytes(8))
        b = Present80(b"\x01" + bytes(9)).encrypt_block(bytes(8))
        assert a != b


class TestGateCountStory:
    def test_present_is_the_smallest(self):
        """The Section 4 budget ladder: PRESENT << AES < SHA-1 << ECC."""
        assert PRESENT80_GATES < AES_ENC_GATES < SHA1_GATES

    def test_present_fraction_of_ecc(self):
        from repro.arch import ecc_core_area

        assert PRESENT80_GATES < 0.15 * ecc_core_area().total
