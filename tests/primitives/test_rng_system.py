"""Tests for the TRNG -> health tests -> DRBG randomness subsystem."""

import random

import pytest

from repro.primitives import DeviceRandomness, EntropyFailure, TrngModel


class TestHealthySource:
    def test_serves_bits(self):
        device = DeviceRandomness(TrngModel(random.Random(1)))
        for k in (1, 8, 163, 256):
            value = device.getrandbits(k)
            assert 0 <= value < (1 << k)

    def test_randbytes(self):
        device = DeviceRandomness(TrngModel(random.Random(2)))
        assert len(device.randbytes(20)) == 20
        assert device.randbytes(0) == b""

    def test_random_unit_interval(self):
        device = DeviceRandomness(TrngModel(random.Random(3)))
        assert 0.0 <= device.random() < 1.0

    def test_reseeds_on_schedule(self):
        device = DeviceRandomness(TrngModel(random.Random(4)),
                                  reseed_interval_bits=512)
        assert device.reseeds == 1
        for __ in range(10):
            device.getrandbits(128)
        assert device.reseeds >= 3

    def test_deterministic_given_seeded_trng(self):
        a = DeviceRandomness(TrngModel(random.Random(5)))
        b = DeviceRandomness(TrngModel(random.Random(5)))
        assert a.getrandbits(163) == b.getrandbits(163)

    def test_output_statistics(self):
        device = DeviceRandomness(TrngModel(random.Random(6)))
        bits = device.getrandbits(8000)
        ones = bin(bits).count("1")
        assert 3700 <= ones <= 4300

    def test_usable_as_ladder_rng(self):
        """Drop-in randomness source for the coprocessor."""
        from repro.arch import EccCoprocessor

        coprocessor = EccCoprocessor()
        device = DeviceRandomness(TrngModel(random.Random(7)))
        trace = coprocessor.point_multiply(
            0x1234, coprocessor.domain.generator, rng=device
        )
        expected = coprocessor.domain.curve.multiply_naive(
            0x1234, coprocessor.domain.generator
        )
        assert trace.result == expected


class TestDegradedSource:
    def test_biased_source_caught_at_construction(self):
        with pytest.raises(EntropyFailure):
            DeviceRandomness(TrngModel(random.Random(8), bias=0.8))

    def test_correlated_source_caught(self):
        with pytest.raises(EntropyFailure):
            DeviceRandomness(TrngModel(random.Random(9), correlation=0.7))

    def test_failure_names_the_failing_test(self):
        try:
            DeviceRandomness(TrngModel(random.Random(10), bias=0.9))
        except EntropyFailure as error:
            assert "monobit" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected EntropyFailure")

    def test_source_degrading_later_is_caught_at_reseed(self):
        trng = TrngModel(random.Random(11))
        device = DeviceRandomness(trng, reseed_interval_bits=512)
        trng.bias = 0.9  # the oscillator drifts after deployment
        with pytest.raises(EntropyFailure):
            for __ in range(20):
                device.getrandbits(128)


class TestValidation:
    def test_interval_too_small(self):
        with pytest.raises(ValueError):
            DeviceRandomness(TrngModel(random.Random(12)),
                             reseed_interval_bits=8)

    def test_negative_bits(self):
        device = DeviceRandomness(TrngModel(random.Random(13)))
        with pytest.raises(ValueError):
            device.getrandbits(-1)
