"""Tests for AES-CMAC (RFC 4493) and HMAC-SHA1 (RFC 2202)."""

import pytest

from repro.primitives import aes_cmac, constant_time_equal, hmac_sha1

CMAC_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
CMAC_M64 = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
CMAC_M320 = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411"
)
CMAC_M512 = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestAesCmacRfc4493:
    def test_empty_message(self):
        assert aes_cmac(CMAC_KEY, b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_one_block(self):
        assert aes_cmac(CMAC_KEY, CMAC_M64).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_partial_blocks(self):
        assert (
            aes_cmac(CMAC_KEY, CMAC_M320).hex() == "dfa66747de9ae63030ca32611497c827"
        )

    def test_four_blocks(self):
        assert (
            aes_cmac(CMAC_KEY, CMAC_M512).hex() == "51f0bebf7e3b9d92fc49741779363cfe"
        )

    def test_key_sensitivity(self):
        other = bytes([CMAC_KEY[0] ^ 1]) + CMAC_KEY[1:]
        assert aes_cmac(CMAC_KEY, CMAC_M64) != aes_cmac(other, CMAC_M64)

    def test_message_sensitivity(self):
        assert aes_cmac(CMAC_KEY, b"a") != aes_cmac(CMAC_KEY, b"b")


class TestHmacSha1Rfc2202:
    def test_case_1(self):
        tag = hmac_sha1(b"\x0b" * 20, b"Hi There")
        assert tag.hex() == "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_case_2(self):
        tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_case_3(self):
        tag = hmac_sha1(b"\xaa" * 20, b"\xdd" * 50)
        assert tag.hex() == "125d7342b9ac11cd91a39af48aa17b4f63f175d3"

    def test_long_key_hashed(self):
        tag = hmac_sha1(
            b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First"
        )
        assert tag.hex() == "aa4ae5e15272d00e95705637ce8a3b55ed402112"


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abcd", b"abcd")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"abcd", b"abce")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_equal(b"", b"")
