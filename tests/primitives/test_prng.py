"""Tests for the deterministic AES-CTR DRBG."""

import pytest

from repro.primitives import AesCtrDrbg


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = AesCtrDrbg(42), AesCtrDrbg(42)
        assert a.randbytes(100) == b.randbytes(100)
        assert a.getrandbits(163) == b.getrandbits(163)

    def test_different_seeds_differ(self):
        assert AesCtrDrbg(1).randbytes(32) != AesCtrDrbg(2).randbytes(32)

    def test_bytes_seed(self):
        a = AesCtrDrbg(b"device serial 0001")
        b = AesCtrDrbg(b"device serial 0001")
        assert a.getrandbits(64) == b.getrandbits(64)

    def test_int_and_bytes_seeds_are_distinct_domains(self):
        assert AesCtrDrbg(0x41).randbytes(16) != AesCtrDrbg(b"\x41").randbytes(16) or True
        # (no crash is the contract; equality is allowed but not required)


class TestInterface:
    def test_getrandbits_range(self):
        rng = AesCtrDrbg(7)
        for k in (1, 8, 13, 64, 163, 256):
            for _ in range(20):
                v = rng.getrandbits(k)
                assert 0 <= v < (1 << k)

    def test_getrandbits_zero(self):
        assert AesCtrDrbg(7).getrandbits(0) == 0

    def test_getrandbits_negative(self):
        with pytest.raises(ValueError):
            AesCtrDrbg(7).getrandbits(-1)

    def test_randbytes_negative(self):
        with pytest.raises(ValueError):
            AesCtrDrbg(7).randbytes(-1)

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            AesCtrDrbg(3.14)

    def test_negative_int_seed(self):
        with pytest.raises(ValueError):
            AesCtrDrbg(-1)

    def test_randrange(self):
        rng = AesCtrDrbg(9)
        for _ in range(100):
            assert 10 <= rng.randrange(10, 20) < 20
        for _ in range(100):
            assert 0 <= rng.randrange(7) < 7

    def test_randrange_empty(self):
        with pytest.raises(ValueError):
            AesCtrDrbg(9).randrange(5, 5)

    def test_random_unit_interval(self):
        rng = AesCtrDrbg(11)
        values = [rng.random() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.35 < sum(values) / len(values) < 0.65


class TestStatisticalSanity:
    def test_bit_balance(self):
        rng = AesCtrDrbg(123)
        bits = rng.getrandbits(10_000)
        ones = bin(bits).count("1")
        assert 4700 <= ones <= 5300

    def test_byte_diversity(self):
        rng = AesCtrDrbg(5)
        data = rng.randbytes(2048)
        assert len(set(data)) > 200
