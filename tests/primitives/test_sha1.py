"""Tests for the from-scratch SHA-1 (FIPS 180 vectors)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import Sha1, sha1


class TestVectors:
    def test_empty(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_abc(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1(msg).hex() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_million_a(self):
        assert (
            sha1(b"a" * 1_000_000).hex()
            == "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        )

    def test_448_bit_boundary(self):
        # Length that forces padding into a second block.
        msg = b"x" * 56
        assert len(sha1(msg)) == 20


class TestIncremental:
    @given(st.binary(max_size=300), st.integers(min_value=0, max_value=300))
    @settings(max_examples=30)
    def test_split_update_equals_oneshot(self, data, split):
        split = min(split, len(data))
        h = Sha1()
        h.update(data[:split])
        h.update(data[split:])
        assert h.digest() == sha1(data)

    def test_digest_is_idempotent(self):
        h = Sha1(b"hello")
        assert h.digest() == h.digest()

    def test_can_continue_after_digest(self):
        h = Sha1(b"hello ")
        first = h.digest()
        h.update(b"world")
        assert h.digest() == sha1(b"hello world")
        assert first == sha1(b"hello ")

    def test_hexdigest(self):
        assert Sha1(b"abc").hexdigest() == sha1(b"abc").hex()

    def test_chaining(self):
        assert Sha1().update(b"ab").update(b"c").digest() == sha1(b"abc")

    @given(st.binary(max_size=200), st.binary(max_size=200))
    @settings(max_examples=20)
    def test_distinct_messages_distinct_digests(self, a, b):
        if a != b:
            assert sha1(a) != sha1(b)
