"""Tests for the from-scratch AES-128 (FIPS 197 vectors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import Aes128, INV_SBOX, SBOX

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for v in range(256):
            assert INV_SBOX[SBOX[v]] == v

    def test_no_fixed_points(self):
        assert all(SBOX[v] != v for v in range(256))


class TestBlockCipher:
    def test_fips197_vector(self):
        aes = Aes128(FIPS_KEY)
        assert aes.encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips197_decrypt(self):
        aes = Aes128(FIPS_KEY)
        assert aes.decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20)
    def test_roundtrip(self, key, block):
        aes = Aes128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_wrong_block_size(self):
        aes = Aes128(FIPS_KEY)
        with pytest.raises(ValueError):
            aes.encrypt_block(b"short")
        with pytest.raises(ValueError):
            aes.decrypt_block(b"x" * 17)

    def test_key_sensitivity(self):
        a = Aes128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT)
        flipped = bytes([FIPS_KEY[0] ^ 1]) + FIPS_KEY[1:]
        b = Aes128(flipped).encrypt_block(FIPS_PLAINTEXT)
        assert a != b
        # Avalanche: roughly half the bits should differ.
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 30 <= diff <= 98


class TestCtrMode:
    def test_involution(self):
        aes = Aes128(FIPS_KEY)
        nonce = b"\x01" * 8
        data = b"vital signs: hr=72 spo2=98 temp=36.6"
        assert aes.ctr_encrypt(nonce, aes.ctr_encrypt(nonce, data)) == data

    def test_keystream_length(self):
        aes = Aes128(FIPS_KEY)
        for n in (0, 1, 15, 16, 17, 100):
            assert len(aes.ctr_keystream(b"\x00" * 8, n)) == n

    def test_nonce_matters(self):
        aes = Aes128(FIPS_KEY)
        data = b"0123456789abcdef"
        assert aes.ctr_encrypt(b"\x00" * 8, data) != aes.ctr_encrypt(b"\x01" * 8, data)

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            Aes128(FIPS_KEY).ctr_keystream(b"\x00" * 4, 16)

    def test_keystream_matches_encrypt_counter_blocks(self):
        aes = Aes128(FIPS_KEY)
        nonce = b"\xaa" * 8
        stream = aes.ctr_keystream(nonce, 32)
        block0 = aes.encrypt_block(nonce + (0).to_bytes(8, "big"))
        block1 = aes.encrypt_block(nonce + (1).to_bytes(8, "big"))
        assert stream == block0 + block1
