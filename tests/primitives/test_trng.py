"""Tests for the behavioural TRNG model and health tests."""

import random

import pytest

from repro.primitives import (
    TrngModel,
    monobit_test,
    runs_test,
    von_neumann_debias,
)


class TestModelConstruction:
    def test_bad_bias(self):
        with pytest.raises(ValueError):
            TrngModel(random.Random(0), bias=1.5)

    def test_bad_correlation(self):
        with pytest.raises(ValueError):
            TrngModel(random.Random(0), correlation=-0.1)


class TestHealthTests:
    def test_good_source_passes(self):
        trng = TrngModel(random.Random(1))
        bits = trng.raw_bits(4000)
        assert monobit_test(bits)[0]
        assert runs_test(bits)[0]

    def test_biased_source_fails_monobit(self):
        trng = TrngModel(random.Random(2), bias=0.7)
        bits = trng.raw_bits(4000)
        assert not monobit_test(bits)[0]

    def test_correlated_source_fails_runs(self):
        trng = TrngModel(random.Random(3), correlation=0.6)
        bits = trng.raw_bits(4000)
        assert not runs_test(bits)[0]

    def test_stuck_source_fails_everything(self):
        trng = TrngModel(random.Random(4), correlation=1.0)
        bits = trng.raw_bits(1000)
        assert not monobit_test(bits)[0]
        assert not runs_test(bits)[0]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([])
        with pytest.raises(ValueError):
            runs_test([])


class TestDebiasing:
    def test_von_neumann_removes_bias(self):
        trng = TrngModel(random.Random(5), bias=0.8)
        raw = trng.raw_bits(40_000)
        debiased = von_neumann_debias(raw)
        assert len(debiased) > 1000
        assert monobit_test(debiased)[0]

    def test_von_neumann_output_shorter(self):
        trng = TrngModel(random.Random(6))
        raw = trng.raw_bits(1000)
        assert len(von_neumann_debias(raw)) <= len(raw) // 2

    def test_conditioned_bits_pass_health(self):
        trng = TrngModel(random.Random(7), bias=0.7)
        bits = trng.conditioned_bits(3000)
        assert len(bits) == 3000
        assert monobit_test(bits)[0]

    def test_conditioner_starves_on_stuck_source(self):
        trng = TrngModel(random.Random(8), correlation=1.0)
        with pytest.raises(RuntimeError):
            trng.conditioned_bits(10, max_raw=1000)

    def test_deterministic_given_seeded_rng(self):
        bits1 = TrngModel(random.Random(9), bias=0.6).raw_bits(100)
        bits2 = TrngModel(random.Random(9), bias=0.6).raw_bits(100)
        assert bits1 == bits2
