"""Tests for dominance, Pareto fronts, and constraint checking."""

from repro.dse import OBJECTIVES, constraint_violations, dominates, pareto_front


def row(**values):
    base = {"area_ge": 10.0, "energy_uj": 1.0, "area_energy": 10.0,
            "power_uw": 50.0, "latency_s": 0.01, "cycles": 100,
            "security": 1.0}
    base.update(values)
    return base


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(row(power_uw=40.0), row(), ("power",))

    def test_equal_rows_do_not_dominate(self):
        assert not dominates(row(), row(), ("power", "area_energy"))

    def test_tradeoff_is_incomparable(self):
        a = row(power_uw=40.0, area_energy=20.0)
        b = row(power_uw=60.0, area_energy=5.0)
        objectives = ("power", "area_energy")
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_security_sense_is_maximize(self):
        secure, weak = row(security=1.0), row(security=0.5)
        assert dominates(secure, weak, ("security",))
        assert not dominates(weak, secure, ("security",))

    def test_tie_on_one_objective_still_dominates(self):
        a = row(power_uw=50.0, security=1.0)
        b = row(power_uw=50.0, security=0.875)
        assert dominates(a, b, ("power", "security"))


class TestParetoFront:
    def test_single_objective_keeps_the_minimum(self):
        rows = [row(area_energy=v) for v in (3.0, 1.0, 2.0)]
        assert pareto_front(rows, ("area_energy",)) == [rows[1]]

    def test_front_preserves_input_order(self):
        rows = [
            row(power_uw=60.0, security=1.0),
            row(power_uw=40.0, security=0.875),
            row(power_uw=50.0, security=0.875),   # dominated by the 2nd
        ]
        front = pareto_front(rows, ("power", "security"))
        assert front == [rows[0], rows[1]]

    def test_duplicate_optima_all_survive(self):
        rows = [row(power_uw=40.0), row(power_uw=40.0)]
        assert pareto_front(rows, ("power",)) == rows

    def test_empty_input(self):
        assert pareto_front([], ("power",)) == []


class TestConstraints:
    def test_feasible_row_has_no_violations(self):
        assert constraint_violations(row(), max_latency_s=0.105,
                                     max_area_ge=20.0,
                                     min_security=1.0) == []

    def test_each_constraint_reported_by_name(self):
        bad = row(latency_s=0.2, area_ge=30.0, security=0.5)
        assert constraint_violations(bad, max_latency_s=0.105,
                                     max_area_ge=20.0, min_security=1.0) \
            == ["latency", "area", "security"]

    def test_none_disables_a_constraint(self):
        bad = row(latency_s=0.2)
        assert constraint_violations(bad) == []

    def test_objective_table_senses(self):
        assert OBJECTIVES["security"][1] == -1
        assert all(sense == 1 for name, (key, sense) in OBJECTIVES.items()
                   if name != "security")
