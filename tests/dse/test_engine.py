"""Engine tests on the TOY-B17 smoke space.

The smoke space is chosen so the constrained optimum is unique for
the same reasons as in the paper's K-163 space: d = 1 breaks the
latency deadline, 0.8 V opens the fault-attack door, and dropping the
countermeasures breaks the security floor — leaving exactly the d = 4
/ 1.0 V / full-countermeasures point on the front.
"""

import json
import os

import pytest

from repro.campaign import RetryPolicy
from repro.dse import (
    DesignSpaceSpec,
    ExplorationEngine,
    MissingMeasurementError,
    PARETO_NAME,
    POINTS_NAME,
    analyze_space,
    load_measurement,
    measurement_relpath,
    run_measurement_attempt,
)

SMOKE = DesignSpaceSpec(
    digit_sizes=(1, 4),
    vdd_volts=(0.8, 1.0),
    frequencies_hz=(847.5e3,),
    countermeasures=("full", "none"),
    curve="TOY-B17",
    max_latency_s=0.005,
    min_security=1.0,
)

FAST = RetryPolicy(base_delay=0.0, jitter=0.0)

OPTIMUM = "d4-full-1V-847.5kHz"


def read(directory, name):
    with open(os.path.join(directory, name), "rb") as f:
        return f.read()


@pytest.fixture(scope="module")
def explored(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("dse-smoke"))
    result = ExplorationEngine(directory, SMOKE, workers=1).run()
    return directory, result


class TestSmokeSpace:
    def test_every_cell_simulated_once(self, explored):
        _, result = explored
        assert result.evaluated == 4
        assert result.cached == 0
        assert result.outcome == "clean"
        assert len(result.rows) == SMOKE.grid_size == 8

    def test_unique_constrained_optimum(self, explored):
        _, result = explored
        assert [row["id"] for row in result.front] == [OPTIMUM]
        optimum = result.front[0]
        assert optimum["pareto"] and optimum["feasible"]
        assert optimum["security"] == 1.0

    def test_infeasible_rows_name_their_violations(self, explored):
        _, result = explored
        by_id = {row["id"]: row for row in result.rows}
        assert "latency" in by_id["d1-full-1V-847.5kHz"]["violations"]
        assert "security" in by_id["d4-none-1V-847.5kHz"]["violations"]
        assert "security" in by_id["d4-full-0.8V-847.5kHz"]["violations"]
        assert "fault-attack" in by_id["d4-full-0.8V-847.5kHz"]["security_open"]

    def test_summary_names_the_front(self, explored):
        _, result = explored
        assert OPTIMUM in result.summary()

    def test_serialized_files_match_the_result(self, explored):
        directory, result = explored
        points = json.loads(read(directory, POINTS_NAME))
        pareto = json.loads(read(directory, PARETO_NAME))
        assert points["rows"] == result.rows
        assert pareto["front"] == result.front
        assert pareto["spec_digest"] == SMOKE.digest()
        assert pareto["constraints"]["max_latency_s"] == 0.005

    def test_rerun_is_pure_cache_and_byte_identical(self, explored):
        directory, _ = explored
        before = read(directory, PARETO_NAME), read(directory, POINTS_NAME)
        result = ExplorationEngine(directory, SMOKE, workers=1).run()
        assert result.evaluated == 0
        assert result.cached == 4
        assert (read(directory, PARETO_NAME),
                read(directory, POINTS_NAME)) == before

    def test_worker_count_does_not_change_the_bytes(self, explored,
                                                    tmp_path):
        directory, _ = explored
        parallel = str(tmp_path / "parallel")
        result = ExplorationEngine(parallel, SMOKE, workers=2,
                                   retry_policy=FAST).run()
        assert result.outcome == "clean"
        assert read(parallel, PARETO_NAME) == read(directory, PARETO_NAME)
        assert read(parallel, POINTS_NAME) == read(directory, POINTS_NAME)


class TestCache:
    def test_tampered_measurement_heals(self, explored, tmp_path):
        directory, _ = explored
        digest = SMOKE.config_digest(SMOKE.reference_job())
        relpath = measurement_relpath(digest)
        source = os.path.join(directory, relpath)
        clone = str(tmp_path / "clone")
        os.makedirs(os.path.dirname(os.path.join(clone, relpath)))
        with open(source, "rb") as f:
            payload = json.load(f)
        payload["cycles"] = "corrupted"
        with open(os.path.join(clone, relpath), "w") as f:
            json.dump(payload, f)
        assert load_measurement(clone, digest) is None
        cached, pending = ExplorationEngine(clone, SMOKE).plan()
        assert SMOKE.reference_job().index in pending

    def test_strict_analysis_requires_the_reference(self, tmp_path):
        with pytest.raises(MissingMeasurementError, match="reference"):
            analyze_space(str(tmp_path), SMOKE)


def fail_job_one(spec_dict, directory, job_index, attempt, chaos_dict):
    if job_index == 1:
        raise RuntimeError("injected measurement fault")
    return run_measurement_attempt(spec_dict, directory, job_index,
                                   attempt, chaos_dict)


class TestDegradedPath:
    def test_persistent_failure_quarantines_the_cell(self, tmp_path):
        directory = str(tmp_path / "degraded")
        engine = ExplorationEngine(directory, SMOKE, workers=1,
                                   retry_policy=FAST, task=fail_job_one)
        result = engine.run()
        assert result.quarantined == [1]
        assert result.outcome == "degraded"
        # The d1-none cell produced no rows; everything else did.
        assert len(result.rows) == 6
        assert [row["id"] for row in result.front] == [OPTIMUM]

        # A re-run holds the quarantined cell without re-attempting it.
        again = ExplorationEngine(directory, SMOKE, workers=1,
                                  retry_policy=FAST,
                                  task=fail_job_one).run()
        assert again.quarantined == [1]
        assert again.evaluated == 0
        assert again.cached == 3
