"""Tests for the design-space specification."""

import dataclasses

import pytest

from repro.dse import (
    COUNTERMEASURE_SETS,
    DesignSpaceSpec,
    SpaceValidationError,
)


def toy_spec(**overrides):
    kwargs = dict(
        digit_sizes=(1, 4),
        vdd_volts=(0.8, 1.0),
        frequencies_hz=(847.5e3,),
        countermeasures=("full", "none"),
        curve="TOY-B17",
        max_latency_s=0.005,
    )
    kwargs.update(overrides)
    return DesignSpaceSpec(**kwargs)


class TestValidation:
    def test_defaults_are_the_paper_space(self):
        spec = DesignSpaceSpec()
        assert spec.digit_sizes == (1, 2, 4, 8, 16)
        assert spec.vdd_volts == (0.8, 1.0, 1.2)
        assert spec.frequencies_hz == (100e3, 847.5e3, 4e6)
        assert spec.max_latency_s == 0.105
        assert spec.min_security == 1.0

    @pytest.mark.parametrize("axis", ["digit_sizes", "vdd_volts",
                                      "frequencies_hz", "countermeasures",
                                      "objectives"])
    def test_empty_axis_rejected(self, axis):
        with pytest.raises(SpaceValidationError, match="must not be empty"):
            toy_spec(**{axis: ()})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SpaceValidationError, match="duplicates"):
            toy_spec(digit_sizes=(4, 4))

    def test_unknown_countermeasure_set_rejected(self):
        with pytest.raises(SpaceValidationError, match="unknown countermeasure"):
            toy_spec(countermeasures=("full", "tinfoil"))

    def test_unknown_objective_rejected(self):
        with pytest.raises(SpaceValidationError, match="unknown objective"):
            toy_spec(objectives=("area_energy", "vibes"))

    def test_unknown_curve_rejected(self):
        with pytest.raises(SpaceValidationError):
            toy_spec(curve="P-256")

    def test_invalid_digit_size_wrapped(self):
        # TOY-B17 has m = 17, so digit size 64 exceeds the field.
        with pytest.raises(SpaceValidationError, match="digit"):
            toy_spec(digit_sizes=(4, 64))

    def test_nonpositive_vdd_rejected(self):
        with pytest.raises(SpaceValidationError, match="Vdd"):
            toy_spec(vdd_volts=(0.0, 1.0))

    def test_schema_version_checked(self):
        with pytest.raises(SpaceValidationError, match="schema"):
            toy_spec(schema_version=99)

    def test_whitebox_traces_floor(self):
        with pytest.raises(SpaceValidationError, match="whitebox_traces"):
            toy_spec(whitebox_traces=1)


class TestSerialization:
    def test_roundtrip_preserves_digest(self):
        spec = toy_spec()
        clone = DesignSpaceSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_changes_with_constraints(self):
        assert toy_spec().digest() != toy_spec(max_latency_s=0.2).digest()


class TestMeasurementPlanning:
    def test_one_job_per_cell_with_reference_marked(self):
        jobs = toy_spec().measurement_jobs()
        cells = [(j.digit_size, j.countermeasures) for j in jobs]
        assert cells == [(1, "full"), (1, "none"), (4, "full"), (4, "none")]
        assert [j.is_reference for j in jobs] == [False, False, True, False]
        assert all(j.on_grid for j in jobs)

    def test_synthetic_reference_appended_off_grid(self):
        spec = toy_spec(digit_sizes=(1, 2), countermeasures=("none",))
        jobs = spec.measurement_jobs()
        assert len(jobs) == 3
        reference = spec.reference_job()
        assert (reference.digit_size, reference.countermeasures) == (4, "full")
        assert not reference.on_grid
        assert reference not in spec.grid_jobs()

    def test_grid_size_counts_operating_points(self):
        assert toy_spec().grid_size == 4 * 2 * 1

    def test_coprocessor_config_applies_countermeasure_flags(self):
        spec = toy_spec()
        full = spec.coprocessor_config(spec.measurement_jobs()[2])
        none = spec.coprocessor_config(spec.measurement_jobs()[3])
        assert full.randomize_z and not none.randomize_z
        assert type(full.mux_encoding) is not type(none.mux_encoding)
        assert full.domain.field.m == 17

    def test_countermeasure_sets_cover_both_flags(self):
        assert set(COUNTERMEASURE_SETS) == {
            "full", "no-rpc", "unbalanced-mux", "none"}


class TestConfigDigest:
    def test_survives_grid_and_constraint_changes(self):
        spec = toy_spec()
        job = spec.reference_job()
        rescaled = dataclasses.replace(
            spec, vdd_volts=(1.0,), frequencies_hz=(4e6,),
            max_latency_s=None, min_security=0.5,
            objectives=("power",))
        assert rescaled.config_digest(rescaled.reference_job()) \
            == spec.config_digest(job)

    def test_depends_on_curve_and_cell(self):
        spec = toy_spec()
        ref = spec.reference_job()
        other_cm = spec.measurement_jobs()[3]
        assert spec.config_digest(ref) != spec.config_digest(other_cm)
        k163 = DesignSpaceSpec()
        assert k163.config_digest(k163.reference_job()) \
            != spec.config_digest(ref)

    def test_depends_on_whitebox_settings(self):
        spec = toy_spec()
        wb = toy_spec(whitebox=True)
        assert spec.config_digest(spec.reference_job()) \
            != wb.config_digest(wb.reference_job())
