"""The DSE checkpoint-interval axis: pricing, digest stability."""

import json

import pytest

from repro.dse import DesignSpaceSpec
from repro.dse.engine import ExplorationEngine, analyze_space
from repro.dse.errors import SpaceValidationError


def make_spec(**overrides):
    kwargs = dict(digit_sizes=(2, 4), vdd_volts=(1.0,),
                  frequencies_hz=(847.5e3,), countermeasures=("full",),
                  curve="TOY-B17")
    kwargs.update(overrides)
    return DesignSpaceSpec(**kwargs)


class TestSpec:
    def test_empty_axis_keeps_digest_and_dict(self):
        spec = make_spec()
        assert "checkpoint_intervals" not in spec.to_dict()
        assert DesignSpaceSpec.from_dict(spec.to_dict()) == spec
        assert make_spec(checkpoint_intervals=()).digest() == spec.digest()

    def test_axis_changes_exploration_digest(self):
        assert make_spec(checkpoint_intervals=(4, 16)).digest() != \
            make_spec().digest()

    def test_round_trip(self):
        spec = make_spec(checkpoint_intervals=(4, 64))
        assert DesignSpaceSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_validation(self):
        with pytest.raises(SpaceValidationError, match="positive integers"):
            make_spec(checkpoint_intervals=(0,))
        with pytest.raises(SpaceValidationError, match="duplicates"):
            make_spec(checkpoint_intervals=(8, 8))

    def test_grid_size_scales(self):
        assert make_spec().grid_size == 2
        assert make_spec(checkpoint_intervals=(4, 16, 64)).grid_size == 6

    def test_config_digest_ignores_the_axis(self):
        base = make_spec()
        axis = make_spec(checkpoint_intervals=(4, 16))
        for jb, ja in zip(base.grid_jobs(), axis.grid_jobs()):
            assert base.config_digest(jb) == axis.config_digest(ja)


class TestAnalyze:
    def test_repricing_uses_the_cache(self, tmp_path):
        base = make_spec()
        first = ExplorationEngine(str(tmp_path), base, workers=1).run()
        assert first.evaluated == len(base.measurement_jobs())

        axis = make_spec(checkpoint_intervals=(4, 64))
        second = ExplorationEngine(str(tmp_path), axis, workers=1).run()
        assert second.evaluated == 0  # nothing re-simulated
        assert len(second.rows) == axis.grid_size

    def test_rows_price_their_interval(self, tmp_path):
        spec = make_spec(checkpoint_intervals=(4, 64))
        ExplorationEngine(str(tmp_path), spec, workers=1).run()
        rows, _ = analyze_space(str(tmp_path), spec)
        by_interval = {}
        for row in rows:
            interval = row["checkpoint_interval"]
            assert row["id"].endswith(f"-ck{interval}")
            by_interval.setdefault(interval, []).append(row)
        assert set(by_interval) == {4, 64}
        for fine, coarse in zip(by_interval[4], by_interval[64]):
            # Denser checkpoints cost more NVM energy but re-execute
            # less after a cut; the trade is monotone on both legs.
            assert fine["checkpoint_uj"] > coarse["checkpoint_uj"]
            assert fine["reexec_uj"] < coarse["reexec_uj"]
            # The priced total folds both in.
            assert fine["energy_uj"] != coarse["energy_uj"]

    def test_rows_score_the_durable_posture(self, tmp_path):
        spec = make_spec(checkpoint_intervals=(8,))
        ExplorationEngine(str(tmp_path), spec, workers=1).run()
        rows, _ = analyze_space(str(tmp_path), spec)
        for row in rows:
            assert "power-interruption" not in row["security_open"]

    def test_axis_off_rows_are_unchanged(self, tmp_path):
        spec = make_spec()
        ExplorationEngine(str(tmp_path), spec, workers=1).run()
        rows, _ = analyze_space(str(tmp_path), spec)
        assert all("checkpoint_interval" not in row for row in rows)
        assert all("checkpoint_uj" not in row for row in rows)
