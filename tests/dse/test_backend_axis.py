"""The DSE backend axis: ECC vs symmetric vs amortized hybrid.

The acceptance gate of the subsystem: in one design space, the
amortized hybrid must dominate pure-ECC messaging in µJ per message
*at equal security score* — and the symmetric-only point must show
why it is not simply the cheapest answer (its security score drops
through the open key-compromise and tracking doors).
"""

import json

import pytest

from repro.dse import DesignSpaceSpec
from repro.dse.engine import ExplorationEngine, analyze_space
from repro.dse.errors import SpaceValidationError
from repro.dse.pareto import pareto_front

BACKENDS = ("ecc", "simon-aead", "hybrid:16")


def make_spec(**overrides):
    kwargs = dict(digit_sizes=(4,), vdd_volts=(1.0,),
                  frequencies_hz=(847.5e3,), countermeasures=("full",),
                  curve="TOY-B17")
    kwargs.update(overrides)
    return DesignSpaceSpec(**kwargs)


class TestSpec:
    def test_empty_axis_keeps_digest_and_dict(self):
        spec = make_spec()
        assert "backends" not in spec.to_dict()
        assert DesignSpaceSpec.from_dict(spec.to_dict()) == spec
        assert make_spec(backends=()).digest() == spec.digest()

    def test_axis_changes_exploration_digest(self):
        assert make_spec(backends=BACKENDS).digest() != \
            make_spec().digest()

    def test_round_trip(self):
        spec = make_spec(backends=BACKENDS)
        assert DesignSpaceSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_validation(self):
        with pytest.raises(SpaceValidationError):
            make_spec(backends=("des",))
        with pytest.raises(SpaceValidationError):
            make_spec(backends=("ecc", "ecc"))
        with pytest.raises(SpaceValidationError, match="backend axis"):
            make_spec(objectives=("energy_per_message", "security"))

    def test_grid_counts_engine_cells(self):
        base = make_spec()
        axis = make_spec(backends=BACKENDS)
        # One ECC cell, repriced under 2 non-symmetric backend points,
        # plus 1 symmetric-only row and 1 engine measurement job.
        assert axis.grid_size > base.grid_size
        assert len(axis.measurement_jobs()) == \
            len(base.measurement_jobs()) + 1  # one engine to simulate

    def test_config_digest_is_curve_independent_for_engines(self):
        a = make_spec(curve="TOY-B17", backends=BACKENDS)
        b = make_spec(curve="B-163", backends=BACKENDS)
        ja = a.symmetric_jobs()
        jb = b.symmetric_jobs()
        assert set(ja) == set(jb) == {"simon-aead"}
        assert a.config_digest(ja["simon-aead"]) == \
            b.config_digest(jb["simon-aead"])


@pytest.fixture(scope="module")
def explored(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("dse-backends"))
    spec = make_spec(backends=BACKENDS)
    result = ExplorationEngine(directory, spec, workers=1).run()
    return {"directory": directory, "spec": spec, "result": result}


class TestAnalyze:
    def test_rows_carry_their_backend(self, explored):
        rows = explored["result"].rows
        by_backend = {row["backend"]: row for row in rows}
        assert set(by_backend) == set(BACKENDS)
        for row in rows:
            assert row["energy_uj_per_message"] > 0

    def test_hybrid_dominates_pure_ecc(self, explored):
        """The ISSUE acceptance gate, verbatim: at equal security
        score the amortized hybrid beats handshake-per-message ECC
        on µJ per message."""
        rows = explored["result"].rows
        by_backend = {row["backend"]: row for row in rows}
        ecc, hybrid = by_backend["ecc"], by_backend["hybrid:16"]
        assert hybrid["security"] == ecc["security"]
        assert hybrid["energy_uj_per_message"] < \
            ecc["energy_uj_per_message"]

    def test_symmetric_only_pays_in_security(self, explored):
        rows = explored["result"].rows
        sym = next(r for r in rows if r["backend"] == "simon-aead")
        ecc = next(r for r in rows if r["backend"] == "ecc")
        assert sym["security"] < ecc["security"]
        assert "key-compromise" in sym["security_open"]
        assert "tracking" in sym["security_open"]
        # Cheapest µJ/message of the three — that is the whole trap.
        assert sym["energy_uj_per_message"] <= min(
            r["energy_uj_per_message"] for r in rows)

    def test_hybrid_amortizes_the_handshake(self, explored):
        rows = explored["result"].rows
        by_backend = {row["backend"]: row for row in rows}
        ecc, hybrid = by_backend["ecc"], by_backend["hybrid:16"]
        handshake_uj = ecc["energy_uj_per_message"]
        message_uj = hybrid["energy_uj_per_message"] \
            - handshake_uj / 16
        assert message_uj == pytest.approx(
            by_backend["simon-aead"]["energy_uj_per_message"])
        # The hybrid row also carries the engine's silicon.
        assert hybrid["area_ge"] > ecc["area_ge"]

    def test_reprice_is_pure_cache(self, explored):
        spec = make_spec(backends=("ecc", "hybrid:simon-aead:64"))
        second = ExplorationEngine(explored["directory"], spec,
                                   workers=1).run()
        assert second.evaluated == 0  # nothing re-simulated
        rows, _ = analyze_space(explored["directory"], spec)
        labels = {row["backend"] for row in rows}
        assert labels == {"ecc", "hybrid:simon-aead:64"}

    def test_rows_are_deterministic(self, explored):
        rows_a, _ = analyze_space(explored["directory"],
                                  explored["spec"])
        rows_b, _ = analyze_space(explored["directory"],
                                  explored["spec"])
        assert rows_a == rows_b

    def test_axis_off_rows_are_unchanged(self, explored):
        base = make_spec()
        ExplorationEngine(explored["directory"], base, workers=1).run()
        rows, _ = analyze_space(explored["directory"], base)
        assert all("backend" not in row for row in rows)
        assert all("energy_uj_per_message" not in row for row in rows)


class TestParetoObjective:
    def test_energy_per_message_front(self, explored):
        spec = make_spec(backends=BACKENDS,
                         objectives=("energy_per_message", "security"))
        rows, _ = analyze_space(explored["directory"], spec)
        front = pareto_front(rows, spec.objectives)
        front_backends = {row["backend"] for row in front}
        # The hybrid point survives; pure ECC is dominated by it
        # (same security, strictly more µJ per message).
        assert "hybrid:16" in front_backends
        assert "ecc" not in front_backends
