"""Acceptance: the default space recovers the paper's design choice.

Explores the paper-aligned K-163 space — d in {1, 2, 4, 8, 16}, Vdd
in {0.8, 1.0, 1.2}, f in {100 kHz, 847.5 kHz, 4 MHz}, countermeasures
on/off — under the 105 ms pacing deadline and the full-security floor,
and checks that the engine's unique Pareto answer is the published
d = 4 / 1.0 V / 847.5 kHz protected design at 50.4 uW / 5.1 uJ.
"""

import pytest

from repro.dse import DesignSpaceSpec, ExplorationEngine
from repro.power import PAPER_ENERGY_PER_PM_JOULES, PAPER_POWER_WATTS


@pytest.fixture(scope="module")
def explored(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("dse-paper"))
    spec = DesignSpaceSpec()
    result = ExplorationEngine(directory, spec, workers=1).run()
    return directory, spec, result


@pytest.mark.slow
class TestPaperSpace:
    def test_grid_shape(self, explored):
        _, spec, result = explored
        assert result.evaluated == 10          # 5 digits x 2 cm sets
        assert len(result.rows) == spec.grid_size == 90

    def test_unique_pareto_point_is_the_papers_design(self, explored):
        _, _, result = explored
        assert [row["id"] for row in result.front] == ["d4-full-1V-847.5kHz"]
        optimum = result.front[0]
        assert optimum["digit_size"] == 4
        assert optimum["vdd"] == 1.0
        assert optimum["frequency_hz"] == 847.5e3
        assert optimum["countermeasures"] == "full"
        assert optimum["security"] == 1.0

    def test_optimum_hits_the_published_numbers(self, explored):
        _, _, result = explored
        optimum = result.front[0]
        paper_power_uw = PAPER_POWER_WATTS * 1e6
        paper_energy_uj = PAPER_ENERGY_PER_PM_JOULES * 1e6
        assert abs(optimum["power_uw"] - paper_power_uw) \
            / paper_power_uw < 0.02
        assert abs(optimum["energy_uj"] - paper_energy_uj) \
            / paper_energy_uj < 0.02

    def test_design_space_shape(self, explored):
        _, _, result = explored
        at_paper_point = [
            row for row in result.rows
            if (row["vdd"], row["frequency_hz"]) == (1.0, 847.5e3)
            and row["countermeasures"] == "full"
        ]
        digits = [row["digit_size"] for row in at_paper_point]
        assert digits == [1, 2, 4, 8, 16]
        areas = [row["area_ge"] for row in at_paper_point]
        cycles = [row["cycles"] for row in at_paper_point]
        assert areas == sorted(areas)
        assert cycles == sorted(cycles, reverse=True)
        # d = 1 misses the pacing deadline; that is why it loses
        # despite the smallest area.
        assert not at_paper_point[0]["feasible"]
        assert "latency" in at_paper_point[0]["violations"]

    def test_scaling_laws_across_the_grid(self, explored):
        _, _, result = explored
        d4 = {(row["vdd"], row["frequency_hz"]): row
              for row in result.rows
              if row["digit_size"] == 4 and row["countermeasures"] == "full"}
        # Frequency scaling: energy flat, power linear.
        slow, fast = d4[(1.0, 100e3)], d4[(1.0, 4e6)]
        assert abs(slow["energy_uj"] - fast["energy_uj"]) < 1e-9
        assert fast["power_uw"] / slow["power_uw"] \
            == pytest.approx(40.0, rel=1e-6)
        # Voltage scaling: quadratic energy.
        low, nom = d4[(0.8, 847.5e3)], d4[(1.0, 847.5e3)]
        assert low["energy_uj"] / nom["energy_uj"] \
            == pytest.approx(0.64, rel=1e-6)
        # ...but sub-nominal voltage opens the fault-attack door.
        assert "fault-attack" in low["security_open"]
        assert not low["feasible"]

    def test_rerun_is_pure_cache(self, explored):
        directory, spec, _ = explored
        again = ExplorationEngine(directory, spec, workers=1).run()
        assert again.evaluated == 0
        assert again.cached == 10
