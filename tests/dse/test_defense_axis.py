"""The DSE defenses axis: re-pricing cached cells, digest stability."""

import json

import pytest

from repro.dse import DesignSpaceSpec
from repro.dse.engine import ExplorationEngine, analyze_space
from repro.dse.errors import SpaceValidationError


def make_spec(**overrides):
    kwargs = dict(digit_sizes=(2, 4), vdd_volts=(1.0,),
                  frequencies_hz=(847.5e3,), countermeasures=("full",),
                  curve="TOY-B17")
    kwargs.update(overrides)
    return DesignSpaceSpec(**kwargs)


class TestSpec:
    def test_empty_axis_keeps_digest_and_dict(self):
        """Pre-axis specs stay byte-identical: no ``defenses`` key in
        to_dict, same digest, old dicts still load."""
        spec = make_spec()
        assert "defenses" not in spec.to_dict()
        d = spec.to_dict()
        assert DesignSpaceSpec.from_dict(d) == spec
        assert make_spec(defenses=()).digest() == spec.digest()

    def test_axis_changes_exploration_digest(self):
        assert make_spec(defenses=("none", "full")).digest() != \
            make_spec().digest()

    def test_round_trip(self):
        spec = make_spec(defenses=("none", "wake-gating"))
        assert DesignSpaceSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_validation(self):
        with pytest.raises(SpaceValidationError, match="unknown defense"):
            make_spec(defenses=("belt",))
        with pytest.raises(SpaceValidationError, match="duplicates"):
            make_spec(defenses=("full", "full"))

    def test_grid_size_scales(self):
        assert make_spec().grid_size == 2
        assert make_spec(defenses=("none", "full")).grid_size == 4

    def test_config_digest_ignores_defenses(self):
        """The cache key never sees the defense posture — adding the
        axis re-prices cached measurements, it never re-simulates."""
        base = make_spec()
        axis = make_spec(defenses=("none", "budget-cap", "full"))
        for jb, ja in zip(base.grid_jobs(), axis.grid_jobs()):
            assert base.config_digest(jb) == axis.config_digest(ja)


class TestAnalyze:
    def test_repricing_uses_the_cache(self, tmp_path):
        base = make_spec()
        first = ExplorationEngine(str(tmp_path), base, workers=1).run()
        assert first.evaluated == len(base.measurement_jobs())

        axis = make_spec(defenses=("none", "full"))
        second = ExplorationEngine(str(tmp_path), axis, workers=1).run()
        assert second.evaluated == 0  # nothing re-simulated
        assert second.cached == len(axis.measurement_jobs())
        assert len(second.rows) == axis.grid_size

    def test_rows_score_their_posture(self, tmp_path):
        spec = make_spec(defenses=("none", "full"))
        ExplorationEngine(str(tmp_path), spec, workers=1).run()
        rows, _ = analyze_space(str(tmp_path), spec)
        by_defense = {}
        for row in rows:
            assert row["id"].endswith(f"-{row['defense']}")
            by_defense.setdefault(row["defense"], []).append(row)
        assert set(by_defense) == {"none", "full"}
        for none_row, full_row in zip(by_defense["none"],
                                      by_defense["full"]):
            assert none_row["security"] < full_row["security"]
            assert "battery-depletion" in none_row["security_open"]
            assert "battery-depletion" not in full_row["security_open"]
            # The defense is scoring arithmetic, not silicon: the
            # priced physics of the cell is identical.
            for key in ("area_ge", "energy_uj", "latency_s",
                        "power_uw", "cycles"):
                assert none_row[key] == full_row[key]

    def test_axis_off_rows_are_unchanged(self, tmp_path):
        """With no defenses the rows carry no defense key at all —
        pareto.json for old specs stays byte-identical."""
        spec = make_spec()
        ExplorationEngine(str(tmp_path), spec, workers=1).run()
        rows, _ = analyze_space(str(tmp_path), spec)
        assert all("defense" not in row for row in rows)
