"""Tests for the radio model, device budgets and protocol comparison."""

import pytest

from repro.energy import (
    BAN_RADIO,
    ComputeEnergyTable,
    DeviceBudget,
    PACEMAKER_BUDGET,
    RadioModel,
    crossover_distance,
    protocol_energy,
)
from repro.protocols import OperationCount


class TestRadioModel:
    def test_tx_grows_with_distance(self):
        radio = RadioModel()
        assert radio.transmit_energy(100, 10.0) > radio.transmit_energy(100, 1.0)

    def test_tx_linear_in_bits(self):
        radio = RadioModel()
        assert radio.transmit_energy(200, 5.0) == pytest.approx(
            2 * radio.transmit_energy(100, 5.0)
        )

    def test_rx_independent_of_distance(self):
        radio = RadioModel()
        assert radio.receive_energy(100) == 100 * radio.electronics_j_per_bit

    def test_ban_radio_lossier(self):
        free = RadioModel()
        assert BAN_RADIO.transmit_energy(100, 3.0) > free.transmit_energy(100, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(electronics_j_per_bit=-1)
        with pytest.raises(ValueError):
            RadioModel(path_loss_exponent=0.5)
        with pytest.raises(ValueError):
            RadioModel().transmit_energy(-1, 1.0)
        with pytest.raises(ValueError):
            RadioModel().receive_energy(-1)


class TestDeviceBudget:
    def test_pacemaker_defaults(self):
        assert PACEMAKER_BUDGET.security_joules == pytest.approx(600.0)
        # 5% of a 12 kJ battery over 10 years ~ 1.9 uW average.
        assert PACEMAKER_BUDGET.average_security_power_watts < 5e-6

    def test_point_mults_per_day_are_plentiful(self):
        """At 5.1 uJ per PM, the implant affords thousands of protocol
        runs per day inside a 5% budget — the paper's design point is
        genuinely practical."""
        per_day = PACEMAKER_BUDGET.operations_per_day(5.1e-6)
        assert per_day > 10_000

    def test_lifetime_consistency(self):
        budget = DeviceBudget()
        rate = budget.operations_per_day(5.1e-6)
        assert budget.lifetime_years_at(rate, 5.1e-6) == pytest.approx(
            budget.target_lifetime_years
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceBudget(battery_joules=0)
        with pytest.raises(ValueError):
            DeviceBudget(security_fraction=0)
        with pytest.raises(ValueError):
            PACEMAKER_BUDGET.operations_per_day(0)
        with pytest.raises(ValueError):
            PACEMAKER_BUDGET.lifetime_years_at(0, 1e-6)


class TestProtocolEnergy:
    def test_pm_dominates_ecc_compute(self):
        table = ComputeEnergyTable()
        ops = OperationCount(point_multiplications=2,
                             modular_multiplications=1)
        energy = table.computation_energy(ops)
        assert energy == pytest.approx(2 * 5.1e-6, rel=0.01)

    def test_energy_decomposition(self):
        ops = OperationCount(aes_blocks=10, tx_bits=500, rx_bits=300)
        pe = protocol_energy("aes", ops, distance_m=2.0)
        assert pe.total_j == pytest.approx(
            pe.computation_j + pe.transmit_j + pe.receive_j
        )
        assert "aes" in str(pe)

    def test_ecc_beats_aes_in_compute_never(self):
        """At any distance, the tag-side compute gap favors AES."""
        table = ComputeEnergyTable()
        ecc = OperationCount(point_multiplications=2, modular_multiplications=1)
        aes = OperationCount(aes_blocks=12)
        assert table.computation_energy(aes) < table.computation_energy(ecc)


class TestCrossover:
    def test_crossover_exists_when_cheap_compute_talks_more(self):
        """A (moderately) chattier secret-key protocol loses at range.

        The bit surplus must be small enough that the compute premium
        of the public-key side exceeds the per-bit electronics energy
        at contact distance, else PKC wins everywhere (see the
        zero-crossover test below).
        """
        chatty_aes = OperationCount(aes_blocks=12, tx_bits=427, rx_bits=163)
        terse_ecc = OperationCount(point_multiplications=2,
                                   modular_multiplications=1,
                                   tx_bits=327, rx_bits=163)
        d = crossover_distance(chatty_aes, terse_ecc)
        assert 0 < d < float("inf")
        # Beyond the crossover, ECC's total is lower.
        beyond = protocol_energy("ecc", terse_ecc, d * 2).total_j
        aes_beyond = protocol_energy("aes", chatty_aes, d * 2).total_j
        assert beyond < aes_beyond

    def test_no_crossover_when_cheap_compute_also_terse(self):
        terse_aes = OperationCount(aes_blocks=12, tx_bits=300, rx_bits=300)
        ecc = OperationCount(point_multiplications=2, tx_bits=400, rx_bits=200)
        assert crossover_distance(terse_aes, ecc) == float("inf")

    def test_crossover_zero_when_heavy_wins_everywhere(self):
        # Degenerate: the "heavy" protocol actually computes less.
        a = OperationCount(aes_blocks=1000, tx_bits=4000)
        b = OperationCount(aes_blocks=1, tx_bits=100)
        assert crossover_distance(a, b) == 0.0
