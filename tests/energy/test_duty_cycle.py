"""Tests for the duty-cycle / battery-lifetime model."""

import pytest

from repro.energy import Activity, DutyCycleModel, PACEMAKER_BUDGET


class TestActivity:
    def test_daily_energy(self):
        a = Activity("auth", energy_joules=35e-6, times_per_day=24)
        assert a.daily_joules == pytest.approx(24 * 35e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Activity("x", -1, 1)
        with pytest.raises(ValueError):
            Activity("x", 1, -1)


class TestDutyCycleModel:
    def make_schedule(self):
        # The paper's scenario: hourly authenticated telemetry plus a
        # daily private identification, on top of a 1 uW sleep floor.
        return (
            DutyCycleModel(sleep_power_watts=1e-6)
            .add("aes session", 62e-6, times_per_day=24)
            .add("ph identification", 35e-6, times_per_day=1)
        )

    def test_sleep_dominates_sparse_schedules(self):
        model = self.make_schedule()
        shares = model.breakdown()
        assert shares["sleep"] > 0.9
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_average_power(self):
        model = self.make_schedule()
        expected = 1e-6 + (24 * 62e-6 + 35e-6) / 86_400
        assert model.average_power_watts == pytest.approx(expected)

    def test_paper_lifetime_band(self):
        """Section 1: 'the battery of a pacemaker will last for 5 to 15
        years' — the secured schedule fits inside that band."""
        model = self.make_schedule()
        years = model.lifetime_years(PACEMAKER_BUDGET.battery_joules * 0.05)
        # The 5% security slice alone sustains the schedule for decades;
        # crypto is not the lifetime bottleneck.
        assert years > 15

    def test_crypto_not_the_bottleneck(self):
        """Even 1000 protocol runs/day moves the average power less
        than the sleep floor itself."""
        heavy = (
            DutyCycleModel(sleep_power_watts=1e-6)
            .add("ph identification", 35e-6, times_per_day=1000)
        )
        assert heavy.average_power_watts < 2.0e-6

    def test_lifetime_validation(self):
        with pytest.raises(ValueError):
            DutyCycleModel().lifetime_years(0)

    def test_chaining(self):
        model = DutyCycleModel().add("a", 1e-6, 1).add("b", 2e-6, 2)
        assert len(model.activities) == 2
