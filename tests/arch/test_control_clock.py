"""Tests for mux-control encodings (Figure 3) and the clock-tree model."""

import pytest

from repro.arch import (
    BalancedEncoding,
    ClockGatingPolicy,
    ClockTreeModel,
    DEFAULT_MUX_FANOUT,
    UnbalancedEncoding,
)


class TestUnbalancedEncoding:
    def test_weight_on_transition_only(self):
        enc = UnbalancedEncoding()
        assert enc.transition_weight(0, 0) == 0.0
        assert enc.transition_weight(1, 1) == 0.0
        assert enc.transition_weight(0, 1) == DEFAULT_MUX_FANOUT
        assert enc.transition_weight(1, 0) == DEFAULT_MUX_FANOUT

    def test_iteration_weights_reveal_transitions(self):
        enc = UnbalancedEncoding(fanout=10)
        # MSB is 1; bits 1,0,0,1 -> transitions 0,1,0,1
        assert enc.iteration_weights([1, 0, 0, 1]) == [0.0, 10.0, 0.0, 10.0]

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            UnbalancedEncoding(fanout=0)


class TestBalancedEncoding:
    def test_constant_weight_without_mismatch(self):
        enc = BalancedEncoding()
        weights = {
            enc.transition_weight(a, b) for a in (0, 1) for b in (0, 1)
        }
        assert weights == {float(DEFAULT_MUX_FANOUT)}

    def test_iteration_weights_key_independent(self):
        enc = BalancedEncoding(fanout=100)
        assert enc.iteration_weights([1, 0, 1]) == enc.iteration_weights([0, 0, 0])

    def test_layout_mismatch_leaks_current_bit(self):
        enc = BalancedEncoding(fanout=100, layout_mismatch=0.05)
        w_one = enc.transition_weight(0, 1)
        w_zero = enc.transition_weight(0, 0)
        assert w_one == pytest.approx(105.0)
        assert w_zero == pytest.approx(100.0)
        # The leak depends on the *current* bit, not the transition.
        assert enc.transition_weight(1, 1) == w_one

    def test_negative_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BalancedEncoding(layout_mismatch=-0.1)


class TestClockTree:
    def test_always_on_is_constant(self):
        tree = ClockTreeModel(ClockGatingPolicy.ALWAYS_ON, 6)
        assert tree.cycle_contribution([]) == tree.cycle_contribution([0, 1])
        assert tree.is_constant_power

    def test_data_dependent_varies_with_writes(self):
        tree = ClockTreeModel(ClockGatingPolicy.DATA_DEPENDENT, 6)
        assert tree.cycle_contribution([]) == 0.0
        assert tree.cycle_contribution([0]) > 0.0
        assert not tree.is_constant_power

    def test_gating_saves_power(self):
        """The temptation of Section 6: gating lowers average power."""
        on = ClockTreeModel(ClockGatingPolicy.ALWAYS_ON, 6)
        gated = ClockTreeModel(ClockGatingPolicy.DATA_DEPENDENT, 6)
        assert gated.cycle_contribution([2]) < on.cycle_contribution([2])

    def test_branch_mismatch_distinguishes_registers(self):
        """...and why it leaks: different branches weigh differently."""
        tree = ClockTreeModel(ClockGatingPolicy.DATA_DEPENDENT, 6,
                              branch_mismatch=0.2)
        assert tree.cycle_contribution([0]) != tree.cycle_contribution([5])

    def test_zero_mismatch_makes_branches_equal(self):
        tree = ClockTreeModel(ClockGatingPolicy.DATA_DEPENDENT, 6,
                              branch_mismatch=0.0)
        assert tree.cycle_contribution([0]) == tree.cycle_contribution([5])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ClockTreeModel(ClockGatingPolicy.ALWAYS_ON, 0)
        with pytest.raises(ValueError):
            ClockTreeModel(ClockGatingPolicy.ALWAYS_ON, 6, branch_mismatch=-1)
