"""Tests for the cycle-level ECC coprocessor."""

import random

import pytest

from repro.arch import (
    BalancedEncoding,
    ClockGatingPolicy,
    CoprocessorConfig,
    EccCoprocessor,
    InvalidDigitSizeError,
    Opcode,
    UnbalancedEncoding,
)
from repro.ec import AffinePoint, NIST_B163, NIST_K163, montgomery_ladder


@pytest.fixture(scope="module")
def cop():
    return EccCoprocessor(CoprocessorConfig())


class TestCorrectness:
    def test_matches_reference_small_scalar(self, cop):
        g = cop.domain.generator
        trace = cop.point_multiply(0x1234, g, initial_z=1)
        assert trace.result == cop.domain.curve.multiply_naive(0x1234, g)

    def test_matches_reference_large_scalar(self, cop):
        rng = random.Random(5)
        g = cop.domain.generator
        k = cop.domain.scalar_ring.random_scalar(rng)
        trace = cop.point_multiply(k, g, rng=rng)
        assert trace.result == montgomery_ladder(
            cop.domain.curve, k, g, randomize_z=False
        )

    def test_randomization_does_not_change_result(self, cop):
        rng = random.Random(6)
        g = cop.domain.generator
        k = 0xDEADBEEF
        expected = cop.domain.curve.multiply_naive(k, g)
        for _ in range(3):
            assert cop.point_multiply(k, g, rng=rng).result == expected

    def test_arbitrary_subgroup_point(self, cop):
        rng = random.Random(7)
        curve = cop.domain.curve
        p = curve.double(curve.random_point(rng))  # clear the cofactor
        k = 0xABCDEF12345
        trace = cop.point_multiply(k, p, rng=rng)
        assert trace.result == curve.multiply_naive(k, p)

    def test_k_equals_order_minus_one(self, cop):
        g = cop.domain.generator
        trace = cop.point_multiply(cop.domain.order - 1, g, initial_z=1)
        assert trace.result == cop.domain.curve.negate(g)

    def test_x_only_mode(self, cop):
        g = cop.domain.generator
        trace = cop.point_multiply(0x777, g, initial_z=1, recover_y=False)
        expected = cop.domain.curve.multiply_naive(0x777, g)
        assert trace.result is None
        assert trace.result_x_only == expected.x

    def test_non_koblitz_curve_b163(self):
        cop_b = EccCoprocessor(CoprocessorConfig(domain=NIST_B163))
        assert cop_b.config.core_register_count == 7
        g = NIST_B163.generator
        trace = cop_b.point_multiply(0x5555, g, initial_z=1)
        assert trace.result == NIST_B163.curve.multiply_naive(0x5555, g)


class TestInputValidation:
    def test_scalar_out_of_range(self, cop):
        g = cop.domain.generator
        with pytest.raises(ValueError):
            cop.point_multiply(0, g, initial_z=1)
        with pytest.raises(ValueError):
            cop.point_multiply(cop.domain.order, g, initial_z=1)

    def test_degenerate_points_rejected(self, cop):
        with pytest.raises(ValueError):
            cop.point_multiply(5, AffinePoint.infinity(), initial_z=1)
        two_torsion = cop.domain.curve.lift_x(0)
        with pytest.raises(ValueError):
            cop.point_multiply(5, two_torsion, initial_z=1)

    def test_missing_rng(self, cop):
        with pytest.raises(ValueError):
            cop.point_multiply(5, cop.domain.generator)

    def test_bad_initial_z(self, cop):
        with pytest.raises(ValueError):
            cop.point_multiply(5, cop.domain.generator, initial_z=0)


class TestDigitSizeValidation:
    """Digit sizes are checked at construction, with a typed error,
    so a design-space sweep fails on the bad axis value — not deep
    inside a simulation."""

    def test_valid_range_accepted(self):
        for d in (1, 4, 163):
            assert CoprocessorConfig(digit_size=d).digit_size == d

    @pytest.mark.parametrize("bad", [0, -1, -4])
    def test_sub_one_rejected(self, bad):
        with pytest.raises(InvalidDigitSizeError, match="at least 1"):
            CoprocessorConfig(digit_size=bad)

    def test_exceeding_field_degree_rejected(self):
        with pytest.raises(InvalidDigitSizeError, match="exceeds"):
            CoprocessorConfig(digit_size=164)

    @pytest.mark.parametrize("bad", [4.0, "4", None, True])
    def test_non_integers_rejected(self, bad):
        with pytest.raises(InvalidDigitSizeError, match="integer"):
            CoprocessorConfig(digit_size=bad)

    def test_error_is_a_value_error(self):
        # Callers that predate the typed error still catch it.
        with pytest.raises(ValueError):
            CoprocessorConfig(digit_size=0)


class TestScalarRecoding:
    def test_fixed_length(self, cop):
        n = cop.domain.order
        target = n.bit_length() + 1
        for k in (1, 2, n // 2, n - 1):
            assert cop.recode_scalar(k).bit_length() == target

    def test_recoded_scalar_is_congruent(self, cop):
        n = cop.domain.order
        for k in (1, 12345, n - 2):
            assert cop.recode_scalar(k) % n == k


class TestConstantTime:
    def test_cycle_count_independent_of_key(self, cop):
        rng = random.Random(8)
        g = cop.domain.generator
        counts = set()
        for _ in range(4):
            k = cop.domain.scalar_ring.random_scalar(rng)
            counts.add(cop.point_multiply(k, g, initial_z=1).cycles)
        # Sparse and dense keys too.
        counts.add(cop.point_multiply(1, g, initial_z=1).cycles)
        counts.add(cop.point_multiply(cop.domain.order - 2, g, initial_z=1).cycles)
        assert len(counts) == 1

    def test_iteration_count_constant(self, cop):
        g = cop.domain.generator
        t1 = cop.point_multiply(1, g, initial_z=1)
        t2 = cop.point_multiply(cop.domain.order - 2, g, initial_z=1)
        assert len(t1.iterations) == len(t2.iterations)
        assert len(t1.iterations) == cop.iterations_per_multiplication

    def test_instruction_sequence_key_independent(self, cop):
        """Same opcodes in the same order for any key — only the mux
        routing (operand fields) differs."""
        g = cop.domain.generator
        t1 = cop.point_multiply(0x3A7, g, initial_z=1)
        t2 = cop.point_multiply(0x111, g, initial_z=1)
        ops1 = [i.opcode for i in t1.instructions]
        ops2 = [i.opcode for i in t2.instructions]
        assert ops1 == ops2

    def test_cycles_match_paper_operating_point(self, cop):
        """~85.7k cycles -> 9.89 PM/s at 847.5 kHz (paper: 9.8)."""
        cycles = cop.cycles_per_point_multiplication()
        throughput = 847_500 / cycles
        assert abs(throughput - 9.8) / 9.8 < 0.05


class TestExecutionTrace:
    def test_channels_consistent(self, cop):
        trace = cop.point_multiply(0x99, cop.domain.generator, initial_z=1)
        trace.check_consistency()
        assert trace.cycles == len(trace.register)

    def test_key_bits_recorded(self, cop):
        k = 0x1357
        trace = cop.point_multiply(k, cop.domain.generator, initial_z=1)
        padded = cop.recode_scalar(k)
        expected = [int(c) for c in bin(padded)[3:]]
        assert trace.key_bits == expected

    def test_max_iterations_truncates(self, cop):
        trace = cop.point_multiply(
            0x1357, cop.domain.generator, initial_z=1, max_iterations=5
        )
        assert len(trace.iterations) == 5
        assert trace.result is None
        assert trace.result_x_only is None

    def test_replay_matches_point_multiply(self, cop):
        g = cop.domain.generator
        k = 0xBEEF
        padded = cop.recode_scalar(k)
        direct = cop.point_multiply(k, g, initial_z=7, max_iterations=4)
        replay = cop.replay_padded(padded, g, initial_z=7, max_iterations=4)
        assert replay.datapath == direct.datapath
        assert replay.register == direct.register
        assert replay.key_bits == direct.key_bits

    def test_replay_rejects_tiny_scalar(self, cop):
        with pytest.raises(ValueError):
            cop.replay_padded(1, cop.domain.generator, initial_z=1)

    def test_total_activity_positive(self, cop):
        trace = cop.point_multiply(0x5, cop.domain.generator, initial_z=1)
        assert trace.total_activity > 0


class TestCountermeasureConfiguration:
    def test_control_channel_reflects_encoding(self):
        k = 0b110010101  # transitions exist
        cop_u = EccCoprocessor(
            CoprocessorConfig(mux_encoding=UnbalancedEncoding(),
                              randomize_z=False)
        )
        cop_b = EccCoprocessor(
            CoprocessorConfig(mux_encoding=BalancedEncoding(),
                              randomize_z=False)
        )
        g = cop_u.domain.generator
        tr_u = cop_u.point_multiply(k, g, max_iterations=10)
        tr_b = cop_b.point_multiply(k, g, max_iterations=10)
        ctrl_u = [c for c in tr_u.control if c > 0]
        ctrl_b = [c for c in tr_b.control if c > 0]
        # Unbalanced: spikes only on transitions; balanced: every iteration.
        assert len(ctrl_u) < len(ctrl_b)
        assert len(set(ctrl_b)) == 1

    def test_clock_gating_changes_clock_channel(self):
        base = CoprocessorConfig(randomize_z=False)
        gated = CoprocessorConfig(
            randomize_z=False, clock_gating=ClockGatingPolicy.DATA_DEPENDENT
        )
        g = NIST_K163.generator
        tr_on = EccCoprocessor(base).point_multiply(5, g, max_iterations=2)
        tr_gated = EccCoprocessor(gated).point_multiply(5, g, max_iterations=2)
        assert len(set(tr_on.clock)) == 1      # constant
        assert len(set(tr_gated.clock)) > 1    # varies with writes
        assert sum(tr_gated.clock) < sum(tr_on.clock)  # saves power

    def test_input_isolation_reduces_datapath_activity(self):
        iso = CoprocessorConfig(randomize_z=False, input_isolation=True)
        leaky = CoprocessorConfig(randomize_z=False, input_isolation=False)
        g = NIST_K163.generator
        tr_iso = EccCoprocessor(iso).point_multiply(0x55, g, max_iterations=3)
        tr_leaky = EccCoprocessor(leaky).point_multiply(0x55, g, max_iterations=3)
        assert sum(tr_leaky.datapath) > sum(tr_iso.datapath)

    def test_glitch_factor_increases_activity(self):
        quiet = CoprocessorConfig(randomize_z=False, glitch_factor=0.0)
        glitchy = CoprocessorConfig(randomize_z=False, glitch_factor=0.5)
        g = NIST_K163.generator
        tr_q = EccCoprocessor(quiet).point_multiply(0x55, g, max_iterations=3)
        tr_g = EccCoprocessor(glitchy).point_multiply(0x55, g, max_iterations=3)
        assert sum(tr_g.datapath) > sum(tr_q.datapath)

    def test_dedicated_squarer_saves_cycles(self):
        slow = EccCoprocessor(CoprocessorConfig(randomize_z=False))
        fast = EccCoprocessor(
            CoprocessorConfig(randomize_z=False, dedicated_squarer=True)
        )
        g = NIST_K163.generator
        assert (
            fast.point_multiply(5, g, max_iterations=3).cycles
            < slow.point_multiply(5, g, max_iterations=3).cycles
        )

    def test_six_core_registers_on_koblitz(self):
        assert CoprocessorConfig().core_register_count == 6
