"""Property-based tests: the coprocessor against the golden model.

Hypothesis drives the device with arbitrary scalars and randomization
values; every property the constant-time, mux-routed, randomized
design promises must hold for all of them.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.ec import NIST_K163

COP = EccCoprocessor(CoprocessorConfig())
GOLDEN = NIST_K163.curve.multiply_naive
G = NIST_K163.generator

scalars = st.integers(min_value=1, max_value=NIST_K163.order - 1)
z_values = st.integers(min_value=1, max_value=(1 << 163) - 1)


class TestCoprocessorProperties:
    @given(scalars, z_values)
    @settings(max_examples=8, deadline=None)
    def test_correct_for_any_scalar_and_randomization(self, k, z0):
        trace = COP.point_multiply(k, G, initial_z=z0)
        assert trace.result == GOLDEN(k, G)

    @given(scalars)
    @settings(max_examples=6, deadline=None)
    def test_cycles_and_schedule_constant(self, k):
        trace = COP.point_multiply(k, G, initial_z=1)
        reference = COP.point_multiply(1, G, initial_z=1)
        assert trace.cycles == reference.cycles
        assert [i.opcode for i in trace.instructions] == \
            [i.opcode for i in reference.instructions]

    @given(scalars, z_values, z_values)
    @settings(max_examples=5, deadline=None)
    def test_randomization_never_changes_result(self, k, z1, z2):
        a = COP.point_multiply(k, G, initial_z=z1, recover_y=False)
        b = COP.point_multiply(k, G, initial_z=z2, recover_y=False)
        assert a.result_x_only == b.result_x_only

    @given(scalars)
    @settings(max_examples=5, deadline=None)
    def test_recoding_congruence(self, k):
        padded = COP.recode_scalar(k)
        assert padded % NIST_K163.order == k
        assert padded.bit_length() == NIST_K163.order.bit_length() + 1

    @given(scalars)
    @settings(max_examples=4, deadline=None)
    def test_x_only_agrees_with_full_recovery(self, k):
        full = COP.point_multiply(k, G, initial_z=1, recover_y=True)
        x_only = COP.point_multiply(k, G, initial_z=1, recover_y=False)
        assert full.result.x == x_only.result_x_only


class TestCrossAlgorithmAgreement:
    """All four scalar-mult implementations must agree pairwise."""

    @given(st.integers(min_value=1, max_value=1 << 40))
    @settings(max_examples=5, deadline=None)
    def test_four_way_agreement(self, k):
        from repro.ec import (
            double_and_add_always,
            montgomery_ladder,
            tnaf_multiply,
        )

        curve = NIST_K163.curve
        reference = GOLDEN(k, G)
        assert montgomery_ladder(curve, k, G, randomize_z=False) == reference
        assert double_and_add_always(curve, k, G) == reference
        assert tnaf_multiply(curve, k, G) == reference
        trace = COP.point_multiply(k, G, initial_z=1)
        assert trace.result == reference

    @given(st.integers(min_value=1, max_value=1 << 40),
           st.integers(min_value=1, max_value=1 << 40))
    @settings(max_examples=4, deadline=None)
    def test_homomorphism_through_the_chip(self, j, k):
        """(j + k)G computed on-chip equals jG + kG off-chip."""
        curve = NIST_K163.curve
        combined = COP.point_multiply(j + k, G, initial_z=1).result
        split = curve.add(GOLDEN(j, G), GOLDEN(k, G))
        assert combined == split


class TestProtocolRoundtripProperty:
    @given(st.integers(min_value=1, max_value=NIST_K163.order - 1))
    @settings(max_examples=3, deadline=None)
    def test_identification_accepts_for_any_tag_secret(self, x):
        from repro.protocols import (
            PeetersHermansReader,
            PeetersHermansTag,
            run_identification,
        )

        rng = random.Random(x & 0xFFFF)
        reader = PeetersHermansReader(
            NIST_K163, NIST_K163.scalar_ring.random_scalar(rng)
        )
        tag = PeetersHermansTag(NIST_K163, x, reader.public)
        reader.register(0, tag.identity_point)
        assert run_identification(tag, reader, rng).accepted
