"""Tests for the instruction set and its constant-time timing."""

import pytest

from repro.arch import Instruction, InstructionTiming, Opcode


class TestTimingTable:
    def test_paper_design_point(self):
        timing = InstructionTiming(m=163, digit_size=4)
        assert timing.mul_datapath_cycles == 41
        assert timing.cycles(Opcode.MUL) == 41 + timing.fetch_overhead

    def test_squaring_on_multiplier(self):
        timing = InstructionTiming(m=163, digit_size=4, dedicated_squarer=False)
        assert timing.cycles(Opcode.SQR) == timing.cycles(Opcode.MUL)

    def test_dedicated_squarer(self):
        timing = InstructionTiming(m=163, digit_size=4, dedicated_squarer=True)
        assert timing.cycles(Opcode.SQR) == 1 + timing.fetch_overhead
        assert timing.cycles(Opcode.SQR) < timing.cycles(Opcode.MUL)

    def test_single_cycle_ops(self):
        timing = InstructionTiming(m=163, digit_size=4, fetch_overhead=2)
        for op in (Opcode.ADD, Opcode.MOV, Opcode.LDI):
            assert timing.cycles(op) == 3

    @pytest.mark.parametrize("d,expected", [(1, 163), (2, 82), (4, 41), (8, 21)])
    def test_digit_size_scaling(self, d, expected):
        assert InstructionTiming(m=163, digit_size=d).mul_datapath_cycles == expected

    def test_timing_is_data_independent(self):
        """The timing table has no operand inputs at all — the
        architecture-level constant-time property by construction."""
        timing = InstructionTiming(m=163, digit_size=4)
        import inspect

        signature = inspect.signature(timing.cycles)
        assert list(signature.parameters) == ["opcode"]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InstructionTiming(m=163, digit_size=0)
        with pytest.raises(ValueError):
            InstructionTiming(m=163, digit_size=200)
        with pytest.raises(ValueError):
            InstructionTiming(m=163, digit_size=4, fetch_overhead=-1)


class TestInstruction:
    def test_repr(self):
        instr = Instruction(Opcode.MUL, rd=0, ra=1, rb=2, cycles=49)
        assert "mul" in repr(instr)
        assert "r0" in repr(instr)
        assert "49" in repr(instr)

    def test_repr_without_operands(self):
        instr = Instruction(Opcode.LDI, rd=4, cycles=9)
        assert "r4" in repr(instr)
        assert "r-1" not in repr(instr)
