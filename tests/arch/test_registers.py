"""Tests for the tracked register file."""

import pytest

from repro.arch import RegisterFile


class TestRegisterFile:
    def test_initial_state_is_zero(self):
        rf = RegisterFile(6, 163)
        assert all(v == 0 for v in rf.snapshot())

    def test_write_and_read(self):
        rf = RegisterFile(6, 163)
        rf.write(2, 0xDEAD, cycle=10)
        assert rf.read(2) == 0xDEAD
        assert rf.read(0) == 0

    def test_write_logs_hamming_distance(self):
        rf = RegisterFile(4, 16)
        rf.write(0, 0b1111, cycle=1)
        rf.write(0, 0b1001, cycle=2)
        assert [w.hamming_distance for w in rf.writes] == [4, 2]
        assert rf.total_write_toggles == 6

    def test_write_event_fields(self):
        rf = RegisterFile(4, 16)
        event = rf.write(3, 0xAB, cycle=7)
        assert event.cycle == 7
        assert event.register == 3
        assert event.old_value == 0
        assert event.new_value == 0xAB

    def test_out_of_range_index(self):
        rf = RegisterFile(4, 16)
        with pytest.raises(IndexError):
            rf.read(4)
        with pytest.raises(IndexError):
            rf.write(-1, 0, cycle=0)

    def test_oversized_value_rejected(self):
        rf = RegisterFile(4, 8)
        with pytest.raises(ValueError):
            rf.write(0, 256, cycle=0)

    def test_reset(self):
        rf = RegisterFile(4, 16)
        rf.write(0, 5, cycle=0)
        rf.reset()
        assert rf.read(0) == 0
        assert rf.writes == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterFile(0, 16)
        with pytest.raises(ValueError):
            RegisterFile(4, 0)

    def test_repr(self):
        assert "6 x 163" in repr(RegisterFile(6, 163))
