"""Tests for the gate-count area model."""

import pytest

from repro.arch import (
    AES_ENC_GATES,
    ECC_CORE_GATES_REFERENCE,
    SHA1_GATES,
    ecc_core_area,
)


class TestAreaModel:
    def test_default_matches_paper_12k(self):
        """The paper: 'an ECC core uses about 12k gates' [10]."""
        area = ecc_core_area()
        assert abs(area.total - ECC_CORE_GATES_REFERENCE) / ECC_CORE_GATES_REFERENCE < 0.10

    def test_breakdown_sums_to_total(self):
        area = ecc_core_area()
        parts = area.as_dict()
        total = parts.pop("total")
        assert sum(parts.values()) == pytest.approx(total)

    def test_registers_dominate(self):
        """Six 163-bit registers are the largest single block."""
        area = ecc_core_area()
        assert area.registers > area.multiplier
        assert area.registers > 0.4 * area.total

    def test_area_grows_with_digit_size(self):
        areas = [ecc_core_area(digit_size=d).total for d in (1, 2, 4, 8, 16)]
        assert areas == sorted(areas)

    def test_dedicated_squarer_costs_area(self):
        base = ecc_core_area(dedicated_squarer=False)
        with_squarer = ecc_core_area(dedicated_squarer=True)
        assert with_squarer.total > base.total
        assert with_squarer.squarer > 0
        assert base.squarer == 0

    def test_extra_register_costs_about_one_kge(self):
        """The 7th (sqrt b) register on non-Koblitz curves ~ 1 kGE."""
        six = ecc_core_area(register_count=6).total
        seven = ecc_core_area(register_count=7).total
        assert 900 < seven - six < 1100

    def test_larger_field_costs_more(self):
        assert ecc_core_area(m=233).total > ecc_core_area(m=163).total

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ecc_core_area(digit_size=0)
        with pytest.raises(ValueError):
            ecc_core_area(m=4, digit_size=8)
        with pytest.raises(ValueError):
            ecc_core_area(register_count=0)

    def test_reference_constants(self):
        """The published anchors of the Section 4 discussion."""
        assert SHA1_GATES == 5527
        assert AES_ENC_GATES < SHA1_GATES < ECC_CORE_GATES_REFERENCE

    def test_hash_cheaper_than_ecc_but_not_free(self):
        """Section 4: hashes are NOT negligibly cheap vs an ECC core —
        SHA-1 is nearly half the ECC core's size."""
        assert SHA1_GATES > 0.4 * ecc_core_area().total

    def test_digit_size_growth_is_the_multiplier(self):
        """Doubling d grows the digit-serial multiplier; the register
        file and control do not depend on the digit size."""
        sweep = [ecc_core_area(digit_size=d) for d in (1, 2, 4, 8, 16)]
        multipliers = [a.multiplier for a in sweep]
        assert multipliers == sorted(multipliers)
        assert multipliers[0] < multipliers[-1]
        for a, b in zip(sweep, sweep[1:]):
            assert b.registers == a.registers
            assert b.total - a.total == pytest.approx(
                b.multiplier - a.multiplier)

    def test_papers_choice_anchors_the_12_kge_core(self):
        """The d = 4 configuration is what the '~12k gates' reference
        describes; no smaller digit size reaches the anchor."""
        d4 = ecc_core_area(digit_size=4).total
        assert d4 == pytest.approx(ECC_CORE_GATES_REFERENCE, rel=0.10)
        assert ecc_core_area(digit_size=1).total < d4
