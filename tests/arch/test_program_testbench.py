"""Tests for microcode analysis and the equivalence testbench."""

import random

import pytest

from repro.arch import (
    CoprocessorConfig,
    EccCoprocessor,
    EquivalenceTestbench,
    Opcode,
    analyze_program,
    format_listing,
)


@pytest.fixture(scope="module")
def short_trace():
    coprocessor = EccCoprocessor(CoprocessorConfig())
    return coprocessor, coprocessor.point_multiply(
        0x1357, coprocessor.domain.generator, initial_z=1, max_iterations=3
    )


class TestProgramAnalysis:
    def test_statistics_totals(self, short_trace):
        coprocessor, trace = short_trace
        stats = analyze_program(trace.instructions,
                                coprocessor.config.fetch_overhead)
        assert stats.instruction_count == len(trace.instructions)
        assert stats.total_cycles == trace.cycles
        assert sum(stats.opcode_histogram.values()) == stats.instruction_count
        assert sum(stats.opcode_cycles.values()) == stats.total_cycles

    def test_malu_occupancy_in_range(self, short_trace):
        coprocessor, trace = short_trace
        stats = analyze_program(trace.instructions,
                                coprocessor.config.fetch_overhead)
        # MUL/SQR dominate a ladder iteration (9 of 12 instructions).
        assert 0.5 < stats.malu_occupancy < 1.0

    def test_ladder_opcode_mix(self, short_trace):
        __, trace = short_trace
        stats = analyze_program(trace.instructions)
        assert stats.opcode_histogram["mul"] >= 3 * 5  # 5 MULs/iteration
        assert stats.opcode_histogram["sqr"] >= 3 * 4
        assert "ldi" in stats.opcode_histogram  # prologue loads

    def test_str_rendering(self, short_trace):
        coprocessor, trace = short_trace
        text = str(analyze_program(trace.instructions,
                                   coprocessor.config.fetch_overhead))
        assert "MALU occupancy" in text
        assert "mul" in text

    def test_listing_symbolic_names(self, short_trace):
        __, trace = short_trace
        listing = format_listing(trace.instructions, limit=10)
        assert "XB" in listing
        assert "mul" in listing or "ldi" in listing
        assert "... (" in listing  # truncation marker

    def test_listing_full(self, short_trace):
        __, trace = short_trace
        listing = format_listing(trace.instructions)
        assert len(listing.splitlines()) == len(trace.instructions)

    def test_listing_identical_for_different_keys(self):
        """The constant-time property at the listing level: opcode and
        cycle columns match for any key (operands differ via the mux)."""
        coprocessor = EccCoprocessor(CoprocessorConfig())

        def opcode_cycle_columns(k):
            trace = coprocessor.point_multiply(
                k, coprocessor.domain.generator, initial_z=1,
                max_iterations=4,
            )
            return [(i.opcode, i.cycles, i.start_cycle)
                    for i in trace.instructions]

        assert opcode_cycle_columns(0x3A7) == opcode_cycle_columns(0x155)


class TestEquivalenceTestbench:
    def test_campaign_passes_on_default_design(self):
        bench = EquivalenceTestbench()
        report = bench.run_campaign(runs=3, rng=random.Random(1))
        assert report.all_passed
        assert report.runs == 3 + 6  # corners included

    def test_coverage_goals_hit(self):
        bench = EquivalenceTestbench()
        report = bench.run_campaign(runs=2, rng=random.Random(2))
        points = report.coverage_points
        assert points["bit_zero"] and points["bit_one"]
        assert points["min_scalar"] and points["max_scalar"]
        assert points["sparse_key"]
        assert report.coverage >= 5 / 6

    def test_opcodes_covered(self):
        bench = EquivalenceTestbench()
        report = bench.run_campaign(runs=1, rng=random.Random(3),
                                    include_corners=False)
        assert {Opcode.MUL, Opcode.SQR, Opcode.ADD, Opcode.LDI} <= \
            report.opcodes_seen

    def test_report_str(self):
        bench = EquivalenceTestbench()
        report = bench.run_campaign(runs=1, rng=random.Random(4),
                                    include_corners=False)
        assert "PASS" in str(report)

    def test_mismatch_detection(self):
        """A corrupted golden comparison is reported, not swallowed."""
        bench = EquivalenceTestbench()
        # Sabotage: make the golden model lie.
        bench._golden = lambda k, p: p
        rng = random.Random(5)
        ok = bench.check(12345, bench.dut.domain.generator, rng)
        assert not ok
        assert not bench.report.all_passed
        assert "FAIL" in str(bench.report)
