"""Tests for the deterministic body-area channel simulator."""

import pytest

from repro.channel import (
    BodyAreaChannel,
    LossProfile,
    ber_from_radio,
    derive_channel_seed,
)
from repro.energy.radio import BAN_RADIO, RadioModel


class TestSeeding:
    def test_derivation_is_stable(self):
        a = derive_channel_seed(1, "drop", 2, 3, 4)
        assert a == derive_channel_seed(1, "drop", 2, 3, 4)

    def test_every_coordinate_matters(self):
        base = derive_channel_seed(1, "drop", 2, 3, 4)
        assert base != derive_channel_seed(9, "drop", 2, 3, 4)
        assert base != derive_channel_seed(1, "jitter", 2, 3, 4)
        assert base != derive_channel_seed(1, "drop", 9, 3, 4)
        assert base != derive_channel_seed(1, "drop", 2, 9, 4)
        assert base != derive_channel_seed(1, "drop", 2, 3, 9)


class TestBerFromRadio:
    def test_clean_at_contact_range(self):
        assert ber_from_radio(RadioModel(), 0.05) < 1e-10

    def test_monotone_in_distance(self):
        radio = RadioModel()
        distances = [0.25, 0.5, 1.0, 2.0, 5.0]
        bers = [ber_from_radio(radio, d) for d in distances]
        assert bers == sorted(bers)
        assert bers[-1] <= 0.5

    def test_body_area_gamma_degrades_faster(self):
        """The gamma=3 around-the-body profile errors out sooner."""
        assert ber_from_radio(BAN_RADIO, 0.8) > \
            ber_from_radio(RadioModel(), 0.8)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ber_from_radio(RadioModel(), -1.0)


class TestLossProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossProfile(frame_loss=1.0)
        with pytest.raises(ValueError):
            LossProfile(bit_error_rate=1.5)
        with pytest.raises(ValueError):
            LossProfile(base_delay_s=-1.0)

    def test_lossless_predicate(self):
        assert LossProfile().lossless
        assert not LossProfile(frame_loss=0.1).lossless

    def test_scaled_keeps_other_rates(self):
        profile = LossProfile(duplicate_rate=0.25)
        scaled = profile.scaled(0.1)
        assert scaled.frame_loss == 0.1
        assert scaled.duplicate_rate == 0.25


class TestChannel:
    def test_lossless_channel_delivers_everything(self):
        channel = BodyAreaChannel(LossProfile(), seed=1)
        for frame in range(20):
            deliveries = channel.transmit(b"hello", frame, 0, now=1.0)
            assert len(deliveries) == 1
            assert deliveries[0].data == b"hello"
            assert deliveries[0].at > 1.0
        assert channel.stats.frames_dropped == 0

    def test_deterministic_replay(self):
        def run():
            channel = BodyAreaChannel(
                LossProfile(frame_loss=0.3, bit_error_rate=0.01,
                            duplicate_rate=0.2, reorder_rate=0.2),
                seed=7, session=3)
            schedule = []
            for frame in range(40):
                for delivery in channel.transmit(b"x" * 19, frame, 0):
                    schedule.append((frame, delivery.at, delivery.data))
            return schedule, channel.stats

        first_schedule, first_stats = run()
        second_schedule, second_stats = run()
        assert first_schedule == second_schedule
        assert first_stats == second_stats

    def test_seed_changes_the_weather(self):
        profile = LossProfile(frame_loss=0.5)
        a = BodyAreaChannel(profile, seed=1)
        b = BodyAreaChannel(profile, seed=2)
        pattern_a = [bool(a.transmit(b"p", f, 0)) for f in range(32)]
        pattern_b = [bool(b.transmit(b"p", f, 0)) for f in range(32)]
        assert pattern_a != pattern_b

    def test_loss_rate_is_roughly_honoured(self):
        channel = BodyAreaChannel(LossProfile(frame_loss=0.25), seed=3)
        drops = sum(1 for f in range(400)
                    if not channel.transmit(b"p", f, 0))
        assert 60 <= drops <= 140  # 100 expected

    def test_duplicates_arrive_later_and_flagged(self):
        channel = BodyAreaChannel(LossProfile(duplicate_rate=1.0), seed=4)
        deliveries = channel.transmit(b"p", 0, 0, now=0.0)
        assert len(deliveries) == 2
        assert deliveries[1].duplicate and not deliveries[0].duplicate
        assert deliveries[1].at > deliveries[0].at

    def test_corruption_flips_bits_not_length(self):
        channel = BodyAreaChannel(LossProfile(bit_error_rate=0.05), seed=5)
        original = bytes(range(40))
        corrupted = 0
        for frame in range(50):
            for delivery in channel.transmit(original, frame, 0):
                assert len(delivery.data) == len(original)
                if delivery.data != original:
                    corrupted += 1
                    assert delivery.corrupted
        assert corrupted > 0
        assert channel.stats.frames_corrupted == corrupted

    def test_attempts_see_independent_weather(self):
        """A retransmission must not hit the same deterministic fate."""
        channel = BodyAreaChannel(LossProfile(frame_loss=0.5), seed=6)
        fates = {(frame, attempt): bool(channel.transmit(b"p", frame,
                                                         attempt))
                 for frame in range(16) for attempt in range(2)}
        assert any(fates[(f, 0)] != fates[(f, 1)] for f in range(16))

    def test_stats_count_sender_bits_even_for_drops(self):
        channel = BodyAreaChannel(LossProfile(frame_loss=0.999999,
                                              base_delay_s=0.0), seed=7)
        channel.transmit(b"12345678", 0, 0)
        assert channel.stats.bits_sent == 64


class TestDuplicateReorderRoundTrip:
    def test_frames_survive_duplication_and_reordering(self):
        """With BER 0, a channel that duplicates and reorders must
        still deliver every copy byte-identical: arrival order and
        multiplicity change, content never does."""
        from repro.channel import Frame, decode_frame, encode_frame

        profile = LossProfile(duplicate_rate=1.0, reorder_rate=0.5,
                              bit_error_rate=0.0, frame_loss=0.0)
        channel = BodyAreaChannel(profile, seed=11, session=3)
        sent = []
        arrivals = []
        for index in range(12):
            frame = Frame(session=3, epoch=0, round_index=index,
                          attempt=0, sender=index % 2, label="e",
                          payload=bytes([index]) * 4)
            sent.append(frame)
            arrivals.extend(channel.transmit(encode_frame(frame),
                                             index, 0, now=index * 0.01))
        # Every transmit echoed: two copies per frame, none corrupted.
        assert len(arrivals) == 2 * len(sent)
        assert channel.stats.frames_duplicated == len(sent)
        assert channel.stats.frames_reordered > 0
        # Decode in arrival order: every copy parses to a sent frame,
        # and each sent frame arrives exactly twice.
        decoded = [decode_frame(d.data)
                   for d in sorted(arrivals, key=lambda d: d.at)]
        assert all(f in sent for f in decoded)
        assert sorted(decoded.count(f) for f in sent) == [2] * len(sent)
