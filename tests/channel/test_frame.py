"""Tests for the CRC-protected frame codec and wire encodings."""

import pytest

from repro.channel import (
    Frame,
    FrameCorruptedError,
    FrameFormatError,
    compress_point,
    crc16,
    decode_frame,
    decompress_point,
    encode_frame,
    frame_overhead_bits,
    int_from_bytes,
    int_to_bytes,
    point_width_bytes,
    scalar_width_bytes,
)
from repro.ec import NIST_K163
from repro.ec.curves import TOY_B17


def make_frame(**overrides):
    fields = dict(session=0xDEADBEEF, epoch=2, round_index=1, attempt=0,
                  sender=1, label="e", payload=b"\x01\x02\x03")
    fields.update(overrides)
    return Frame(**fields)


class TestCodec:
    def test_round_trip(self):
        frame = make_frame()
        assert decode_frame(encode_frame(frame)) == frame

    def test_round_trip_empty_payload(self):
        frame = make_frame(payload=b"", label="ack")
        assert decode_frame(encode_frame(frame)) == frame

    def test_crc16_known_vector(self):
        """CRC-16/CCITT-FALSE check value for '123456789'."""
        assert crc16(b"123456789") == 0x29B1

    def test_every_single_bit_flip_is_detected(self):
        """The CRC catches any single-bit corruption of the frame."""
        data = encode_frame(make_frame())
        for bit in range(len(data) * 8):
            mutated = bytearray(data)
            mutated[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises((FrameCorruptedError, FrameFormatError)):
                decode_frame(bytes(mutated))

    def test_truncation_rejected(self):
        data = encode_frame(make_frame())
        with pytest.raises((FrameFormatError, FrameCorruptedError)):
            decode_frame(data[:-3])  # CRC no longer lines up
        with pytest.raises(FrameFormatError):
            decode_frame(data[:4])  # below the fixed header

    def test_bad_version_rejected(self):
        data = bytearray(encode_frame(make_frame()))
        data[0] ^= 0x55
        with pytest.raises((FrameFormatError, FrameCorruptedError)):
            decode_frame(bytes(data))

    def test_overhead_accounts_for_label(self):
        assert frame_overhead_bits("ss") == frame_overhead_bits("s") + 8


class TestFieldEncodings:
    def test_int_round_trip(self):
        width = scalar_width_bytes(NIST_K163.order)
        for value in (1, 0xABCDEF, NIST_K163.order - 1):
            assert int_from_bytes(int_to_bytes(value, width)) == value

    def test_int_too_wide_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(1 << 16, 2)

    @pytest.mark.parametrize("domain", [TOY_B17, NIST_K163],
                            ids=lambda d: d.name)
    def test_point_compression_round_trip(self, domain):
        import random

        rng = random.Random(5)
        for _ in range(3):
            k = domain.scalar_ring.random_scalar(rng)
            point = domain.curve.multiply_naive(k, domain.generator)
            data = compress_point(domain.curve, point)
            assert len(data) == point_width_bytes(domain.field.m)
            assert decompress_point(domain.curve, data) == point

    def test_off_curve_x_rejected(self):
        width = point_width_bytes(TOY_B17.field.m)
        for x in range(2, 40):
            data = int_to_bytes(x, width - 1) + bytes([0])
            if TOY_B17.curve.lift_x(x) is None:
                with pytest.raises(FrameFormatError):
                    decompress_point(TOY_B17.curve, data)
                return
        pytest.skip("no off-curve x found in probe range")


class TestCrcExhaustive:
    """CRC-16/CCITT-FALSE has Hamming distance 4 at these block
    lengths, so *every* 1- and 2-bit corruption of a small frame must
    be detected — not probabilistically, exhaustively."""

    @staticmethod
    def _frames(payload_sizes):
        for size in payload_sizes:
            payload = bytes(range(size))
            yield encode_frame(make_frame(label="s", payload=payload))

    def test_all_single_bit_corruptions_detected(self):
        for data in self._frames(range(9)):  # payloads 0..8 bytes
            for bit in range(len(data) * 8):
                mutated = bytearray(data)
                mutated[bit // 8] ^= 1 << (bit % 8)
                with pytest.raises((FrameCorruptedError, FrameFormatError)):
                    decode_frame(bytes(mutated))

    def test_all_double_bit_corruptions_detected(self):
        # Every unordered pair of bit positions, at the smallest and
        # largest small-frame sizes (~24k decodes; the sizes between
        # add nothing the distance-4 argument doesn't already cover).
        for data in self._frames((0, 8)):
            n_bits = len(data) * 8
            for first in range(n_bits):
                base = bytearray(data)
                base[first // 8] ^= 1 << (first % 8)
                for second in range(first + 1, n_bits):
                    mutated = bytearray(base)
                    mutated[second // 8] ^= 1 << (second % 8)
                    with pytest.raises(
                            (FrameCorruptedError, FrameFormatError)):
                        decode_frame(bytes(mutated))
