"""Tests for the ``power`` CLI group: narratives, soaks, exit codes."""

import json

import pytest

from repro.cli import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_OK,
    cmd_power_run,
    main,
)


class TestPowerRun:
    def test_narrates_schedules_and_attack(self):
        text = cmd_power_run(schedules=2)
        assert "stable power: accepted" in text
        assert text.count("IDENTICAL") >= 2 + 8  # seeded + aimed cuts
        assert "DIVERGED" not in text
        assert "naive tag BROKEN" in text
        assert "checkpointing tag held" in text

    def test_via_main(self, capsys):
        code = main(["power", "run", "--schedules", "1", "--no-attack"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "adversarially aimed" in out
        assert "field-cutting" not in out

    def test_unknown_curve_fails(self, capsys):
        code = main(["power", "run", "--curve", "NO-SUCH"])
        assert code == EXIT_FAILED
        assert "power error" in capsys.readouterr().err


class TestPowerSoak:
    def test_clean_soak_writes_summary(self, tmp_path, capsys):
        directory = tmp_path / "soak"
        code = main(["power", "soak", "--dir", str(directory),
                     "--sessions", "4", "--workers", "1"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "power soak" in out
        summary = json.loads((directory / "summary.json").read_text())
        assert summary["completed"] == 4
        assert summary["accepted"] == 4
        assert set(summary["outcomes"]) == {"0", "1", "2", "3"}

    def test_summary_invariant_across_worker_counts(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        assert main(["power", "soak", "--dir", str(a),
                     "--sessions", "4", "--workers", "1"]) == EXIT_OK
        assert main(["power", "soak", "--dir", str(b),
                     "--sessions", "4", "--workers", "3"]) == EXIT_OK
        assert (a / "summary.json").read_bytes() == \
            (b / "summary.json").read_bytes()

    def test_exhausted_budget_degrades(self, tmp_path, capsys):
        """Windows too short to finish: typed aborts, degraded exit
        (once the completion floor is waived)."""
        code = main(["power", "soak", "--dir", str(tmp_path / "d"),
                     "--sessions", "2", "--workers", "1",
                     "--cuts", "80", "--on-cycles", "600",
                     "--max-power-cycles", "8",
                     "--min-completed", "0.0"])
        assert code == EXIT_DEGRADED

    def test_completion_floor_fails(self, tmp_path, capsys):
        code = main(["power", "soak", "--dir", str(tmp_path / "f"),
                     "--sessions", "2", "--workers", "1",
                     "--cuts", "80", "--on-cycles", "600",
                     "--max-power-cycles", "8",
                     "--min-completed", "1.0"])
        assert code == EXIT_FAILED
        assert "FAILED" in capsys.readouterr().out

    def test_invalid_spec_fails(self, tmp_path, capsys):
        code = main(["power", "soak", "--dir", str(tmp_path / "x"),
                     "--sessions", "0"])
        assert code == EXIT_FAILED
        assert "power error" in capsys.readouterr().err

    def test_obs_flag_writes_manifest(self, tmp_path):
        directory = tmp_path / "o"
        code = main(["power", "soak", "--dir", str(directory),
                     "--sessions", "2", "--workers", "1", "--obs"])
        assert code == EXIT_OK
        manifest = json.loads(
            (directory / "obs" / "run.json").read_text())
        assert manifest["kind"] == "power-soak"
