"""Tests for the ``server`` CLI group."""

import json
import urllib.request

import pytest

from repro.cli import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_OK,
    cmd_server_enroll,
    cmd_server_run,
    cmd_server_soak,
    main,
)
from repro.server import EnrollmentStore, SoakSpec
from repro.server.soak import SUMMARY_NAME


@pytest.fixture(scope="module")
def cli_fleet(tmp_path_factory):
    directory = tmp_path_factory.mktemp("clifleet")
    text, code = cmd_server_enroll(str(directory), tags=120,
                                   shard_size=48, seed=5, workers=1)
    assert code == EXIT_OK
    assert "120 tags over 3 shard(s)" in text
    return directory


def make_spec(cli_fleet, **overrides):
    store = EnrollmentStore(cli_fleet, verify=False)
    kwargs = dict(
        enrollment_digest=store.spec.digest(),
        store_dir=str(cli_fleet),
        sessions=25,
        cohorts=2,
        frame_loss=0.1,
        seed=3,
    )
    kwargs.update(overrides)
    return SoakSpec(**kwargs)


class TestEnroll:
    def test_reenroll_reports_reuse(self, cli_fleet):
        text, code = cmd_server_enroll(str(cli_fleet), tags=120,
                                       shard_size=48, seed=5, workers=1)
        assert code == EXIT_OK
        assert "built 0, reused 3" in text

    def test_via_main(self, cli_fleet, capsys):
        code = main(["server", "enroll", "--dir", str(cli_fleet),
                     "--tags", "120", "--shard-size", "48",
                     "--seed", "5", "--workers", "1"])
        assert code == EXIT_OK
        assert "reused 3" in capsys.readouterr().out

    def test_other_spec_same_dir_fails(self, cli_fleet, capsys):
        code = main(["server", "enroll", "--dir", str(cli_fleet),
                     "--tags", "121", "--shard-size", "48",
                     "--seed", "5", "--workers", "1"])
        assert code == EXIT_FAILED
        assert "different fleet" in capsys.readouterr().err


class TestSoak:
    def test_clean_soak(self, cli_fleet, tmp_path):
        spec = make_spec(cli_fleet)
        text, code = cmd_server_soak(str(tmp_path), spec, workers=1)
        assert code == EXIT_OK
        assert "clean" in text
        summary = json.loads((tmp_path / SUMMARY_NAME).read_text())
        assert summary["totals"]["sessions"] == 50

    def test_acceptance_floor_fails(self, cli_fleet, tmp_path):
        # An impossible deadline: every session times out, acceptance
        # 0% — the soak must FAIL, not shrug.
        spec = make_spec(cli_fleet, session_deadline_s=1e-6)
        text, code = cmd_server_soak(str(tmp_path), spec, workers=1,
                                     min_acceptance=0.9)
        assert code == EXIT_FAILED
        assert "below the floor" in text

    def test_chaos_quarantine_degrades(self, cli_fleet, tmp_path):
        spec = make_spec(cli_fleet, cohorts=1, sessions=8)
        text, code = cmd_server_soak(str(tmp_path), spec, workers=2,
                                     chaos="crash=1.0", chaos_seed=0,
                                     min_acceptance=0.0)
        assert code == EXIT_DEGRADED
        assert "degraded" in text

    def test_via_main_missing_store(self, tmp_path, capsys):
        code = main(["server", "soak", "--store", str(tmp_path),
                     "--dir", str(tmp_path / "out")])
        assert code == EXIT_FAILED
        assert "server error" in capsys.readouterr().err


class TestRun:
    def test_run_without_metrics(self, cli_fleet):
        spec = make_spec(cli_fleet, cohorts=1)
        text, code = cmd_server_run(spec)
        assert code == EXIT_OK
        assert "served 25 session(s)" in text
        assert "scheduler coalesced" in text

    def test_run_serves_live_metrics(self, cli_fleet, capsys):
        spec = make_spec(cli_fleet, cohorts=1)
        text, code = cmd_server_run(spec, metrics_port=0)
        assert code == EXIT_OK
        url = capsys.readouterr().out.split()[-1]
        assert url.startswith("http://127.0.0.1:")
        # The exporter is stopped after the run; the URL was live
        # during it (scrape loop example lives in the README).
        with pytest.raises(OSError):
            urllib.request.urlopen(url, timeout=1)

    def test_via_main(self, cli_fleet, capsys):
        code = main(["server", "run", "--store", str(cli_fleet),
                     "--sessions", "10", "--seed", "3"])
        assert code == EXIT_OK
        assert "served 10 session(s)" in capsys.readouterr().out
