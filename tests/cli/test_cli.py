"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    cmd_area,
    cmd_energy,
    cmd_evaluate,
    cmd_info,
    cmd_listing,
    main,
)


class TestCommands:
    def test_info(self):
        text = cmd_info()
        assert "K-163" in text
        assert "6 x 163" in text

    def test_area(self):
        text = cmd_area()
        assert "PRESENT-80" in text
        assert "ECC K-163" in text
        assert "registers" in text

    def test_energy(self):
        text = cmd_energy()
        assert "uW" in text and "uJ" in text
        assert "paper" in text

    def test_listing(self):
        text = cmd_listing(limit=15)
        assert "ldi" in text
        assert "MALU occupancy" in text

    def test_evaluate_weak(self):
        text = cmd_evaluate(weak=True, traces=40)
        assert "VULNERABLE" in text


class TestMain:
    def test_info_exit_code(self, capsys):
        assert main(["info"]) == 0
        assert "K-163" in capsys.readouterr().out

    def test_area_exit_code(self, capsys):
        assert main(["area"]) == 0
        assert "GE" in capsys.readouterr().out

    def test_listing_with_limit(self, capsys):
        assert main(["listing", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCampaignVerbs:
    """End-to-end `repro campaign` lifecycle on a tiny campaign."""

    ACQUIRE = ["campaign", "acquire", "--traces", "6", "--shard-size", "3",
               "--workers", "1", "--scenario", "unprotected",
               "--seed", "9", "--bits", "1", "--quiet"]

    def test_acquire_status_attack(self, tmp_path, capsys):
        d = str(tmp_path / "camp")

        assert main(self.ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "6/6 traces on disk" in out
        assert "2 shard(s)" in out

        assert main(["campaign", "status", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "scenario: unprotected" in out
        assert "traces: 6/6" in out
        assert "none — complete" in out

        assert main(["campaign", "attack", "--dir", d, "--attack", "dpa",
                     "--bits", "1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "DPA over 6 traces" in out
        assert "verdict: key bits" in out

    def test_acquire_is_resumable_via_cli(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        capsys.readouterr()
        # Second run acquires nothing new.
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "0/6 traces in 0 shard(s) (+2 resumed)" in out

    def test_status_without_manifest(self, tmp_path, capsys):
        assert main(["campaign", "status", "--dir", str(tmp_path)]) == 0
        assert "no manifest" in capsys.readouterr().out

    def test_spa_attack_verb(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        capsys.readouterr()
        assert main(["campaign", "attack", "--dir", d,
                     "--attack", "spa"]) == 0
        out = capsys.readouterr().out
        assert "SPA over 6 traces" in out
        assert "ladder bits" in out

    def test_attack_requires_existing_campaign(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["campaign", "attack", "--dir", str(tmp_path / "nope")])
