"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    cmd_area,
    cmd_energy,
    cmd_evaluate,
    cmd_info,
    cmd_listing,
    main,
)


class TestCommands:
    def test_info(self):
        text = cmd_info()
        assert "K-163" in text
        assert "6 x 163" in text

    def test_area(self):
        text = cmd_area()
        assert "PRESENT-80" in text
        assert "ECC K-163" in text
        assert "registers" in text

    def test_energy(self):
        text = cmd_energy()
        assert "uW" in text and "uJ" in text
        assert "paper" in text

    def test_listing(self):
        text = cmd_listing(limit=15)
        assert "ldi" in text
        assert "MALU occupancy" in text

    def test_evaluate_weak(self):
        text = cmd_evaluate(weak=True, traces=40)
        assert "VULNERABLE" in text


class TestMain:
    def test_info_exit_code(self, capsys):
        assert main(["info"]) == 0
        assert "K-163" in capsys.readouterr().out

    def test_area_exit_code(self, capsys):
        assert main(["area"]) == 0
        assert "GE" in capsys.readouterr().out

    def test_listing_with_limit(self, capsys):
        assert main(["listing", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCampaignVerbs:
    """End-to-end `repro campaign` lifecycle on a tiny campaign."""

    ACQUIRE = ["campaign", "acquire", "--traces", "6", "--shard-size", "3",
               "--workers", "1", "--scenario", "unprotected",
               "--seed", "9", "--bits", "1", "--quiet"]

    def test_acquire_status_attack(self, tmp_path, capsys):
        d = str(tmp_path / "camp")

        assert main(self.ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "6/6 traces on disk" in out
        assert "2 shard(s)" in out

        assert main(["campaign", "status", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "scenario: unprotected" in out
        assert "traces: 6/6" in out
        assert "none — complete" in out

        assert main(["campaign", "attack", "--dir", d, "--attack", "dpa",
                     "--bits", "1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "DPA over 6 traces" in out
        assert "verdict: key bits" in out

    def test_acquire_is_resumable_via_cli(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        capsys.readouterr()
        # Second run acquires nothing new.
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "0/6 traces in 0 shard(s) (+2 resumed)" in out

    def test_status_without_manifest(self, tmp_path, capsys):
        assert main(["campaign", "status", "--dir", str(tmp_path)]) == 0
        assert "no manifest" in capsys.readouterr().out

    def test_spa_attack_verb(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        capsys.readouterr()
        assert main(["campaign", "attack", "--dir", d,
                     "--attack", "spa"]) == 0
        out = capsys.readouterr().out
        assert "SPA over 6 traces" in out
        assert "ladder bits" in out

    def test_attack_requires_existing_campaign(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["campaign", "attack", "--dir", str(tmp_path / "nope")])


class TestFailureLifecycle:
    """Exit-code contract: degraded=3, failed=1, interrupted=130 —
    driven through the chaos harness and `campaign doctor`."""

    ACQUIRE = ["campaign", "acquire", "--traces", "6", "--shard-size", "3",
               "--workers", "1", "--scenario", "unprotected",
               "--seed", "9", "--bits", "1", "--quiet"]
    # Shard 1 fails deterministically on every attempt; shard 0 is
    # healthy.  Inline (workers=1) because `error` needs no processes.
    BROKEN = ["--chaos", "error=1.0", "--chaos-shards", "1",
              "--max-attempts", "2"]

    def _degraded(self, directory, capsys):
        code = main(self.ACQUIRE + self.BROKEN + ["--dir", directory])
        out = capsys.readouterr().out
        return code, out

    def test_degraded_acquire_exits_3_and_names_the_log(
            self, tmp_path, capsys):
        code, out = self._degraded(str(tmp_path / "camp"), capsys)
        assert code == 3
        assert "DEGRADED" in out
        assert "failures.jsonl" in out
        assert "QUARANTINED shards [1]" in out

    def test_status_shows_coverage_and_quarantine(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        self._degraded(d, capsys)
        assert main(["campaign", "status", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "coverage: 3/6 traces (1/2 shards, 50.0%)" in out
        assert "quarantined shards: [1]" in out
        assert "failures:" in out

    def test_attack_refuses_partial_store_with_exit_1(
            self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        self._degraded(d, capsys)
        code = main(["campaign", "attack", "--dir", d, "--bits", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "campaign error" in captured.err
        assert "--allow-partial" in captured.err

    def test_allow_partial_attack_reports_provenance(
            self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        self._degraded(d, capsys)
        code = main(["campaign", "attack", "--dir", d, "--bits", "1",
                     "--allow-partial"])
        out = capsys.readouterr().out
        assert code == 0
        assert "provenance: 3 trace(s) from shard(s) [0]" in out
        assert "PARTIAL" in out

    def test_doctor_then_clear_then_clean_reacquire(
            self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        self._degraded(d, capsys)

        assert main(["campaign", "doctor", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "quarantined shard 1" in out
        assert "--clear" in out

        assert main(["campaign", "doctor", "--dir", d, "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared quarantine for shard(s) [1]" in out

        # Without the chaos flag the environment is healthy again.
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "6/6 traces on disk" in out

    def test_doctor_on_healthy_campaign(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(self.ACQUIRE + ["--dir", d]) == 0
        capsys.readouterr()
        assert main(["campaign", "doctor", "--dir", d]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_interrupt_exits_130_with_resume_hint(
            self, tmp_path, capsys, monkeypatch):
        import repro.campaign

        def interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.campaign.AcquisitionEngine, "run",
                            interrupted)
        argv = self.ACQUIRE + ["--dir", str(tmp_path / "camp")]
        assert main(argv) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume with" in err
        assert "campaign acquire" in err

    def test_chaos_needs_processes_surfaces_cleanly(self, tmp_path):
        # crash chaos with workers=1 is a usage error, raised before
        # any work starts.
        with pytest.raises(ValueError, match="worker processes"):
            main(self.ACQUIRE + ["--dir", str(tmp_path / "camp"),
                                 "--chaos", "crash=1.0"])


class TestProtocolVerbs:
    """`repro protocol run|soak` — resilient sessions from the CLI."""

    def test_run_narrates_sessions(self, capsys):
        assert main(["protocol", "run", "--sessions", "2", "--loss",
                     "0.1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "peeters-hermans" in out
        assert out.count("session") >= 2
        assert "uJ" in out

    def test_run_events_show_the_frame_log(self, capsys):
        assert main(["protocol", "run", "--sessions", "1", "--loss",
                     "0.0", "--events"]) == 0
        out = capsys.readouterr().out
        assert "tx tag R" in out
        assert "concluded" in out

    def test_run_mutual_auth_needs_no_curve(self, capsys):
        assert main(["protocol", "run", "--protocol", "mutual-auth",
                     "--sessions", "1", "--loss", "0.0"]) == 0
        assert "mutual-auth" in capsys.readouterr().out

    def test_soak_clean_exit_zero(self, capsys):
        assert main(["protocol", "soak", "--sessions", "12", "--sweep",
                     "0,0.05", "--workers", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "100.00%" in out

    def test_soak_reports_the_energy_trend(self, capsys):
        assert main(["protocol", "soak", "--sessions", "15", "--sweep",
                     "0,0.1", "--workers", "0", "--quiet"]) == 0
        assert "energy vs loss" in capsys.readouterr().out

    def test_soak_degraded_exit_three(self, capsys):
        # an aggressive sweep point with a tiny epoch budget cannot
        # stay at 100%; with a permissive floor that is "degraded"
        code = main(["protocol", "soak", "--sessions", "8", "--sweep",
                     "0.6", "--workers", "0", "--quiet",
                     "--min-availability", "0"])
        assert code == 3
        assert "DEGRADED" in capsys.readouterr().out

    def test_soak_failed_exit_one_below_floor(self):
        code = main(["protocol", "soak", "--sessions", "8", "--sweep",
                     "0.6", "--workers", "0", "--quiet",
                     "--min-availability", "0.99"])
        assert code == 1

    def test_unknown_curve_fails_cleanly(self, capsys):
        assert main(["protocol", "run", "--curve", "Q-999",
                     "--sessions", "1"]) == 1
        assert "protocol error" in capsys.readouterr().err
