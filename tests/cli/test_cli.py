"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    cmd_area,
    cmd_energy,
    cmd_evaluate,
    cmd_info,
    cmd_listing,
    main,
)


class TestCommands:
    def test_info(self):
        text = cmd_info()
        assert "K-163" in text
        assert "6 x 163" in text

    def test_area(self):
        text = cmd_area()
        assert "PRESENT-80" in text
        assert "ECC K-163" in text
        assert "registers" in text

    def test_energy(self):
        text = cmd_energy()
        assert "uW" in text and "uJ" in text
        assert "paper" in text

    def test_listing(self):
        text = cmd_listing(limit=15)
        assert "ldi" in text
        assert "MALU occupancy" in text

    def test_evaluate_weak(self):
        text = cmd_evaluate(weak=True, traces=40)
        assert "VULNERABLE" in text


class TestMain:
    def test_info_exit_code(self, capsys):
        assert main(["info"]) == 0
        assert "K-163" in capsys.readouterr().out

    def test_area_exit_code(self, capsys):
        assert main(["area"]) == 0
        assert "GE" in capsys.readouterr().out

    def test_listing_with_limit(self, capsys):
        assert main(["listing", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
