"""The ``protocol amortize`` verb and the DSE ``--backends`` flag."""

import json

import pytest

from repro.cli import EXIT_FAILED, EXIT_OK, main


class TestProtocolAmortize:
    def test_writes_summary_and_exits_clean(self, tmp_path, capsys):
        directory = tmp_path / "amortize"
        code = main(["protocol", "amortize", "--dir", str(directory),
                     "--epoch", "4", "--messages", "8",
                     "--sessions", "2", "--sweep", "0,0.2",
                     "--workers", "1"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "forward-secrecy window" in out
        summary = json.loads(
            (directory / "summary.json").read_text())
        assert summary["epoch_messages"] == 4
        assert len(summary["points"]) == 2

    def test_worker_counts_agree_on_disk(self, tmp_path):
        args = ["protocol", "amortize", "--epoch", "4",
                "--messages", "8", "--sessions", "2",
                "--sweep", "0.1"]
        a, b = tmp_path / "w1", tmp_path / "w2"
        assert main(args + ["--dir", str(a), "--workers", "1",
                            "--quiet"]) == EXIT_OK
        assert main(args + ["--dir", str(b), "--workers", "2",
                            "--quiet"]) == EXIT_OK
        assert (a / "summary.json").read_bytes() == \
            (b / "summary.json").read_bytes()

    def test_bad_backend_is_an_argparse_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["protocol", "amortize", "--backend", "aes-gcm"])
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_curve_fails(self, tmp_path, capsys):
        code = main(["protocol", "amortize",
                     "--dir", str(tmp_path / "x"),
                     "--curve", "NO-SUCH"])
        assert code == EXIT_FAILED
        assert "error" in capsys.readouterr().err


class TestExploreBackends:
    def test_backend_axis_end_to_end(self, tmp_path, capsys):
        directory = str(tmp_path / "space")
        args = ["dse", "explore", "--dir", directory,
                "--curve", "TOY-B17", "--digits", "4",
                "--vdd", "1.0", "--freq", "847500",
                "--countermeasures", "full",
                "--backends", "ecc,simon-aead,hybrid:16",
                "--workers", "1"]
        assert main(args) == EXIT_OK
        out = capsys.readouterr().out
        assert "uJ/msg" in out
        # Second run must be pure cache.
        assert main(args) == EXIT_OK
        assert "0 simulated" in capsys.readouterr().out
