"""Tests for the ``attack`` CLI group: narratives, soaks, exit codes."""

import json

import pytest

from repro.adversary.soak import SUMMARY_NAME
from repro.cli import (
    EXIT_DEGRADED,
    EXIT_FAILED,
    EXIT_OK,
    cmd_attack_run,
    main,
)


class TestAttackRun:
    def test_narrates_every_posture(self):
        text = cmd_attack_run(adversary="amplification", sessions=2,
                              seed=7)
        for name in ("none", "budget-cap", "wake-gating", "backoff",
                     "full"):
            assert name in text
        assert "uJ" in text

    def test_via_main(self, capsys):
        code = main(["attack", "run", "--adversary", "replay-flood",
                     "--defense", "none", "--defense", "full",
                     "--sessions", "2", "--seed", "7"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "replay-flood" in out
        assert "full" in out

    def test_unknown_adversary_fails(self, capsys):
        code = main(["attack", "run", "--adversary", "evil-twin"])
        assert code == EXIT_FAILED
        assert "unknown adversary" in capsys.readouterr().err

    def test_unknown_defense_fails(self, capsys):
        code = main(["attack", "run", "--defense", "belt"])
        assert code == EXIT_FAILED
        assert "unknown defense" in capsys.readouterr().err


class TestAttackSoak:
    def test_clean_soak(self, tmp_path, capsys):
        directory = tmp_path / "soak"
        code = main(["attack", "soak", "--dir", str(directory),
                     "--sessions", "8", "--cohorts", "2",
                     "--defense", "full", "--seed", "11",
                     "--workers", "1"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "attack soak" in out
        summary = json.loads((directory / SUMMARY_NAME).read_text())
        assert summary["outcome"] == "clean"

    def test_legit_floor_fails_the_soak(self, tmp_path, capsys):
        code = main(["attack", "soak", "--dir", str(tmp_path / "f"),
                     "--sessions", "8", "--cohorts", "1",
                     "--defense", "none", "--legit-fraction", "0.5",
                     "--seed", "11", "--workers", "1",
                     "--min-legit-success", "1.01"])
        assert code == EXIT_FAILED
        assert "FAILED" in capsys.readouterr().out

    def test_chaos_quarantine_degrades(self, tmp_path, capsys):
        code = main(["attack", "soak", "--dir", str(tmp_path / "q"),
                     "--sessions", "6", "--cohorts", "1",
                     "--seed", "3", "--workers", "2",
                     "--chaos", "crash=1.0"])
        assert code == EXIT_DEGRADED
        assert "degraded" in capsys.readouterr().out

    def test_invalid_spec_fails(self, tmp_path, capsys):
        code = main(["attack", "soak", "--dir", str(tmp_path / "x"),
                     "--sessions", "0"])
        assert code == EXIT_FAILED
        assert "attack error" in capsys.readouterr().err

    def test_budget_override_flows_through(self, tmp_path):
        directory = tmp_path / "o"
        code = main(["attack", "soak", "--dir", str(directory),
                     "--sessions", "6", "--cohorts", "1",
                     "--defense", "budget-cap", "--budget-cap", "60",
                     "--budget-window", "0.25", "--seed", "11",
                     "--workers", "1"])
        assert code == EXIT_OK
        summary = json.loads((directory / SUMMARY_NAME).read_text())
        assert summary["spec"]["budget_cap_uj"] == 60.0
        assert summary["totals"]["peak_window_uj"] <= 60.0
