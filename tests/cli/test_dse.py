"""CLI tests for the `repro dse` verbs (explore / pareto / report)."""

import json

import pytest

from repro.cli import (
    EXIT_FAILED,
    EXIT_OK,
    cmd_dse_explore,
    cmd_dse_pareto,
    cmd_dse_report,
    main,
)

SMOKE_ARGS = [
    "--digits", "1,4",
    "--vdd", "0.8,1.0",
    "--freq", "847.5e3",
    "--countermeasures", "full,none",
    "--curve", "TOY-B17",
    "--max-latency-ms", "5",
]

OPTIMUM = "d4-full-1V-847.5kHz"


@pytest.fixture(scope="module")
def explored(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("dse-cli"))
    code = main(["dse", "explore", "--dir", directory,
                 "--workers", "1", "--quiet"] + SMOKE_ARGS)
    assert code == EXIT_OK
    return directory


class TestExplore:
    def test_reports_the_front_and_the_files(self, explored, capsys):
        code = main(["dse", "explore", "--dir", explored,
                     "--workers", "1"] + SMOKE_ARGS)
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert OPTIMUM in out
        assert "pareto front:" in out
        # The fixture already measured every cell: pure cache.
        assert "0 simulated, 4 cached" in out

    def test_rejects_an_invalid_space(self, capsys):
        code = main(["dse", "explore", "--dir", "/tmp/unused",
                     "--digits", "4", "--countermeasures", "tinfoil"])
        assert code == EXIT_FAILED
        assert "unknown countermeasure" in capsys.readouterr().err


class TestPareto:
    def test_answers_from_the_cache(self, explored, capsys):
        code = main(["dse", "pareto", "--dir", explored])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert OPTIMUM in out
        assert "PARETO" in out

    def test_constraint_overrides_rerank(self, explored):
        report, code = cmd_dse_pareto(explored, max_latency_ms=0,
                                      min_security=-1)
        assert code == EXIT_OK
        # With both constraints lifted, more than one point survives.
        assert report.count("\n") > 3

    def test_json_front(self, explored):
        report, code = cmd_dse_pareto(explored, as_json=True)
        assert code == EXIT_OK
        payload = json.loads(report)
        assert [row["id"] for row in payload["front"]] == [OPTIMUM]

    def test_unexplored_directory_fails(self, tmp_path, capsys):
        code = main(["dse", "pareto", "--dir", str(tmp_path)])
        assert code == EXIT_FAILED
        assert "explore" in capsys.readouterr().err


class TestReport:
    def test_full_grid_with_flags(self, explored):
        report, code = cmd_dse_report(explored)
        assert code == EXIT_OK
        assert "8 operating points" in report
        assert "infeasible:latency" in report
        assert "infeasible:security" in report

    def test_json_grid(self, explored):
        report, code = cmd_dse_report(explored, as_json=True)
        assert code == EXIT_OK
        assert len(json.loads(report)["rows"]) == 8

    def test_unexplored_directory_fails(self, tmp_path):
        from repro.dse import DseError

        with pytest.raises(DseError):
            cmd_dse_report(str(tmp_path))


class TestObservability:
    def test_obs_run_satisfies_the_contract(self, tmp_path, capsys):
        directory = str(tmp_path / "obs-run")
        code = main(["dse", "explore", "--dir", directory, "--workers", "1",
                     "--quiet", "--obs", "--digits", "4",
                     "--vdd", "1.0", "--freq", "847.5e3",
                     "--countermeasures", "full", "--curve", "TOY-B17"])
        assert code == EXIT_OK
        capsys.readouterr()
        code = main(["obs", "report", "--dir", directory,
                     "--require-spans", "dse.explore,point",
                     "--require-metrics",
                     "repro_dse_measurements_total,"
                     "repro_dse_cache_hits_total,repro_dse_front_size"])
        assert code == EXIT_OK


def test_cmd_dse_explore_callable_directly(tmp_path):
    from repro.dse import DesignSpaceSpec

    spec = DesignSpaceSpec(digit_sizes=(4,), vdd_volts=(1.0,),
                           frequencies_hz=(847.5e3,),
                           countermeasures=("full",), curve="TOY-B17",
                           max_latency_s=None, min_security=None)
    report, code = cmd_dse_explore(str(tmp_path / "direct"), spec,
                                   workers=1, quiet=True)
    assert code == EXIT_OK
    assert "1 operating points" in report
