"""Integration tests: the whole stack wired together.

These tests cross every layer boundary at once, the way the deployed
system would: the Peeters–Hermans tag computes its point
multiplications *on the coprocessor model*, randomness comes from the
TRNG-fed DRBG subsystem, and the energy ledger is settled with the
calibrated model — protocol correctness, hardware cycle counts and
joules in a single flow.
"""

import random

import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.ec import NIST_K163
from repro.energy import ComputeEnergyTable, RadioModel, protocol_energy
from repro.power import calibrate_energy_model
from repro.primitives import AesCtrDrbg, DeviceRandomness, TrngModel
from repro.protocols import (
    PeetersHermansReader,
    PeetersHermansTag,
    ShamirSecretSharing,
    run_identification,
    threshold_point_multiply,
)
from repro.sca import coprocessor_timing_report


class CoprocessorBackend:
    """Adapter: the protocol tag's multiplier, backed by the chip model."""

    def __init__(self, coprocessor: EccCoprocessor):
        self.coprocessor = coprocessor
        self.executions = []

    def __call__(self, k, point, rng):
        trace = self.coprocessor.point_multiply(k, point, rng=rng)
        self.executions.append(trace)
        return trace.result


@pytest.fixture(scope="module")
def stack():
    coprocessor = EccCoprocessor(CoprocessorConfig())
    backend = CoprocessorBackend(coprocessor)
    rng = random.Random(31337)
    ring = NIST_K163.scalar_ring
    reader = PeetersHermansReader(NIST_K163, ring.random_scalar(rng))
    tag = PeetersHermansTag(NIST_K163, ring.random_scalar(rng),
                            reader.public, multiplier=backend)
    reader.register(7, tag.identity_point)
    return coprocessor, backend, tag, reader, rng


class TestProtocolOnCoprocessor:
    def test_identification_succeeds_on_chip(self, stack):
        __, backend, tag, reader, rng = stack
        result = run_identification(tag, reader, rng)
        assert result.accepted
        assert result.identity == 7
        # The chip ran exactly the tag's two point multiplications.
        assert len(backend.executions) == 2

    def test_chip_cycles_match_ops_accounting(self, stack):
        coprocessor, backend, tag, reader, rng = stack
        before = len(backend.executions)
        result = run_identification(tag, reader, rng)
        runs = backend.executions[before:]
        assert len(runs) == 2
        per_pm = coprocessor.cycles_per_point_multiplication()
        assert all(trace.cycles == per_pm for trace in runs)
        # Accounting layer agrees with the hardware layer.
        assert result.tag_ops.point_multiplications >= 2

    def test_session_energy_from_calibrated_model(self, stack):
        coprocessor, backend, tag, reader, rng = stack
        model = calibrate_energy_model(coprocessor)
        before = len(backend.executions)
        result = run_identification(tag, reader, rng)
        runs = backend.executions[before:]
        chip_joules = sum(model.energy_per_operation(t) for t in runs)
        # Two point multiplications at ~5.1 uJ each.
        assert 9e-6 < chip_joules < 12e-6
        # The coarse per-op table stays within 15% of the detailed model.
        table_joules = (
            result.tag_ops.point_multiplications
            * ComputeEnergyTable().point_multiplication_j
        )
        # The accounting includes all sessions so far; compare per-run.
        assert abs(2 * 5.1e-6 - chip_joules) / chip_joules < 0.15
        assert table_joules > 0

    def test_radio_plus_chip_total(self, stack):
        coprocessor, __, tag, reader, rng = stack
        result = run_identification(tag, reader, rng)
        energy = protocol_energy("on-chip PH", result.tag_ops, 2.0,
                                 RadioModel(), ComputeEnergyTable())
        assert energy.total_j > energy.communication_j > 0


class TestTrngToProtocol:
    def test_device_randomness_drives_a_session(self):
        """TRNG -> health tests -> DRBG -> protocol nonces + ladder Z."""
        device_rng = DeviceRandomness(TrngModel(random.Random(55)))
        ring = NIST_K163.scalar_ring
        reader = PeetersHermansReader(NIST_K163,
                                      ring.random_scalar(device_rng))
        coprocessor = EccCoprocessor(CoprocessorConfig())
        backend = CoprocessorBackend(coprocessor)
        tag = PeetersHermansTag(NIST_K163, ring.random_scalar(device_rng),
                                reader.public, multiplier=backend)
        reader.register(1, tag.identity_point)
        result = run_identification(tag, reader, device_rng)
        assert result.accepted
        assert device_rng.reseeds >= 1


class TestThresholdOnLadder:
    def test_shared_identity_point(self):
        """Three body-network nodes jointly compute the tag identity
        point without any node holding the whole secret."""
        rng = AesCtrDrbg(99)
        ring = NIST_K163.scalar_ring
        sss = ShamirSecretSharing(ring, threshold=2, participants=3)
        secret = ring.random_scalar(rng)
        shares = sss.split(secret, rng)
        joint = threshold_point_multiply(
            NIST_K163.curve, sss, shares[:2], NIST_K163.generator, rng
        )
        direct = NIST_K163.curve.multiply_naive(secret, NIST_K163.generator)
        assert joint == direct
