"""Tests for the seeded supply trajectories and the brownout meter."""

import pytest

from repro.intermittent import (
    SUPPLY_PROFILES,
    PowerLossError,
    PowerSupply,
    SupplyModel,
    SupplySpec,
    SupplySpecError,
    derive_supply_value,
)


class TestDerivation:
    def test_stable_across_calls(self):
        assert derive_supply_value(1, "window/battery", 2, 3) == \
            derive_supply_value(1, "window/battery", 2, 3)

    def test_every_coordinate_matters(self):
        base = derive_supply_value(1, "s", 2, 3)
        assert base != derive_supply_value(2, "s", 2, 3)
        assert base != derive_supply_value(1, "t", 2, 3)
        assert base != derive_supply_value(1, "s", 3, 3)
        assert base != derive_supply_value(1, "s", 2, 4)


class TestSupplySpec:
    def test_validation(self):
        with pytest.raises(SupplySpecError):
            SupplySpec(profile="mains")
        with pytest.raises(SupplySpecError):
            SupplySpec(brownout_fraction=1.0)
        with pytest.raises(SupplySpecError):
            SupplySpec(mean_on_cycles=0)
        with pytest.raises(SupplySpecError):
            SupplySpec(jitter=1.0)
        with pytest.raises(SupplySpecError):
            SupplySpec(cuts=-1)

    def test_brownout_voltage_below_nominal(self):
        spec = SupplySpec()
        assert spec.brownout_vdd < spec.nominal_vdd


class TestSupplyModel:
    def test_stable_profile_has_no_windows(self):
        assert SupplyModel(SupplySpec(profile="stable")).windows() == ()

    @pytest.mark.parametrize("profile", [p for p in SUPPLY_PROFILES
                                         if p != "stable"])
    def test_windows_are_deterministic(self, profile):
        spec = SupplySpec(profile=profile, seed=9, cuts=4)
        assert SupplyModel(spec, 3).windows() == \
            SupplyModel(spec, 3).windows()
        assert SupplyModel(spec, 3).windows() != \
            SupplyModel(spec, 4).windows()

    def test_battery_windows_shrink_on_average(self):
        spec = SupplySpec(profile="battery", battery_decay=0.5,
                          jitter=0.1, cuts=6, seed=1)
        windows = SupplyModel(spec).windows()
        assert windows[-1] < windows[0]


class TestPowerSupply:
    def test_brownout_at_exact_cycle(self):
        supply = PowerSupply(windows=(100,))
        supply.spend(99)
        with pytest.raises(PowerLossError) as excinfo:
            supply.spend(1)
        assert excinfo.value.cycle == 100
        assert supply.cycle == 100

    def test_restart_opens_next_window(self):
        supply = PowerSupply(windows=(10, 20))
        with pytest.raises(PowerLossError):
            supply.spend(10)
        supply.restart()
        assert supply.power_cycles == 1
        supply.spend(19)
        with pytest.raises(PowerLossError):
            supply.spend(5)
        supply.restart()
        assert supply.exhausted
        supply.spend(10 ** 6)  # stable forever after the schedule

    def test_survivable_leaves_one_cycle(self):
        supply = PowerSupply(windows=(10,))
        assert supply.survivable(100) == 9
        assert supply.survivable(4) == 4
        supply.restart()
        assert supply.survivable(100) == 100

    def test_vdd_sags_toward_brownout(self):
        supply = PowerSupply(windows=(100,), nominal_vdd=1.2,
                             brownout_vdd=0.84)
        assert supply.vdd() == pytest.approx(1.2)
        supply.spend(50)
        assert 0.84 < supply.vdd() < 1.2
        scale_mid = supply.energy_scale()
        supply.restart()
        assert supply.vdd() == pytest.approx(1.2)
        assert supply.energy_scale() > scale_mid
