"""Chaos tests: aimed cuts, and the nonce-lifecycle matrix.

The matrix test is the PR's core safety claim, stated as a wire
property: across 1000 seeded power-cut schedules and both ladder
variants, no epoch's nonce ever pairs with two distinct responses on
the wire — the commit-before-use ordering holds under *any* cut
placement, not just the adversarially aimed ones.
"""

import pytest

from repro.intermittent import (
    ADVERSARIAL_EVENTS,
    IntermittentSpec,
    PowerCutSchedule,
    adversarial_schedules,
    probe_timeline,
    run_with_schedule,
)

SPEC = IntermittentSpec(curve="TOY-B17", seed=2013)


def distinct_responses_per_epoch(result):
    """epoch -> distinct s payloads that crossed the air."""
    seen = {}
    for _sender, epoch, label, payload in result.wire:
        if label == "s":
            seen.setdefault(epoch, set()).add(payload)
    return seen


class TestSeededSchedules:
    def test_schedules_are_deterministic(self):
        a = PowerCutSchedule.seeded(7, 3, 4, mean_on_cycles=8000)
        b = PowerCutSchedule.seeded(7, 3, 4, mean_on_cycles=8000)
        assert a == b
        assert a != PowerCutSchedule.seeded(8, 3, 4, mean_on_cycles=8000)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            PowerCutSchedule(windows=(0,))
        with pytest.raises(ValueError):
            PowerCutSchedule.seeded(0, 0, -1)


class TestAdversarialSchedules:
    def test_every_event_gets_a_schedule(self):
        timeline = probe_timeline(SPEC)
        schedules = adversarial_schedules(timeline)
        assert set(schedules) == {label for label, _ in ADVERSARIAL_EVENTS}

    def test_aimed_cuts_preserve_the_outcome(self):
        reference = run_with_schedule(SPEC, 0, PowerCutSchedule())
        for label, schedule in \
                adversarial_schedules(probe_timeline(SPEC)).items():
            result = run_with_schedule(SPEC, 0, schedule)
            assert result.completed, label
            assert result.outcome_digest == reference.outcome_digest, label
            assert max(map(len, distinct_responses_per_epoch(
                result).values()), default=0) <= 1, label

    def test_cut_mid_stage_is_counted_torn(self):
        schedules = adversarial_schedules(probe_timeline(SPEC))
        result = run_with_schedule(SPEC, 0, schedules["response-staged"])
        assert result.completed
        assert result.torn_discards == 1


class TestNonceLifecycleMatrix:
    @pytest.mark.parametrize("randomize_z", [True, False],
                            ids=["rpc", "plain-z"])
    def test_no_nonce_reuse_across_1000_schedules(self, randomize_z):
        """1000 seeded cut schedules per ladder variant: zero nonce
        reuse on the wire, zero corrupted checkpoints, and every
        completing run lands on the baseline outcome digest."""
        spec = IntermittentSpec(curve="TOY-B17", seed=2013,
                                randomize_z=randomize_z)
        reference = run_with_schedule(spec, 0, PowerCutSchedule())
        completions = 0
        for chaos_seed in range(1000):
            schedule = PowerCutSchedule.seeded(
                chaos_seed, 0, cuts=3, mean_on_cycles=8000)
            result = run_with_schedule(spec, 0, schedule)
            per_epoch = distinct_responses_per_epoch(result)
            assert all(len(s) <= 1 for s in per_epoch.values()), chaos_seed
            if result.completed:
                completions += 1
                assert result.outcome_digest == reference.outcome_digest, \
                    chaos_seed
            else:
                assert result.abort_reason is not None, chaos_seed
        # The matrix must actually exercise completion paths.
        assert completions > 900
