"""Tests for the resume engine: byte-identical outcomes across cuts."""

import pytest

from repro.intermittent import (
    IntermittentSpec,
    PowerCutSchedule,
    PowerSupply,
    ResumeExhaustedError,
    count_nonce_reuse,
    run_intermittent_session,
    run_with_schedule,
)


SPEC = IntermittentSpec(curve="TOY-B17", seed=2013)


def baseline(spec=SPEC, session_index=0):
    """The uninterrupted run every cut schedule must reproduce."""
    return run_with_schedule(spec, session_index, PowerCutSchedule())


class TestStablePower:
    def test_session_accepts(self):
        result = baseline()
        assert result.completed and result.accepted
        assert result.identity == 1
        assert result.power_cycles == 0
        assert result.torn_discards == 0

    def test_energy_decomposition_is_exact(self):
        result = baseline()
        assert result.total_uj == pytest.approx(
            result.checkpoint_uj + result.compute_uj + result.radio_uj)
        assert result.checkpoint_uj > 0
        assert result.compute_uj > 0
        assert result.radio_uj > 0

    def test_naive_tag_pays_no_checkpoint_energy(self):
        result = run_intermittent_session(
            SPEC, supply=PowerSupply(windows=()), durable=False)
        assert result.completed and result.accepted
        assert result.checkpoint_uj == 0.0
        assert result.checkpoints_committed == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            IntermittentSpec(checkpoint_interval=0)
        with pytest.raises(ValueError):
            IntermittentSpec(max_power_cycles=-1)
        with pytest.raises(KeyError):
            IntermittentSpec(curve="NO-SUCH-CURVE")


class TestResume:
    def test_cut_mid_ladder_resumes_identically(self):
        reference = baseline()
        # One cut landing inside the R ladder, then stable power.
        result = run_with_schedule(SPEC, 0,
                                   PowerCutSchedule.single_cut(2_000))
        assert result.completed and result.accepted
        assert result.power_cycles == 1
        assert result.outcome_digest == reference.outcome_digest
        assert result.steps_wasted > 0

    def test_checkpoint_interval_bounds_reexecution(self):
        fine = IntermittentSpec(checkpoint_interval=1)
        result = run_with_schedule(fine, 0,
                                   PowerCutSchedule.single_cut(4_000))
        assert result.completed
        # With a checkpoint every step at most one step re-executes
        # per cut (plus the step the brownout interrupted).
        assert result.steps_wasted <= 2 * (result.power_cycles + 1)

    def test_power_cycle_budget_aborts_typed(self):
        tiny = IntermittentSpec(max_power_cycles=2)
        # Windows too short to ever reach the first checkpoint.
        schedule = PowerCutSchedule(windows=(600, 600, 600, 600))
        result = run_with_schedule(tiny, 0, schedule)
        assert not result.completed
        assert not result.accepted
        assert "power-cycle budget" in result.abort_reason
        assert result.power_cycles == 3

    def test_abort_reason_matches_typed_error(self):
        with pytest.raises(ResumeExhaustedError):
            raise ResumeExhaustedError("x", power_cycles=3)


class TestOutcomeDigest:
    def test_digest_ignores_duplicate_frames(self):
        """A resumed tag re-sends R; the digest keys on final payloads,
        so retransmissions cannot change it."""
        reference = baseline()
        # Cut right after R-sent: R goes on the wire twice.
        timeline = dict((label, cycle)
                        for cycle, label in reference.timeline)
        cut = PowerCutSchedule.single_cut(timeline["R-sent"] + 1)
        result = run_with_schedule(SPEC, 0, cut)
        assert result.completed
        assert len(result.wire_payloads("R")) >= 1
        assert result.outcome_digest == reference.outcome_digest

    def test_digest_differs_across_sessions(self):
        assert baseline(session_index=0).outcome_digest != \
            baseline(session_index=1).outcome_digest


class TestCountNonceReuse:
    """The ``nonce_reuse`` telemetry counter, on synthetic wires.

    A reuse is one epoch nonce answering two *different* challenges —
    more than one distinct ``s`` payload under one epoch.  Duplicate
    retransmissions of the identical payload are not reuse."""

    def test_two_distinct_s_payloads_same_epoch_is_one_reuse(self):
        wire = [("tag", 3, "s", b"\x01\x02"),
                ("tag", 3, "s", b"\x03\x04")]
        assert count_nonce_reuse(wire) == 1

    def test_byte_identical_retransmission_is_not_reuse(self):
        wire = [("tag", 3, "s", b"\x01\x02"),
                ("tag", 3, "s", b"\x01\x02"),
                ("tag", 3, "s", b"\x01\x02")]
        assert count_nonce_reuse(wire) == 0

    def test_distinct_epochs_are_independent(self):
        wire = [("tag", 3, "s", b"\x01\x02"),
                ("tag", 4, "s", b"\x03\x04")]
        assert count_nonce_reuse(wire) == 0

    def test_non_s_labels_are_ignored(self):
        wire = [("reader", 3, "c", b"\x01"),
                ("reader", 3, "c", b"\x02"),
                ("tag", 3, "R", b"\x03"),
                ("tag", 3, "R", b"\x04")]
        assert count_nonce_reuse(wire) == 0

    def test_real_session_wire_is_clean(self):
        assert count_nonce_reuse(baseline().wire) == 0
