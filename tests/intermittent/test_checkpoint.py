"""Tests for the two-phase checkpoint store and the nonce vault."""

import pytest

from repro.intermittent import (
    CheckpointStore,
    NVMModel,
    NonceVault,
    PowerLossError,
    PowerSupply,
)
from repro.protocols.peeters_hermans import NonceConsumedError


def stable_store(**nvm_kwargs):
    return CheckpointStore(PowerSupply(windows=()),
                           NVMModel(**nvm_kwargs) if nvm_kwargs else None)


class TestTwoPhaseCommit:
    def test_checkpoint_round_trip(self):
        store = stable_store()
        store.checkpoint("session", {"phase": "respond", "epoch": 0})
        assert store.restore("session") == {"phase": "respond", "epoch": 0}
        assert store.commits == 1

    def test_staged_is_invisible_until_committed(self):
        store = stable_store()
        store.checkpoint("session", {"phase": "commit"})
        store.stage("session", {"phase": "respond"})
        assert store.restore("session") == {"phase": "commit"}
        store.commit("session")
        assert store.restore("session") == {"phase": "respond"}

    def test_commit_without_stage_rejected(self):
        with pytest.raises(ValueError, match="without a staged"):
            stable_store().commit("session")

    def test_energy_and_cycles_accrue(self):
        store = stable_store()
        store.checkpoint("session", {"phase": "commit"})
        assert store.energy_uj > 0
        assert store.cycles > 0
        assert store.supply.cycle == store.cycles

    def test_cut_mid_stage_leaves_torn_staged_copy(self):
        # Window sized to die inside the byte-programming loop.
        nvm = NVMModel()
        supply = PowerSupply(windows=(3 * nvm.write_cycles_per_byte,))
        store = CheckpointStore(supply, nvm)
        with pytest.raises(PowerLossError):
            store.stage("session", {"phase": "respond", "epoch": 0})
        supply.restart()
        assert store.discard_staged() == 1
        assert store.torn_discards == 1
        # The previously committed record (none) is untouched.
        assert store.restore("session") is None

    def test_cut_mid_commit_keeps_previous_record(self):
        nvm = NVMModel()
        store = stable_store()
        store.checkpoint("session", {"phase": "commit"})
        stage_cost = nvm.stage_cycles(len(b'{"phase":"a"}'))
        # Die inside the flush barrier: stage fits, commit does not.
        supply = PowerSupply(windows=(stage_cost + nvm.fsync_cycles // 2,))
        torn = CheckpointStore(supply, nvm)
        torn.stage("session", {"phase": "a"})
        with pytest.raises(PowerLossError):
            torn.commit("session")
        supply.restart()
        torn.discard_staged()
        assert torn.restore("session") is None  # never half-applied
        assert store.restore("session") == {"phase": "commit"}

    def test_torn_stage_refuses_commit(self):
        nvm = NVMModel()
        supply = PowerSupply(windows=(3 * nvm.write_cycles_per_byte,))
        store = CheckpointStore(supply, nvm)
        with pytest.raises(PowerLossError):
            store.stage("session", {"phase": "respond", "epoch": 0})
        supply.restart()
        with pytest.raises(ValueError, match="torn"):
            store.commit("session")


class TestNonceVault:
    def test_nonce_round_trip_per_epoch(self):
        vault = NonceVault(stable_store())
        vault.commit_nonce(0, 0x1234)
        assert vault.committed_nonce(0) == 0x1234
        assert vault.committed_nonce(1) is None

    def test_consumed_marker_freezes_the_response(self):
        vault = NonceVault(stable_store())
        vault.commit_nonce(0, 0x1234)
        vault.commit_response(0, 0x77)
        assert vault.consumed_response(0) == 0x77
        with pytest.raises(NonceConsumedError):
            vault.assert_unconsumed(0)
        with pytest.raises(NonceConsumedError):
            vault.commit_response(0, 0x78)  # a second s can never land

    def test_fresh_epoch_is_unconsumed(self):
        vault = NonceVault(stable_store())
        vault.commit_response(0, 0x77)
        vault.assert_unconsumed(1)  # does not raise
