"""Tests for the digit-serial multiplier functional/cycle model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2m import BinaryField, DigitSerialMultiplier, reduction_polynomial

K163 = BinaryField(163, reduction_polynomial(163))
big_values = st.integers(min_value=0, max_value=(1 << 163) - 1)


class TestConstruction:
    def test_rejects_zero_digit(self):
        with pytest.raises(ValueError):
            DigitSerialMultiplier(K163, 0)

    def test_rejects_oversized_digit(self):
        with pytest.raises(ValueError):
            DigitSerialMultiplier(K163, 164)

    @pytest.mark.parametrize(
        "d,cycles", [(1, 163), (2, 82), (4, 41), (8, 21), (16, 11), (163, 1)]
    )
    def test_cycle_count_is_ceil_m_over_d(self, d, cycles):
        assert DigitSerialMultiplier(K163, d).cycles_per_multiplication == cycles

    def test_repr(self):
        assert "d=4" in repr(DigitSerialMultiplier(K163, 4))


class TestFunctionalCorrectness:
    @given(big_values, big_values)
    @settings(max_examples=20)
    def test_paper_design_point_d4_matches_reference(self, a, b):
        mult = DigitSerialMultiplier(K163, 4)
        product, _ = mult.multiply(a, b)
        assert product == K163.mul_raw(a, b)

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 8, 16, 32, 163])
    def test_all_digit_sizes_agree(self, d):
        rng = random.Random(d)
        mult = DigitSerialMultiplier(K163, d)
        for _ in range(5):
            a = rng.getrandbits(163)
            b = rng.getrandbits(163)
            product, trace = mult.multiply(a, b)
            assert product == K163.mul_raw(a, b)
            assert trace.cycles == mult.cycles_per_multiplication

    def test_small_field(self):
        f8 = BinaryField(3, 0b1011)
        mult = DigitSerialMultiplier(f8, 2)
        for a in range(8):
            for b in range(8):
                product, _ = mult.multiply(a, b)
                assert product == f8.mul_raw(a, b)


class TestActivityTrace:
    def test_trace_lengths_match_cycles(self):
        mult = DigitSerialMultiplier(K163, 4)
        _, trace = mult.multiply(123456789, 987654321)
        assert len(trace.accumulator_states) == 41
        assert len(trace.hamming_distances) == 41
        assert trace.digit_size == 4

    def test_zero_times_anything_has_no_switching(self):
        mult = DigitSerialMultiplier(K163, 4)
        _, trace = mult.multiply(0, (1 << 163) - 1)
        assert trace.total_switching == 0

    def test_final_accumulator_is_the_product(self):
        mult = DigitSerialMultiplier(K163, 4)
        product, trace = mult.multiply(0xDEADBEEF, 0xCAFEBABE)
        assert trace.accumulator_states[-1] == product

    def test_hamming_distances_are_update_toggles(self):
        mult = DigitSerialMultiplier(K163, 8)
        _, trace = mult.multiply(0x123456789ABCDEF, 0xFEDCBA987654321)
        prev = 0
        for state, hd in zip(trace.accumulator_states, trace.hamming_distances):
            assert hd == bin(prev ^ state).count("1")
            prev = state

    def test_switching_depends_on_data(self):
        # Different operands produce different total switching -- this
        # data dependence is exactly what the power model exploits.
        mult = DigitSerialMultiplier(K163, 4)
        rng = random.Random(42)
        totals = set()
        for _ in range(10):
            _, trace = mult.multiply(rng.getrandbits(163), rng.getrandbits(163))
            totals.add(trace.total_switching)
        assert len(totals) > 1
