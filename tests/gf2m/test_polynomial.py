"""Unit and property tests for GF(2) polynomial arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2m.polynomial import (
    clmul,
    is_irreducible,
    poly_coefficients,
    poly_degree,
    poly_divmod,
    poly_egcd,
    poly_from_coefficients,
    poly_gcd,
    poly_mod,
    poly_mulmod,
    poly_pow_mod,
    poly_to_string,
)

polys = st.integers(min_value=0, max_value=(1 << 200) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 200) - 1)


def naive_clmul(a: int, b: int) -> int:
    result = 0
    i = 0
    while b >> i:
        if (b >> i) & 1:
            result ^= a << i
        i += 1
    return result


class TestDegree:
    def test_zero_polynomial_has_degree_minus_one(self):
        assert poly_degree(0) == -1

    def test_constant_one(self):
        assert poly_degree(1) == 0

    def test_x_cubed(self):
        assert poly_degree(0b1000) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poly_degree(-1)


class TestClmul:
    def test_zero_annihilates(self):
        assert clmul(0, 0b1011) == 0
        assert clmul(0b1011, 0) == 0

    def test_one_is_identity(self):
        assert clmul(1, 0b11010) == 0b11010

    def test_known_product(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2)
        assert clmul(0b11, 0b11) == 0b101

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            clmul(-1, 2)

    @given(polys, polys)
    @settings(max_examples=60)
    def test_matches_naive(self, a, b):
        assert clmul(a, b) == naive_clmul(a, b)

    @given(polys, polys)
    @settings(max_examples=40)
    def test_commutative(self, a, b):
        assert clmul(a, b) == clmul(b, a)

    @given(polys, polys, polys)
    @settings(max_examples=40)
    def test_distributive_over_xor(self, a, b, c):
        assert clmul(a, b ^ c) == clmul(a, b) ^ clmul(a, c)

    @given(nonzero_polys, nonzero_polys)
    @settings(max_examples=40)
    def test_degree_adds(self, a, b):
        assert poly_degree(clmul(a, b)) == poly_degree(a) + poly_degree(b)


class TestDivmod:
    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(5, 0)

    def test_exact_division(self):
        a, b = 0b1101, 0b111
        product = clmul(a, b)
        q, r = poly_divmod(product, b)
        assert (q, r) == (a, 0)

    @given(polys, nonzero_polys)
    @settings(max_examples=60)
    def test_reconstruction(self, a, b):
        q, r = poly_divmod(a, b)
        assert clmul(q, b) ^ r == a
        assert poly_degree(r) < poly_degree(b)

    @given(polys, nonzero_polys)
    @settings(max_examples=40)
    def test_mod_consistency(self, a, b):
        assert poly_mod(a, b) == poly_divmod(a, b)[1]


class TestGcd:
    def test_gcd_with_zero(self):
        assert poly_gcd(0b1101, 0) == 0b1101

    def test_common_factor_found(self):
        f = 0b111  # x^2+x+1, irreducible
        a = clmul(f, 0b1011)
        b = clmul(f, 0b1101)
        g = poly_gcd(a, b)
        assert poly_mod(g, f) == 0  # f divides the gcd

    @given(polys, polys)
    @settings(max_examples=40)
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        if g:
            assert poly_mod(a, g) == 0
            assert poly_mod(b, g) == 0

    @given(nonzero_polys, nonzero_polys)
    @settings(max_examples=40)
    def test_bezout_identity(self, a, b):
        g, s, t = poly_egcd(a, b)
        assert clmul(s, a) ^ clmul(t, b) == g
        assert g == poly_gcd(a, b)


class TestPowMod:
    def test_exponent_zero(self):
        assert poly_pow_mod(0b110, 0, 0b111) == 1

    def test_fermat_little_theorem_in_field(self):
        # In GF(2^3) = GF(2)[x]/(x^3+x+1): a^(2^3 - 1) = 1 for a != 0.
        modulus = 0b1011
        for a in range(1, 8):
            assert poly_pow_mod(a, 7, modulus) == 1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly_pow_mod(2, -1, 0b111)

    @given(polys, st.integers(min_value=0, max_value=50), nonzero_polys)
    @settings(max_examples=30)
    def test_matches_repeated_multiplication(self, a, e, mod):
        expected = 1
        for _ in range(e):
            expected = poly_mulmod(expected, a, mod)
        assert poly_pow_mod(a, e, mod) == expected


class TestIrreducibility:
    @pytest.mark.parametrize(
        "exps",
        [
            [1, 0],          # x + 1
            [2, 1, 0],       # x^2+x+1
            [3, 1, 0],       # x^3+x+1
            [163, 7, 6, 3, 0],
            [233, 74, 0],
            [283, 12, 7, 5, 0],
        ],
    )
    def test_known_irreducible(self, exps):
        assert is_irreducible(poly_from_coefficients(exps))

    @pytest.mark.parametrize(
        "value",
        [
            0b101,       # x^2+1 = (x+1)^2
            0b110,       # x^2+x = x(x+1)
            0b1111,      # x^3+x^2+x+1 = (x+1)^3
            0b10,        # plain x: irreducible actually -- excluded below
        ][:3],
    )
    def test_known_reducible(self, value):
        assert not is_irreducible(value)

    def test_constants_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_x_is_irreducible(self):
        assert is_irreducible(0b10)

    def test_degree_2_exhaustive(self):
        # Only x^2+x+1 is irreducible among degree-2 polynomials.
        irreducible = [p for p in range(4, 8) if is_irreducible(p)]
        assert irreducible == [0b111]


class TestStringsAndCoefficients:
    def test_round_trip(self):
        exps = [163, 7, 6, 3, 0]
        p = poly_from_coefficients(exps)
        assert poly_coefficients(p) == exps

    def test_to_string(self):
        assert poly_to_string(0) == "0"
        assert poly_to_string(1) == "1"
        assert poly_to_string(0b110) == "x^2 + x"
        assert poly_to_string(0b1011) == "x^3 + x + 1"

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly_from_coefficients([-1])
