"""Unit and property tests for BinaryField / FieldElement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2m import BinaryField, reduction_polynomial

F8 = BinaryField(3, 0b1011)  # GF(8), small enough to exhaust
K163 = BinaryField(163, reduction_polynomial(163))

small_values = st.integers(min_value=0, max_value=7)
big_values = st.integers(min_value=0, max_value=(1 << 163) - 1)
nonzero_big = st.integers(min_value=1, max_value=(1 << 163) - 1)


class TestConstruction:
    def test_rejects_wrong_degree_modulus(self):
        with pytest.raises(ValueError):
            BinaryField(4, 0b1011)

    def test_rejects_reducible_modulus(self):
        with pytest.raises(ValueError):
            BinaryField(2, 0b101)  # x^2+1 = (x+1)^2

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            BinaryField(0, 1)

    def test_check_can_be_skipped(self):
        f = BinaryField(2, 0b101, check_irreducible=False)
        assert f.m == 2

    def test_order(self):
        assert F8.order == 8
        assert K163.order == 1 << 163

    def test_equality_and_hash(self):
        other = BinaryField(3, 0b1011)
        assert F8 == other
        assert hash(F8) == hash(other)
        assert F8 != BinaryField(3, 0b1101)

    def test_repr_mentions_modulus(self):
        assert "x^3" in repr(F8)


class TestReduction:
    def test_reduce_below_m_is_identity(self):
        for v in range(8):
            assert F8.reduce(v) == v

    def test_reduce_x_cubed(self):
        # x^3 = x + 1 mod (x^3 + x + 1)
        assert F8.reduce(0b1000) == 0b011

    @given(st.integers(min_value=0, max_value=(1 << 400) - 1))
    @settings(max_examples=50)
    def test_reduce_matches_poly_mod_k163(self, v):
        from repro.gf2m.polynomial import poly_mod

        assert K163.reduce(v) == poly_mod(v, K163.modulus)


class TestFieldAxiomsExhaustiveGF8:
    """GF(8) is small enough to verify the axioms exhaustively."""

    def test_additive_group(self):
        for a in range(8):
            assert F8.add_raw(a, 0) == a
            assert F8.add_raw(a, a) == 0  # self-inverse in char 2

    def test_multiplicative_group(self):
        for a in range(1, 8):
            inv = F8.inverse_raw(a)
            assert F8.mul_raw(a, inv) == 1

    def test_associativity_and_distributivity(self):
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert F8.mul_raw(F8.mul_raw(a, b), c) == F8.mul_raw(
                        a, F8.mul_raw(b, c)
                    )
                    assert F8.mul_raw(a, b ^ c) == F8.mul_raw(a, b) ^ F8.mul_raw(a, c)

    def test_square_matches_self_multiplication(self):
        for a in range(8):
            assert F8.square_raw(a) == F8.mul_raw(a, a)

    def test_sqrt_inverts_square(self):
        for a in range(8):
            assert F8.sqrt_raw(F8.square_raw(a)) == a

    def test_frobenius_order(self):
        # Squaring three times is the identity on GF(8).
        for a in range(8):
            assert F8.square_raw(F8.square_raw(F8.square_raw(a))) == a


class TestK163Arithmetic:
    @given(big_values, big_values)
    @settings(max_examples=30)
    def test_mul_commutes(self, a, b):
        assert K163.mul_raw(a, b) == K163.mul_raw(b, a)

    @given(big_values)
    @settings(max_examples=30)
    def test_square_matches_mul(self, a):
        assert K163.square_raw(a) == K163.mul_raw(a, a)

    @given(big_values)
    @settings(max_examples=20)
    def test_sqrt_inverts_square(self, a):
        assert K163.sqrt_raw(K163.square_raw(a)) == a
        assert K163.square_raw(K163.sqrt_raw(a)) == a

    @given(nonzero_big)
    @settings(max_examples=20)
    def test_euclidean_inverse(self, a):
        assert K163.mul_raw(a, K163.inverse_raw(a)) == 1

    @given(nonzero_big)
    @settings(max_examples=10)
    def test_itoh_tsujii_matches_euclid(self, a):
        assert K163.inverse_itoh_tsujii_raw(a) == K163.inverse_raw(a)

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            K163.inverse_raw(0)
        with pytest.raises(ZeroDivisionError):
            K163.inverse_itoh_tsujii_raw(0)

    @given(nonzero_big)
    @settings(max_examples=10)
    def test_fermat(self, a):
        # a^(2^m - 1) == 1
        assert K163.pow_raw(a, (1 << 163) - 1) == 1

    @given(nonzero_big, st.integers(min_value=-20, max_value=20))
    @settings(max_examples=20)
    def test_pow_negative_exponent(self, a, e):
        lhs = K163.pow_raw(a, e)
        rhs = K163.pow_raw(K163.inverse_raw(a), -e) if e < 0 else K163.pow_raw(a, e)
        assert lhs == rhs


class TestTraceAndQuadratics:
    def test_trace_values_gf8(self):
        # Trace is GF(2)-linear and maps onto {0,1}; half the elements
        # of GF(8) have trace 0.
        traces = [F8.trace_raw(a) for a in range(8)]
        assert set(traces) <= {0, 1}
        assert traces.count(0) == 4

    @given(big_values, big_values)
    @settings(max_examples=20)
    def test_trace_linear(self, a, b):
        assert K163.trace_raw(a ^ b) == K163.trace_raw(a) ^ K163.trace_raw(b)

    @given(big_values)
    @settings(max_examples=15)
    def test_trace_invariant_under_frobenius(self, a):
        assert K163.trace_raw(a) == K163.trace_raw(K163.square_raw(a))

    @given(big_values)
    @settings(max_examples=15)
    def test_half_trace_solves_quadratic(self, a):
        # z^2 + z = a + Tr(a): always solvable, and half-trace solves it
        # when Tr of the rhs is 0.
        c = a if K163.trace_raw(a) == 0 else a ^ 1 if K163.trace_raw(a ^ 1) == 0 else None
        if c is None:
            return
        z = K163.solve_quadratic_raw(c)
        assert z is not None
        assert K163.square_raw(z) ^ z == c

    def test_unsolvable_quadratic_returns_none(self):
        # Find some c with Tr(c)=1; z^2+z=c then has no solution.
        c = next(v for v in range(1, 100) if K163.trace_raw(v) == 1)
        assert K163.solve_quadratic_raw(c) is None

    def test_solve_zero(self):
        assert K163.solve_quadratic_raw(0) == 0

    def test_half_trace_even_degree_rejected(self):
        f4 = BinaryField(2, 0b111)
        with pytest.raises(ValueError):
            f4.half_trace_raw(1)

    def test_solve_quadratic_even_degree_field(self):
        f4 = BinaryField(2, 0b111)
        for c in range(4):
            z = f4.solve_quadratic_raw(c)
            if f4.trace_raw(c) == 0:
                assert z is not None and f4.square_raw(z) ^ z == c
            else:
                assert z is None


class TestFieldElementWrapper:
    def test_operators(self):
        a = F8(3)
        b = F8(5)
        assert (a + b).value == 6
        assert (a - b).value == 6
        assert (a * b).value == F8.mul_raw(3, 5)
        assert (a / a).value == 1
        assert (a ** 2) == a.square()
        assert (-a) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            F8(3) / F8(0)

    def test_mixed_field_rejected(self):
        other = BinaryField(3, 0b1101)
        with pytest.raises(ValueError):
            F8(1) + other(1)

    def test_immutability(self):
        a = F8(3)
        with pytest.raises(AttributeError):
            a.value = 4

    def test_out_of_range_rejected(self):
        from repro.gf2m.field import FieldElement

        with pytest.raises(ValueError):
            FieldElement(F8, 8)

    def test_constructor_reduces(self):
        assert F8(0b1000).value == 0b011

    def test_bool_and_is_zero(self):
        assert not F8(0)
        assert F8(1)
        assert F8(0).is_zero()

    def test_hash_consistent_with_eq(self):
        assert hash(F8(5)) == hash(F8(5))
        assert F8(5) in {F8(5)}

    def test_random_element_in_range(self):
        rng = random.Random(7)
        for _ in range(20):
            e = K163.random_element(rng)
            assert 0 <= e.value < 1 << 163

    def test_elements_enumeration(self):
        values = sorted(e.value for e in F8.elements())
        assert values == list(range(8))

    def test_elements_enumeration_refuses_large_field(self):
        with pytest.raises(ValueError):
            list(K163.elements())

    def test_zero_one(self):
        assert F8.zero().value == 0
        assert F8.one().value == 1
