"""Shared small campaigns for the campaign-subsystem tests.

Session-scoped: acquiring even a tiny campaign runs real coprocessor
simulations, so the stores are built once and shared read-only.
"""

import pytest

from repro.campaign import AcquisitionEngine, CampaignSpec


UNPROTECTED_SPEC = CampaignSpec(
    n_traces=24, shard_size=10, scenario="unprotected",
    max_iterations=3, seed=11, noise_sigma=38.0,
)

KNOWN_Z_SPEC = CampaignSpec(
    n_traces=13, shard_size=5, scenario="known_randomness",
    max_iterations=3, seed=12, noise_sigma=38.0,
)


@pytest.fixture(scope="session")
def unprotected_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("campaign-unprotected")
    return AcquisitionEngine(str(directory), UNPROTECTED_SPEC,
                             workers=1).run()


@pytest.fixture(scope="session")
def known_z_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("campaign-known-z")
    return AcquisitionEngine(str(directory), KNOWN_Z_SPEC, workers=1).run()
