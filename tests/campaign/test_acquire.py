"""Acquisition engine: determinism, parallelism, resume, reporting."""

import random

import pytest

from repro.campaign import (
    AcquisitionEngine,
    CampaignSpec,
    CollectingReporter,
    TraceStore,
    acquire_shard,
    default_workers,
    random_protocol_point,
)


SMALL_SPEC = CampaignSpec(n_traces=8, shard_size=4, scenario="unprotected",
                          max_iterations=2, seed=21)


def _digests(store):
    return [(r.index, r.samples_sha256, r.aux_sha256)
            for r in sorted(store.shard_records, key=lambda r: r.index)]


class TestDeterminism:
    def test_serial_equals_parallel_bit_for_bit(self, tmp_path):
        serial = AcquisitionEngine(str(tmp_path / "serial"), SMALL_SPEC,
                                   workers=1).run()
        parallel = AcquisitionEngine(str(tmp_path / "parallel"), SMALL_SPEC,
                                     workers=2).run()
        assert _digests(serial) == _digests(parallel)
        assert serial.key_bits == parallel.key_bits
        assert serial.iteration_slices == parallel.iteration_slices

    def test_rerun_is_reproducible(self, tmp_path):
        first = AcquisitionEngine(str(tmp_path / "a"), SMALL_SPEC,
                                  workers=1).run()
        second = AcquisitionEngine(str(tmp_path / "b"), SMALL_SPEC,
                                   workers=1).run()
        assert _digests(first) == _digests(second)

    def test_seed_changes_every_shard(self, tmp_path):
        base = AcquisitionEngine(str(tmp_path / "s21"), SMALL_SPEC,
                                 workers=1).run()
        reseeded_spec = CampaignSpec(n_traces=8, shard_size=4,
                                     scenario="unprotected",
                                     max_iterations=2, seed=22)
        reseeded = AcquisitionEngine(str(tmp_path / "s22"), reseeded_spec,
                                     workers=1).run()
        ours = {d[1] for d in _digests(base)}
        theirs = {d[1] for d in _digests(reseeded)}
        assert not ours & theirs

    def test_worker_function_is_callable_inline(self, tmp_path):
        TraceStore(str(tmp_path)).initialize(SMALL_SPEC)
        record = acquire_shard(SMALL_SPEC, str(tmp_path), 0)
        assert record["index"] == 0
        assert record["n_traces"] == 4
        assert len(record["key_bits"]) >= SMALL_SPEC.max_iterations


class TestResume:
    def test_completed_campaign_is_a_no_op(self, tmp_path):
        AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1).run()
        again = AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1)
        again.run()
        assert again.metrics.acquired_shards == 0
        assert again.metrics.skipped_shards == SMALL_SPEC.n_shards

    def test_partial_manifest_resumes(self, tmp_path):
        # Simulate a campaign killed after its first shard: the shard
        # and its manifest checkpoint exist, nothing else does.
        engine = AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1)
        store, pending = engine.plan()
        assert pending == [0, 1]
        engine._absorb(store, acquire_shard(SMALL_SPEC, str(tmp_path), 0))

        resumed = AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1)
        completed = resumed.run()
        assert completed.is_complete
        assert resumed.metrics.skipped_shards == 1
        assert resumed.metrics.acquired_shards == 1


class TestReporting:
    def test_collecting_reporter_sees_the_whole_run(self, tmp_path):
        reporter = CollectingReporter()
        engine = AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1,
                                   reporter=reporter)
        engine.run()
        assert reporter.started == [(2, 8, 2, 1)]
        assert sorted(e.index for e in reporter.events) == [0, 1]
        assert [e.done_shards for e in reporter.events] == [1, 2]
        last = reporter.events[-1]
        assert last.done_traces == last.total_traces == 8
        assert last.traces_per_second > 0
        (metrics,) = reporter.finished
        assert metrics.acquired_traces == 8
        assert metrics.elapsed_seconds > 0
        assert len(metrics.shard_walls) == 2
        assert "8/8 traces" in metrics.summary()

    def test_engine_metrics_match_reporter(self, tmp_path):
        reporter = CollectingReporter()
        engine = AcquisitionEngine(str(tmp_path), SMALL_SPEC, workers=1,
                                   reporter=reporter)
        engine.run()
        assert engine.metrics is reporter.finished[0]


class TestWorkers:
    def test_explicit_count_wins(self):
        assert default_workers(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_workers(0)

    def test_auto_is_bounded(self):
        assert 1 <= default_workers(None) <= 8


class TestProtocolPoints:
    def test_points_are_valid_protocol_inputs(self):
        domain = SMALL_SPEC.build_coprocessor().domain
        rng = random.Random(99)
        for _ in range(4):
            p = random_protocol_point(domain, rng)
            assert not p.is_infinity
            assert p.x != 0
            assert domain.curve.is_on_curve(p)
