"""Trace store: roundtrip, resume bookkeeping, corruption rejection."""

import os

import numpy as np
import pytest

from repro.campaign import (
    AcquisitionEngine,
    CampaignSpec,
    CorruptShardError,
    TraceStore,
    file_digest,
)

from .conftest import UNPROTECTED_SPEC


class TestRoundtrip:
    def test_manifest_survives_reload(self, unprotected_store):
        reloaded = TraceStore(unprotected_store.directory).load()
        assert reloaded.spec == unprotected_store.spec
        assert reloaded.iteration_slices == unprotected_store.iteration_slices
        assert reloaded.key_bits == unprotected_store.key_bits
        assert [r.to_dict() for r in reloaded.shard_records] == \
            [r.to_dict() for r in unprotected_store.shard_records]
        assert reloaded.is_complete

    def test_samples_are_memory_mapped(self, unprotected_store):
        samples = unprotected_store.open_samples(0)
        assert isinstance(samples, np.memmap)
        assert samples.shape == (10, samples.shape[1])

    def test_mmap_window_matches_full_read(self, unprotected_store):
        start, end = unprotected_store.iteration_slices[1]
        full = np.asarray(unprotected_store.open_samples(0))
        views = list(unprotected_store.iter_shards(columns=(start, end)))
        np.testing.assert_array_equal(views[0].samples,
                                      full[:, start:end])

    def test_aux_roundtrip(self, unprotected_store):
        points, z = unprotected_store.read_aux(0)
        assert len(points) == 10
        assert z is None  # unprotected scenario records no randomness
        curve = unprotected_store.spec.build_coprocessor().domain.curve
        assert all(curve.is_on_curve(p) for p in points)

    def test_known_randomness_is_recorded(self, known_z_store):
        points, z = known_z_store.read_aux(0)
        assert z is not None and len(z) == len(points)
        assert all(v > 0 for v in z)

    def test_short_last_shard(self, known_z_store):
        # 13 traces in shards of 5 -> 5, 5, 3.
        counts = [r.n_traces for r in known_z_store.shard_records]
        assert counts == [5, 5, 3]
        assert known_z_store.n_traces_on_disk == 13

    def test_max_traces_truncates_stream(self, unprotected_store):
        views = list(unprotected_store.iter_shards(max_traces=12))
        assert sum(v.n_traces for v in views) == 12

    def test_as_trace_set(self, unprotected_store):
        ts = unprotected_store.as_trace_set()
        assert ts.n_traces == 24
        assert ts.iteration_slices == list(unprotected_store.iteration_slices)


class TestSpecGuard:
    def test_refuses_different_spec_in_same_directory(self, unprotected_store):
        other = CampaignSpec(n_traces=99, scenario="protected", seed=1)
        with pytest.raises(ValueError, match="different spec"):
            TraceStore(unprotected_store.directory).initialize(other)

    def test_adopts_matching_spec(self, unprotected_store):
        store = TraceStore(unprotected_store.directory)
        store.initialize(UNPROTECTED_SPEC)
        assert store.is_complete


class TestResumeBookkeeping:
    def _fresh_store(self, tmp_path):
        spec = CampaignSpec(n_traces=12, shard_size=4,
                            scenario="unprotected", max_iterations=2,
                            seed=3)
        engine = AcquisitionEngine(str(tmp_path), spec, workers=1)
        return engine, engine.run()

    def test_deleted_shard_counts_missing(self, tmp_path):
        engine, store = self._fresh_store(tmp_path)
        victim = store.shard_records[1]
        os.remove(os.path.join(store.directory, victim.samples_file))
        reloaded = TraceStore(store.directory).load()
        assert reloaded.missing_shards() == [1]

    def test_resume_completes_only_missing(self, tmp_path):
        engine, store = self._fresh_store(tmp_path)
        digests_before = [r.samples_sha256 for r in store.shard_records]
        victim = store.shard_records[2]
        os.remove(os.path.join(store.directory, victim.samples_file))

        spec = store.spec
        resumed_engine = AcquisitionEngine(store.directory, spec, workers=1)
        resumed = resumed_engine.run()
        assert resumed.is_complete
        # Only the missing shard was re-acquired...
        assert resumed_engine.metrics.acquired_shards == 1
        assert resumed_engine.metrics.skipped_shards == 2
        # ...and the campaign is bit-for-bit what it was.
        assert [r.samples_sha256 for r in resumed.shard_records] == \
            digests_before


class TestCorruption:
    def _corrupt(self, store, record):
        path = os.path.join(store.directory, record.samples_file)
        with open(path, "r+b") as f:
            f.seek(130)
            f.write(b"\x13\x37\x13\x37")

    def test_reader_rejects_digest_mismatch(self, tmp_path):
        spec = CampaignSpec(n_traces=6, shard_size=3,
                            scenario="unprotected", max_iterations=2,
                            seed=4)
        store = AcquisitionEngine(str(tmp_path), spec, workers=1).run()
        self._corrupt(store, store.shard_records[0])
        with pytest.raises(CorruptShardError):
            store.open_samples(0, verify=True)
        with pytest.raises(CorruptShardError):
            store.verify_all()
        # Unverified mmap open still works (the fast path trusts disk).
        store.open_samples(0, verify=False)

    def test_resume_reacquires_corrupted_shard(self, tmp_path):
        spec = CampaignSpec(n_traces=6, shard_size=3,
                            scenario="unprotected", max_iterations=2,
                            seed=5)
        store = AcquisitionEngine(str(tmp_path), spec, workers=1).run()
        good = [r.samples_sha256 for r in store.shard_records]
        self._corrupt(store, store.shard_records[1])
        assert store.missing_shards(verify_digests=True) == [1]

        resumed = AcquisitionEngine(store.directory, spec, workers=1).run()
        resumed.verify_all()
        assert [r.samples_sha256 for r in resumed.shard_records] == good


class TestCoverage:
    def test_complete_store(self, unprotected_store):
        coverage = unprotected_store.coverage()
        assert coverage.is_complete
        assert coverage.fraction == 1.0
        assert coverage.missing_shards == ()
        assert coverage.completed_shards == (0, 1, 2)
        assert "24/24 traces" in coverage.render()
        assert "missing" not in coverage.render()

    def test_partial_store(self, tmp_path):
        spec = CampaignSpec(n_traces=8, shard_size=4,
                            scenario="unprotected", max_iterations=2,
                            seed=6)
        store = AcquisitionEngine(str(tmp_path), spec, workers=1).run()
        os.remove(os.path.join(store.directory,
                               store.shard_records[0].samples_file))
        coverage = TraceStore(store.directory).load().coverage()
        assert not coverage.is_complete
        assert coverage.missing_shards == (0,)
        assert coverage.fraction == pytest.approx(0.5)
        assert "missing shards [0]" in coverage.render()


class TestTmpSweep:
    def test_initialize_sweeps_stale_tmp_files(self, tmp_path):
        spec = CampaignSpec(n_traces=4, shard_size=2,
                            scenario="unprotected", max_iterations=2,
                            seed=7)
        store = AcquisitionEngine(str(tmp_path), spec, workers=1).run()
        stale = os.path.join(store.directory,
                             "shard-00000.samples.npy.tmp")
        with open(stale, "wb") as f:
            f.write(b"torn write debris")

        fresh = TraceStore(store.directory)
        fresh.initialize(spec)
        assert not os.path.exists(stale)
        # The sweep touched only the débris; the store still verifies.
        fresh.verify_all()

    def test_sweep_reports_what_it_removed(self, tmp_path):
        store = TraceStore(str(tmp_path))
        os.makedirs(str(tmp_path), exist_ok=True)
        for name in ("a.tmp", "b.tmp"):
            with open(os.path.join(str(tmp_path), name), "wb") as f:
                f.write(b"x")
        assert sorted(store.sweep_stale_tmp()) == ["a.tmp", "b.tmp"]
        assert store.sweep_stale_tmp() == []


class TestDigest:
    def test_file_digest_matches_hashlib(self, tmp_path):
        import hashlib

        path = tmp_path / "blob.bin"
        payload = os.urandom(3 << 20)  # spans multiple 1 MiB chunks
        path.write_bytes(payload)
        assert file_digest(str(path)) == hashlib.sha256(payload).hexdigest()
