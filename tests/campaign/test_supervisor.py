"""Supervisor recovery matrix: retry, backoff, quarantine, logging.

Everything here runs the supervisor *inline* (workers=1) with injected
flaky tasks, so the retry/quarantine/logging policy is exercised
without spawning a single process; the process-mode half of the matrix
(crashes, hangs, watchdog kills) lives in ``test_chaos.py``.
"""

import hashlib
import json
import os

import pytest

from repro.campaign import (
    DATA_INTEGRITY,
    DETERMINISTIC,
    TRANSIENT,
    CampaignError,
    CampaignSpec,
    ChaosConfig,
    FailureLog,
    PartialStoreError,
    Quarantine,
    RetryPolicy,
    ScheduleMismatchError,
    ShardSupervisor,
    classify_exception,
)
from repro.campaign.supervisor import FailureEvent, run_shard_attempt

SPEC = CampaignSpec(n_traces=4, shard_size=2, scenario="unprotected",
                    max_iterations=2, seed=21, noise_sigma=38.0)

FAST = RetryPolicy(base_delay=0.0, jitter=0.0)


class TestClassification:
    def test_environment_errors_are_transient(self):
        for name in ("OSError", "TimeoutError", "ConnectionResetError",
                     "BrokenPipeError", "MemoryError"):
            assert classify_exception(name) == TRANSIENT

    def test_task_errors_are_deterministic(self):
        for name in ("ValueError", "ChaosInjectedError", "KeyError", ""):
            assert classify_exception(name) == DETERMINISTIC


class TestCampaignError:
    def test_carries_shard_and_spec_context(self):
        err = CampaignError("boom", shard_index=3,
                            spec_digest="cafe0123", kind=DATA_INTEGRITY)
        assert "shard 3" in str(err)
        assert "cafe0123" in str(err)
        assert err.shard_index == 3
        assert err.kind == DATA_INTEGRITY

    def test_subclasses_are_campaign_errors(self):
        assert issubclass(ScheduleMismatchError, CampaignError)
        assert issubclass(PartialStoreError, CampaignError)
        assert issubclass(CampaignError, RuntimeError)


class TestRetryPolicy:
    def test_deterministic_budget_is_smaller(self):
        policy = RetryPolicy()
        assert policy.attempts_for(DETERMINISTIC) == 2
        assert policy.attempts_for(TRANSIENT) == 4
        assert policy.attempts_for(DATA_INTEGRITY) == 4

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0, jitter=0.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0   # capped
        assert policy.delay(10) == 5.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        first = policy.delay(1, shard_index=7, seed=9)
        again = policy.delay(1, shard_index=7, seed=9)
        assert first == again
        assert 2.0 * 0.75 <= first <= 2.0 * 1.25
        # Different shards desynchronize.
        assert first != policy.delay(1, shard_index=8, seed=9)

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestFailureLog:
    def _event(self, **overrides):
        base = dict(shard_index=2, attempt=1, kind=TRANSIENT,
                    reason="synthetic", action="retry",
                    delay_seconds=0.5, wall_time=123.0,
                    spec_digest="abcd")
        base.update(overrides)
        return FailureEvent(**base)

    def test_events_roundtrip(self, tmp_path):
        log = FailureLog(str(tmp_path))
        log.append(self._event())
        log.append(self._event(attempt=3, action="quarantine",
                               kind=DETERMINISTIC))
        events = log.events()
        assert [e["attempt"] for e in events] == [1, 3]
        assert events[0]["shard"] == 2
        assert events[0]["spec_digest"] == "abcd"
        tally = log.tally()
        assert tally["retries"] == 1
        assert tally["quarantines"] == 1
        assert tally["by_kind"] == {TRANSIENT: 1, DETERMINISTIC: 1}

    def test_every_line_is_valid_json(self, tmp_path):
        log = FailureLog(str(tmp_path))
        for attempt in range(3):
            log.append(self._event(attempt=attempt))
        with open(log.path) as f:
            for line in f:
                json.loads(line)

    def test_tolerates_torn_final_line(self, tmp_path):
        log = FailureLog(str(tmp_path))
        log.append(self._event())
        with open(log.path, "a") as f:
            f.write('{"shard": 9, "attempt"')   # crashed mid-append
        assert len(log.events()) == 1
        assert log.tally()["retries"] == 1


class TestQuarantine:
    def test_persists_across_instances(self, tmp_path):
        Quarantine(str(tmp_path)).add(4, kind=TRANSIENT,
                                      reason="kept failing", attempts=4)
        fresh = Quarantine(str(tmp_path))
        assert fresh.indices() == [4]
        entry = fresh.entries()[4]
        assert entry["kind"] == TRANSIENT
        assert entry["attempts"] == 4

    def test_clear_releases_and_removes_file(self, tmp_path):
        quarantine = Quarantine(str(tmp_path))
        quarantine.add(1, kind=DETERMINISTIC, reason="r", attempts=2)
        quarantine.add(3, kind=TRANSIENT, reason="r", attempts=4)
        assert quarantine.clear() == [1, 3]
        assert not os.path.exists(quarantine.path)
        assert Quarantine(str(tmp_path)).entries() == {}


class TestInlineSupervision:
    def _run(self, tmp_path, task, policy=FAST, chaos=None):
        from repro.campaign import TraceStore

        store = TraceStore(str(tmp_path))
        store.initialize(SPEC)
        records = []
        supervisor = ShardSupervisor(
            SPEC, str(tmp_path), workers=1, policy=policy, chaos=chaos,
            task=task, on_success=lambda record, attempt:
            records.append((record["index"], attempt)),
        )
        outcome = supervisor.run(store.missing_shards())
        return supervisor, outcome, records

    def test_transient_failure_is_retried_to_success(self, tmp_path):
        def flaky(spec_dict, directory, shard, attempt, chaos_dict):
            if shard == 1 and attempt == 0:
                raise OSError("injected transient failure")
            return run_shard_attempt(spec_dict, directory, shard,
                                     attempt, chaos_dict)

        supervisor, outcome, records = self._run(tmp_path, flaky)
        assert sorted(outcome.completed) == [0, 1]
        assert outcome.quarantined == []
        assert outcome.retried_attempts == 1
        assert (1, 1) in records       # shard 1 succeeded on attempt 1
        events = supervisor.failure_log.events()
        assert len(events) == 1
        assert events[0]["kind"] == TRANSIENT
        assert events[0]["action"] == "retry"

    def test_persistent_deterministic_failure_quarantines(self, tmp_path):
        def broken(spec_dict, directory, shard, attempt, chaos_dict):
            if shard == 0:
                raise ValueError("this shard can never work")
            return run_shard_attempt(spec_dict, directory, shard,
                                     attempt, chaos_dict)

        supervisor, outcome, records = self._run(tmp_path, broken)
        assert outcome.completed == [1]
        assert outcome.quarantined == [0]
        # Deterministic budget: 2 attempts = 1 retry + 1 quarantine.
        actions = [e["action"] for e in supervisor.failure_log.events()]
        assert actions == ["retry", "quarantine"]
        assert supervisor.quarantine.indices() == [0]

    def test_cleared_quarantine_allows_recovery(self, tmp_path):
        state = {"healed": False}

        def healing(spec_dict, directory, shard, attempt, chaos_dict):
            if shard == 0 and not state["healed"]:
                raise ValueError("still broken")
            return run_shard_attempt(spec_dict, directory, shard,
                                     attempt, chaos_dict)

        supervisor, outcome, _ = self._run(tmp_path, healing)
        assert outcome.quarantined == [0]
        assert supervisor.quarantine.clear() == [0]
        state["healed"] = True
        supervisor, outcome, _ = self._run(tmp_path, healing)
        assert 0 in outcome.completed

    def test_corruption_is_caught_and_quarantined(self, tmp_path):
        # corrupt_rate=1.0 fires on every attempt: the worker's own
        # digests are computed before the flip, so only the
        # supervisor's independent re-hash can catch it.
        chaos = ChaosConfig(seed=1, corrupt_rate=1.0, only_shards=(0,))
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        supervisor, outcome, _ = self._run(tmp_path, run_shard_attempt,
                                           policy=policy, chaos=chaos)
        assert outcome.completed == [1]
        assert outcome.quarantined == [0]
        kinds = {e["kind"] for e in supervisor.failure_log.events()}
        assert kinds == {DATA_INTEGRITY}

    def test_crash_chaos_refuses_inline_mode(self, tmp_path):
        with pytest.raises(ValueError, match="worker processes"):
            ShardSupervisor(SPEC, str(tmp_path), workers=1,
                            chaos=ChaosConfig(crash_rate=0.5))

    def test_events_reach_the_observer(self, tmp_path):
        seen = []

        def flaky(spec_dict, directory, shard, attempt, chaos_dict):
            if attempt == 0:
                raise OSError("first attempt always fails")
            return run_shard_attempt(spec_dict, directory, shard,
                                     attempt, chaos_dict)

        from repro.campaign import TraceStore
        store = TraceStore(str(tmp_path))
        store.initialize(SPEC)
        ShardSupervisor(SPEC, str(tmp_path), workers=1, policy=FAST,
                        task=flaky, on_event=seen.append).run([0, 1])
        assert len(seen) == 2
        assert all(isinstance(e, FailureEvent) for e in seen)
        assert all(e.action == "retry" for e in seen)


def _write_cell(directory, shard):
    relpath = os.path.join("cells", f"{shard}.json")
    payload = json.dumps({"cell": shard}).encode()
    path = os.path.join(directory, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as f:
        f.write(payload)
    return relpath, payload


class TestExplicitArtifacts:
    """Records carrying an explicit ``artifacts`` list (how
    non-acquisition tasks such as the DSE measurement worker describe
    their outputs) get the same independent re-hash before acceptance
    as the acquisition layout's fixed file pair."""

    def _supervise(self, tmp_path, task):
        records = []
        supervisor = ShardSupervisor(
            SPEC, str(tmp_path), workers=1,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            task=task,
            on_success=lambda record, attempt: records.append(record),
        )
        outcome = supervisor.run([0])
        return supervisor, outcome, records

    def test_honest_artifacts_are_accepted(self, tmp_path):
        def honest(spec_dict, directory, shard, attempt, chaos_dict):
            relpath, payload = _write_cell(directory, shard)
            digest = hashlib.sha256(payload).hexdigest()
            return {"index": shard, "artifacts": [[relpath, digest]]}

        _, outcome, records = self._supervise(tmp_path, honest)
        assert outcome.completed == [0]
        assert outcome.quarantined == []
        assert len(records) == 1

    def test_mismatched_digest_is_data_integrity(self, tmp_path):
        def lying(spec_dict, directory, shard, attempt, chaos_dict):
            relpath, _ = _write_cell(directory, shard)
            wrong = hashlib.sha256(b"not what was written").hexdigest()
            return {"index": shard, "artifacts": [[relpath, wrong]]}

        supervisor, outcome, records = self._supervise(tmp_path, lying)
        assert records == []
        assert outcome.quarantined == [0]
        events = supervisor.failure_log.events()
        assert all(e["kind"] == DATA_INTEGRITY for e in events)
        assert "does not match" in events[-1]["reason"]

    def test_vanished_artifact_is_data_integrity(self, tmp_path):
        def ghost(spec_dict, directory, shard, attempt, chaos_dict):
            digest = hashlib.sha256(b"never written").hexdigest()
            return {"index": shard,
                    "artifacts": [["cells/ghost.json", digest]]}

        supervisor, outcome, _ = self._supervise(tmp_path, ghost)
        assert outcome.quarantined == [0]
        events = supervisor.failure_log.events()
        assert all(e["kind"] == DATA_INTEGRITY for e in events)
        assert "vanished" in events[-1]["reason"]
