"""Streaming attacks must agree with the batch attacks — exactly.

Every test materializes the shared fixture store into a batch
``TraceSet`` and checks the shard-at-a-time adapters reproduce the
in-RAM statistics to float precision, not just the same verdicts.
"""

import numpy as np
import pytest

from repro.campaign import (
    OnlineMoments,
    StreamingCpa,
    StreamingDpa,
    streaming_average_trace,
    streaming_spa,
    streaming_tvla,
)
from repro.sca import LadderCpa, LadderDpa, transition_spa
from repro.sca.ttest import tvla_fixed_vs_random

N_BITS = 2


def _decisions_match(streamed, batch):
    assert len(streamed.decisions) == len(batch.decisions)
    for s, b in zip(streamed.decisions, batch.decisions):
        assert s.bit_index == b.bit_index
        assert s.chosen == b.chosen
        assert s.true_bit == b.true_bit
        assert s.statistic_zero == pytest.approx(b.statistic_zero, abs=1e-9)
        assert s.statistic_one == pytest.approx(b.statistic_one, abs=1e-9)


class TestOnlineMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        block_a, block_b = rng.normal(size=(7, 5)), rng.normal(size=(9, 5))
        acc = OnlineMoments(5)
        acc.update(block_a)
        acc.update(block_b)
        full = np.vstack([block_a, block_b])
        np.testing.assert_allclose(acc.mean(), full.mean(axis=0))
        np.testing.assert_allclose(acc.variance(), full.var(axis=0, ddof=1))

    def test_masked_update_partitions_columns(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(10, 3))
        mask = rng.random(size=(10, 3)) > 0.5
        acc = OnlineMoments(3)
        acc.update(block, mask)
        for col in range(3):
            members = block[mask[:, col], col]
            assert acc.count[col] == members.size
            if members.size:
                assert acc.mean()[col] == pytest.approx(members.mean())

    def test_empty_columns_are_nan_not_crash(self):
        acc = OnlineMoments(2)
        acc.update(np.ones((4, 2)), np.zeros((4, 2), dtype=bool))
        assert np.isnan(acc.mean()).all()


class TestDpaEquivalence:
    def test_unprotected(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = LadderDpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(traces, N_BITS)
        streamed = StreamingDpa(unprotected_store).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_known_randomness(self, known_z_store):
        traces = known_z_store.as_trace_set()
        assert traces.known_randomness is not None
        batch = LadderDpa(known_z_store.spec.build_coprocessor()).recover_bits(
            traces, N_BITS, z_values=traces.known_randomness
        )
        streamed = StreamingDpa(
            known_z_store, use_stored_randomness=True
        ).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_max_traces_matches_batch_subset(self, unprotected_store):
        subset = unprotected_store.as_trace_set(max_traces=15)
        batch = LadderDpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(subset, N_BITS)
        streamed = StreamingDpa(unprotected_store).recover_bits(
            N_BITS, max_traces=15
        )
        _decisions_match(streamed, batch)

    def test_stored_randomness_requires_known_z(self, unprotected_store):
        attack = StreamingDpa(unprotected_store, use_stored_randomness=True)
        with pytest.raises(ValueError, match="no recorded randomness"):
            attack.recover_bits(1)

    def test_rejects_out_of_range_bits(self, unprotected_store):
        with pytest.raises(ValueError):
            StreamingDpa(unprotected_store).recover_bits(0)
        with pytest.raises(ValueError):
            StreamingDpa(unprotected_store).recover_bits(
                len(unprotected_store.iteration_slices) + 1
            )


class TestCpaEquivalence:
    def test_unprotected(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = LadderCpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(traces, N_BITS)
        streamed = StreamingCpa(unprotected_store).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_known_randomness(self, known_z_store):
        traces = known_z_store.as_trace_set()
        batch = LadderCpa(known_z_store.spec.build_coprocessor()).recover_bits(
            traces, N_BITS, z_values=traces.known_randomness
        )
        streamed = StreamingCpa(
            known_z_store, use_stored_randomness=True
        ).recover_bits(N_BITS)
        _decisions_match(streamed, batch)


class TestSpaAndAverage:
    def test_average_trace_matches_batch_mean(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        np.testing.assert_allclose(
            streaming_average_trace(unprotected_store),
            traces.samples.mean(axis=0),
        )

    def test_streaming_spa_matches_batch(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = transition_spa(
            traces.samples.mean(axis=0),
            list(traces.iteration_slices),
            list(traces.key_bits),
        )
        streamed = streaming_spa(unprotected_store)
        assert streamed.recovered_bits == batch.recovered_bits
        assert streamed.true_bits == batch.true_bits


class TestTvlaEquivalence:
    def test_matches_batch_welch_t(self, unprotected_store, tmp_path):
        from repro.campaign import AcquisitionEngine, CampaignSpec

        other_spec = CampaignSpec(
            n_traces=10, shard_size=4, scenario="unprotected",
            max_iterations=3, seed=77, noise_sigma=38.0,
        )
        other = AcquisitionEngine(str(tmp_path), other_spec, workers=1).run()
        fixed = unprotected_store.as_trace_set()
        rand = other.as_trace_set()
        width = min(fixed.samples.shape[1], rand.samples.shape[1])

        batch = tvla_fixed_vs_random(fixed.samples[:, :width],
                                     rand.samples[:, :width])
        streamed = streaming_tvla(unprotected_store, other,
                                  columns=(0, width))
        assert streamed.max_abs_t == pytest.approx(batch.max_abs_t, abs=1e-9)
        assert streamed.num_leaky_samples == batch.num_leaky_samples
        assert streamed.n_samples == batch.n_samples
        assert streamed.leaks == batch.leaks
