"""Streaming attacks must agree with the batch attacks — exactly.

Every test materializes the shared fixture store into a batch
``TraceSet`` and checks the shard-at-a-time adapters reproduce the
in-RAM statistics to float precision, not just the same verdicts.
"""

import numpy as np
import pytest

from repro.campaign import (
    AcquisitionEngine,
    CampaignSpec,
    OnlineMoments,
    PartialStoreError,
    StreamingCpa,
    StreamingDpa,
    TraceStore,
    store_provenance,
    streaming_average_trace,
    streaming_spa,
    streaming_tvla,
)
from repro.sca import LadderCpa, LadderDpa, transition_spa
from repro.sca.ttest import tvla_fixed_vs_random

N_BITS = 2


def _decisions_match(streamed, batch):
    assert len(streamed.decisions) == len(batch.decisions)
    for s, b in zip(streamed.decisions, batch.decisions):
        assert s.bit_index == b.bit_index
        assert s.chosen == b.chosen
        assert s.true_bit == b.true_bit
        assert s.statistic_zero == pytest.approx(b.statistic_zero, abs=1e-9)
        assert s.statistic_one == pytest.approx(b.statistic_one, abs=1e-9)


class TestOnlineMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        block_a, block_b = rng.normal(size=(7, 5)), rng.normal(size=(9, 5))
        acc = OnlineMoments(5)
        acc.update(block_a)
        acc.update(block_b)
        full = np.vstack([block_a, block_b])
        np.testing.assert_allclose(acc.mean(), full.mean(axis=0))
        np.testing.assert_allclose(acc.variance(), full.var(axis=0, ddof=1))

    def test_masked_update_partitions_columns(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(10, 3))
        mask = rng.random(size=(10, 3)) > 0.5
        acc = OnlineMoments(3)
        acc.update(block, mask)
        for col in range(3):
            members = block[mask[:, col], col]
            assert acc.count[col] == members.size
            if members.size:
                assert acc.mean()[col] == pytest.approx(members.mean())

    def test_empty_columns_are_nan_not_crash(self):
        acc = OnlineMoments(2)
        acc.update(np.ones((4, 2)), np.zeros((4, 2), dtype=bool))
        assert np.isnan(acc.mean()).all()


class TestDpaEquivalence:
    def test_unprotected(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = LadderDpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(traces, N_BITS)
        streamed = StreamingDpa(unprotected_store).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_known_randomness(self, known_z_store):
        traces = known_z_store.as_trace_set()
        assert traces.known_randomness is not None
        batch = LadderDpa(known_z_store.spec.build_coprocessor()).recover_bits(
            traces, N_BITS, z_values=traces.known_randomness
        )
        streamed = StreamingDpa(
            known_z_store, use_stored_randomness=True
        ).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_max_traces_matches_batch_subset(self, unprotected_store):
        subset = unprotected_store.as_trace_set(max_traces=15)
        batch = LadderDpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(subset, N_BITS)
        streamed = StreamingDpa(unprotected_store).recover_bits(
            N_BITS, max_traces=15
        )
        _decisions_match(streamed, batch)

    def test_stored_randomness_requires_known_z(self, unprotected_store):
        attack = StreamingDpa(unprotected_store, use_stored_randomness=True)
        with pytest.raises(ValueError, match="no recorded randomness"):
            attack.recover_bits(1)

    def test_rejects_out_of_range_bits(self, unprotected_store):
        with pytest.raises(ValueError):
            StreamingDpa(unprotected_store).recover_bits(0)
        with pytest.raises(ValueError):
            StreamingDpa(unprotected_store).recover_bits(
                len(unprotected_store.iteration_slices) + 1
            )


class TestCpaEquivalence:
    def test_unprotected(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = LadderCpa(
            unprotected_store.spec.build_coprocessor()
        ).recover_bits(traces, N_BITS)
        streamed = StreamingCpa(unprotected_store).recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_known_randomness(self, known_z_store):
        traces = known_z_store.as_trace_set()
        batch = LadderCpa(known_z_store.spec.build_coprocessor()).recover_bits(
            traces, N_BITS, z_values=traces.known_randomness
        )
        streamed = StreamingCpa(
            known_z_store, use_stored_randomness=True
        ).recover_bits(N_BITS)
        _decisions_match(streamed, batch)


class TestSpaAndAverage:
    def test_average_trace_matches_batch_mean(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        np.testing.assert_allclose(
            streaming_average_trace(unprotected_store),
            traces.samples.mean(axis=0),
        )

    def test_streaming_spa_matches_batch(self, unprotected_store):
        traces = unprotected_store.as_trace_set()
        batch = transition_spa(
            traces.samples.mean(axis=0),
            list(traces.iteration_slices),
            list(traces.key_bits),
        )
        streamed = streaming_spa(unprotected_store)
        assert streamed.recovered_bits == batch.recovered_bits
        assert streamed.true_bits == batch.true_bits


class TestTvlaEquivalence:
    def test_matches_batch_welch_t(self, unprotected_store, tmp_path):
        from repro.campaign import AcquisitionEngine, CampaignSpec

        other_spec = CampaignSpec(
            n_traces=10, shard_size=4, scenario="unprotected",
            max_iterations=3, seed=77, noise_sigma=38.0,
        )
        other = AcquisitionEngine(str(tmp_path), other_spec, workers=1).run()
        fixed = unprotected_store.as_trace_set()
        rand = other.as_trace_set()
        width = min(fixed.samples.shape[1], rand.samples.shape[1])

        batch = tvla_fixed_vs_random(fixed.samples[:, :width],
                                     rand.samples[:, :width])
        streamed = streaming_tvla(unprotected_store, other,
                                  columns=(0, width))
        assert streamed.max_abs_t == pytest.approx(batch.max_abs_t, abs=1e-9)
        assert streamed.num_leaky_samples == batch.num_leaky_samples
        assert streamed.n_samples == batch.n_samples
        assert streamed.leaks == batch.leaks


@pytest.fixture(scope="module")
def partial_store(tmp_path_factory):
    """A 3-shard campaign with the middle shard lost (12 -> 8 traces)."""
    directory = tmp_path_factory.mktemp("campaign-partial")
    spec = CampaignSpec(n_traces=12, shard_size=4, scenario="unprotected",
                        max_iterations=3, seed=13, noise_sigma=38.0)
    store = AcquisitionEngine(str(directory), spec, workers=1).run()
    store.forget_shards([1])
    store.save_manifest()
    return TraceStore(str(directory)).load()


class TestPartialStores:
    """Attacks must refuse incomplete stores unless told otherwise —
    and then report exactly which shards backed the statistics."""

    def test_attacks_refuse_partial_stores_by_default(self, partial_store):
        with pytest.raises(PartialStoreError, match="allow_partial"):
            StreamingDpa(partial_store)
        with pytest.raises(PartialStoreError):
            StreamingCpa(partial_store)
        with pytest.raises(PartialStoreError):
            streaming_average_trace(partial_store)
        with pytest.raises(PartialStoreError):
            streaming_spa(partial_store)

    def test_tvla_checks_both_stores(self, partial_store,
                                     unprotected_store):
        with pytest.raises(PartialStoreError):
            streaming_tvla(partial_store, unprotected_store)
        with pytest.raises(PartialStoreError):
            streaming_tvla(unprotected_store, partial_store)
        streaming_tvla(unprotected_store, partial_store,
                       allow_partial=True)

    def test_complete_store_needs_no_flag(self, unprotected_store):
        StreamingDpa(unprotected_store)
        streaming_spa(unprotected_store)

    def test_partial_dpa_matches_batch_over_surviving_shards(
            self, partial_store):
        # The exact-equivalence contract holds on the partial store
        # too: streaming over shards {0, 2} == batch over shards {0, 2}.
        traces = partial_store.as_trace_set()
        assert traces.n_traces == 8
        batch = LadderDpa(
            partial_store.spec.build_coprocessor()
        ).recover_bits(traces, N_BITS)
        attack = StreamingDpa(partial_store, allow_partial=True)
        streamed = attack.recover_bits(N_BITS)
        _decisions_match(streamed, batch)

    def test_provenance_names_the_backing_shards(self, partial_store):
        attack = StreamingDpa(partial_store, allow_partial=True)
        assert attack.last_provenance is None
        attack.recover_bits(N_BITS)
        provenance = attack.last_provenance
        assert provenance.partial
        assert provenance.shard_indices == (0, 2)
        assert provenance.n_traces == 8
        assert provenance.n_traces_planned == 12
        assert "PARTIAL" in provenance.describe()

    def test_provenance_on_complete_store(self, unprotected_store):
        provenance = store_provenance(unprotected_store)
        assert not provenance.partial
        assert provenance.shard_indices == (0, 1, 2)
        assert provenance.n_traces == 24
        assert "PARTIAL" not in provenance.describe()

    def test_provenance_respects_max_traces(self, unprotected_store):
        provenance = store_provenance(unprotected_store, max_traces=15)
        assert provenance.n_traces == 15
        assert provenance.shard_indices == (0, 1)
