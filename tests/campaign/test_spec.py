"""CampaignSpec: validation, serialization, deterministic derivation."""

import pytest

from repro.campaign import CampaignSpec, derive_rng, derive_seed
from repro.arch import CoprocessorConfig


class TestValidation:
    def test_rejects_bad_scenario(self):
        with pytest.raises(ValueError):
            CampaignSpec(n_traces=10, scenario="sidechannel")

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError):
            CampaignSpec(n_traces=0)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            CampaignSpec(n_traces=10, shard_size=0)

    def test_rejects_unknown_curve(self):
        with pytest.raises(KeyError):
            CampaignSpec(n_traces=10, curve="P-256")

    def test_rejects_future_schema(self):
        with pytest.raises(ValueError):
            CampaignSpec(n_traces=10, schema_version=999)


class TestSharding:
    def test_shard_count_and_sizes(self):
        spec = CampaignSpec(n_traces=23, shard_size=10)
        assert spec.n_shards == 3
        assert [spec.shard_trace_count(i) for i in range(3)] == [10, 10, 3]

    def test_exact_multiple(self):
        spec = CampaignSpec(n_traces=20, shard_size=10)
        assert spec.n_shards == 2
        assert spec.shard_trace_count(1) == 10


class TestSerialization:
    def test_roundtrip(self):
        spec = CampaignSpec(n_traces=100, shard_size=7,
                            scenario="known_randomness", seed=42,
                            key=0x1234, max_iterations=5, noise_sigma=12.0)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_plain(self):
        import json

        spec = CampaignSpec(n_traces=10, key=1 << 160)
        json.dumps(spec.to_dict())  # raises if anything non-serializable

    def test_from_config_roundtrip(self):
        config = CoprocessorConfig(digit_size=2, randomize_z=True)
        spec = CampaignSpec.from_config(config, n_traces=10,
                                        scenario="protected")
        rebuilt = spec.coprocessor_config()
        assert rebuilt.digit_size == 2
        assert rebuilt.randomize_z is True
        assert rebuilt.domain.name == config.domain.name

    def test_scenario_implies_randomize_z(self):
        assert not CampaignSpec(n_traces=1,
                                scenario="unprotected").randomize_z
        assert CampaignSpec(n_traces=1, scenario="protected").randomize_z


class TestDerivation:
    def test_streams_are_stable_and_distinct(self):
        a = derive_seed(7, "points", 3)
        assert a == derive_seed(7, "points", 3)
        assert a != derive_seed(7, "points", 4)
        assert a != derive_seed(7, "noise", 3)
        assert a != derive_seed(8, "points", 3)

    def test_rng_streams_reproduce(self):
        assert derive_rng(1, "z", 0).random() == derive_rng(1, "z", 0).random()

    def test_key_derivation_is_stable(self):
        spec = CampaignSpec(n_traces=1, seed=5)
        assert spec.resolve_key() == spec.resolve_key()
        assert spec.resolve_key() != CampaignSpec(n_traces=1,
                                                  seed=6).resolve_key()

    def test_explicit_key_wins(self):
        assert CampaignSpec(n_traces=1, key=99).resolve_key() == 99
