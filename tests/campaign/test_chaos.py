"""Chaos harness: seeded fault decisions and the full recovery matrix.

The headline test here is the acceptance criterion of the whole
fault-tolerance layer: a campaign run under seeded crashes, hangs and
post-write corruption must finish with shard files *byte-identical* to
a fault-free run — recovery that changes the data is not recovery.
"""

import os

import pytest

from repro.campaign import (
    CHAOS_CRASH_EXIT_CODE,
    DATA_INTEGRITY,
    TRANSIENT,
    AcquisitionEngine,
    CampaignSpec,
    ChaosConfig,
    ChaosInjectedError,
    CollectingReporter,
    RetryPolicy,
    TraceStore,
    chaos_acquire_shard,
)

SPEC = CampaignSpec(n_traces=4, shard_size=2, scenario="unprotected",
                    max_iterations=2, seed=31, noise_sigma=38.0)


class TestConfig:
    def test_parse(self):
        config = ChaosConfig.parse("crash=0.4, corrupt=0.25", seed=3,
                                   only_shards=(2, 0))
        assert config.crash_rate == 0.4
        assert config.corrupt_rate == 0.25
        assert config.error_rate == 0.0
        assert config.seed == 3
        assert config.only_shards == (0, 2)

    def test_parse_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosConfig.parse("explode=0.5")
        with pytest.raises(ValueError, match="fault=rate"):
            ChaosConfig.parse("crash")

    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(error_rate=-0.1)

    def test_dict_roundtrip(self):
        config = ChaosConfig(seed=7, crash_rate=0.3, hang_rate=0.1,
                             slow_seconds=0.2, only_shards=(1,))
        assert ChaosConfig.from_dict(config.to_dict()) == config

    def test_needs_processes(self):
        assert ChaosConfig(crash_rate=0.1).needs_processes
        assert ChaosConfig(hang_rate=0.1).needs_processes
        assert not ChaosConfig(error_rate=1.0, corrupt_rate=1.0,
                               slow_rate=1.0).needs_processes


class TestDecisions:
    def test_decisions_are_deterministic(self):
        a = ChaosConfig(seed=5, error_rate=0.5, corrupt_rate=0.5)
        b = ChaosConfig(seed=5, error_rate=0.5, corrupt_rate=0.5)
        rolls = [(s, t) for s in range(4) for t in range(4)]
        assert [a.execution_fault(s, t) for s, t in rolls] == \
            [b.execution_fault(s, t) for s, t in rolls]
        assert [a.corrupts(s, t) for s, t in rolls] == \
            [b.corrupts(s, t) for s, t in rolls]

    def test_seed_changes_the_draws(self):
        a = ChaosConfig(seed=5, error_rate=0.5)
        b = ChaosConfig(seed=6, error_rate=0.5)
        rolls = [(s, t) for s in range(8) for t in range(8)]
        assert [a.execution_fault(s, t) for s, t in rolls] != \
            [b.execution_fault(s, t) for s, t in rolls]

    def test_attempt_changes_the_draws(self):
        # The whole point: a fault on attempt 0 generally clears later.
        config = ChaosConfig(seed=0, error_rate=0.5)
        draws = [config.execution_fault(0, t) is not None
                 for t in range(64)]
        assert any(draws) and not all(draws)

    def test_only_shards_scopes_all_faults(self):
        config = ChaosConfig(seed=1, error_rate=1.0, corrupt_rate=1.0,
                             only_shards=(2,))
        assert config.execution_fault(2, 0) == "error"
        assert config.corrupts(2, 0)
        assert config.execution_fault(0, 0) is None
        assert not config.corrupts(0, 0)

    def test_rate_extremes_shortcut_the_roll(self):
        always = ChaosConfig(error_rate=1.0)
        never = ChaosConfig()
        for attempt in range(8):
            assert always.execution_fault(0, attempt) == "error"
            assert never.execution_fault(0, attempt) is None

    def test_crash_takes_precedence(self):
        config = ChaosConfig(crash_rate=1.0, hang_rate=1.0,
                             error_rate=1.0, slow_rate=1.0)
        assert config.execution_fault(0, 0) == "crash"

    def test_error_fault_raises_inline(self, tmp_path):
        TraceStore(str(tmp_path)).initialize(SPEC)
        config = ChaosConfig(error_rate=1.0)
        with pytest.raises(ChaosInjectedError, match="shard 0"):
            chaos_acquire_shard(SPEC, str(tmp_path), 0, 0, config)


def _fault_path(config, shard, budget):
    """Faults a shard hits before completing: (sequence, done_attempt)."""
    sequence = []
    for attempt in range(budget):
        fault = config.execution_fault(shard, attempt)
        if fault is None and not config.corrupts(shard, attempt):
            return sequence, attempt
        sequence.append(fault if fault is not None else "corrupt")
    return sequence, None


def _find_chaos(shards, budget):
    """A seed whose injected faults cover the matrix but still let
    every shard complete within the retry budget (pure hashing — the
    search costs microseconds and is itself deterministic)."""
    for seed in range(2000):
        config = ChaosConfig(seed=seed, crash_rate=0.35, hang_rate=0.25,
                             error_rate=0.2, corrupt_rate=0.3,
                             hang_seconds=3600.0)
        paths = [_fault_path(config, s, budget) for s in range(shards)]
        if any(done is None for _, done in paths):
            continue
        # The deterministic-kind budget (2) must survive: at most one
        # injected `error` per shard.
        if any(sequence.count("error") >= 2 for sequence, _ in paths):
            continue
        hit = [fault for sequence, _ in paths for fault in sequence]
        if hit.count("hang") != 1:     # exactly one watchdog kill
            continue
        if "crash" in hit and "corrupt" in hit:
            return config, hit
    raise AssertionError("no covering chaos seed in range")


class TestRecoveryMatrix:
    """Process-mode supervision under crash + hang + corruption."""

    def test_chaos_run_is_byte_identical_to_clean_run(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        policy = RetryPolicy(max_attempts=6, base_delay=0.01,
                             max_delay=0.05, jitter=0.0)

        clean = AcquisitionEngine(clean_dir, SPEC, workers=2).run()
        clean_digests = {r.index: (r.samples_sha256, r.aux_sha256)
                         for r in clean.shard_records}

        config, hit = _find_chaos(SPEC.n_shards, policy.max_attempts)
        reporter = CollectingReporter()
        engine = AcquisitionEngine(
            chaos_dir, SPEC, workers=2, reporter=reporter,
            shard_timeout=1.5, retry_policy=policy, chaos=config,
        )
        store = engine.run()

        assert engine.outcome == "clean"
        assert store.coverage().is_complete
        store.verify_all()
        assert {r.index: (r.samples_sha256, r.aux_sha256)
                for r in store.shard_records} == clean_digests

        # Every injected fault produced a classified, logged event.
        events = engine.failure_log.events()
        assert len(events) == len(hit)
        kinds = {e["kind"] for e in events}
        assert TRANSIENT in kinds           # crash and/or watchdog kill
        if "corrupt" in hit:
            assert DATA_INTEGRITY in kinds
        assert len(reporter.failures) == len(events)
        assert engine.metrics.retried_attempts == len(hit)

        # The crash left its signature exit code in the log...
        if "crash" in hit:
            assert any(str(CHAOS_CRASH_EXIT_CODE) in e["reason"]
                       for e in events)
        # ...and the watchdog reported the hang it killed.
        assert any("watchdog" in e["reason"] for e in events)

    def test_permanent_failure_degrades_not_dies(self, tmp_path):
        config = ChaosConfig(seed=1, error_rate=1.0, only_shards=(1,))
        policy = RetryPolicy(max_attempts=2, deterministic_attempts=2,
                             base_delay=0.0, jitter=0.0)
        engine = AcquisitionEngine(str(tmp_path), SPEC, workers=1,
                                   retry_policy=policy, chaos=config)
        store = engine.run()
        assert engine.outcome == "degraded"
        assert engine.metrics.quarantined_shards == [1]
        assert engine.quarantine.indices() == [1]
        coverage = store.coverage()
        assert not coverage.is_complete
        assert coverage.missing_shards == (1,)
        # The healthy shard still completed.
        assert [r.index for r in store.shard_records] == [0]

    def test_resume_skips_quarantined_shards(self, tmp_path):
        config = ChaosConfig(seed=1, error_rate=1.0, only_shards=(1,))
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        AcquisitionEngine(str(tmp_path), SPEC, workers=1,
                          retry_policy=policy, chaos=config).run()
        # A resumed run must not burn its budget on the known-bad
        # shard again: zero new failure events.
        engine = AcquisitionEngine(str(tmp_path), SPEC, workers=1,
                                   retry_policy=policy, chaos=config)
        before = len(engine.failure_log.events())
        engine.run()
        assert engine.outcome == "degraded"
        assert len(engine.failure_log.events()) == before
        # Released quarantine + healthy environment -> full recovery.
        engine.quarantine.clear()
        healed = AcquisitionEngine(str(tmp_path), SPEC, workers=1)
        store = healed.run()
        assert healed.outcome == "clean"
        assert store.coverage().is_complete

    def test_crash_debris_is_swept_on_resume(self, tmp_path):
        directory = str(tmp_path)
        store = TraceStore(directory)
        store.initialize(SPEC)
        stale = os.path.join(directory,
                             TraceStore.shard_filenames(0)[0] + ".tmp")
        with open(stale, "wb") as f:
            f.write(b"chaos: torn write")
        engine = AcquisitionEngine(directory, SPEC, workers=1)
        engine.run()
        assert not os.path.exists(stale)
        assert engine.outcome == "clean"
