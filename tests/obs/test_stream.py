"""Streaming telemetry: fold-order invariance is the headline."""

import json
import random

import pytest

from repro.obs.alerts import default_rulebook
from repro.obs.stream import (
    FLEET_SOURCE,
    StreamAggregator,
    make_event,
    render_stream_exposition,
    run_pipeline,
    sort_events,
    spread_drain_events,
)


def _shuffled_copies(events, copies=4, seed=3):
    rng = random.Random(seed)
    out = []
    for _ in range(copies):
        shuffled = list(events)
        rng.shuffle(shuffled)
        out.append(shuffled)
    return out


def _snapshot_bytes(events):
    aggregator = StreamAggregator()
    for event in sort_events(events):
        aggregator.fold(event)
    return json.dumps(aggregator.snapshot(), sort_keys=True).encode()


@pytest.fixture()
def fleet_events():
    rng = random.Random(17)
    events = []
    for source in ("tag-00000", "tag-00001", "tag-00002"):
        for session in range(20):
            events.append(make_event(
                rng.uniform(0.0, 5.0), source, session,
                session_uj=rng.uniform(1.0, 400.0),
                shed=rng.choice((0, 0, 0, 1))))
    return events


class TestEvents:
    def test_floats_rounded_once_at_creation(self):
        event = make_event(1.23456789012345, "s", 0,
                           session_uj=0.1234567891234)
        assert event["vt"] == round(1.23456789012345, 9)
        assert event["series"]["session_uj"] == \
            round(0.1234567891234, 9)

    def test_sort_is_a_total_order(self, fleet_events):
        a = sort_events(fleet_events)
        b = sort_events(list(reversed(fleet_events)))
        assert a == b


class TestAggregator:
    def test_fold_is_shuffle_invariant(self, fleet_events):
        baseline = _snapshot_bytes(fleet_events)
        for shuffled in _shuffled_copies(fleet_events):
            assert _snapshot_bytes(shuffled) == baseline

    def test_window_sums_and_peak(self):
        aggregator = StreamAggregator(window_s=1.0)
        for event in sort_events([
            make_event(0.1, "a", 0, uj=10.0),
            make_event(0.2, "a", 1, uj=20.0),
            make_event(1.5, "a", 2, uj=5.0),
            make_event(0.3, "b", 0, uj=25.0),
        ]):
            aggregator.fold(event)
        entry = aggregator.snapshot()["series"]["uj"]
        assert entry["peak_window"] == \
            {"window": 0, "sum": 30.0, "source": "a"}

    def test_quantiles_track_histogram(self):
        aggregator = StreamAggregator()
        for i in range(100):
            aggregator.fold(make_event(i * 0.01, "s", i,
                                       session_uj=float(i + 1)))
        p50 = aggregator.quantile("session_uj", 0.5)
        assert 40.0 <= p50 <= 60.0
        assert aggregator.quantile("missing", 0.5) is None

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StreamAggregator(window_s=0.0)


class TestSpreadDrain:
    def test_zero_energy_emits_nothing(self):
        assert spread_drain_events(1.0, "s", 0, 0.0, 2.0) == []

    def test_instant_session_is_one_event(self):
        events = spread_drain_events(1.25, "s", 0, 50.0, 0.0)
        assert len(events) == 1
        assert events[0]["series"]["drain_uj"] == 50.0

    def test_energy_conserved_across_windows(self):
        events = spread_drain_events(0.3, "s", 0, 100.0, 1.7,
                                     window_s=0.5)
        total = sum(e["series"]["drain_uj"] for e in events)
        assert total == pytest.approx(100.0, abs=1e-6)
        # 0.3..2.0 spans windows 0..3 of width 0.5.
        assert len(events) == 4

    def test_share_proportional_to_overlap(self):
        events = spread_drain_events(0.0, "s", 0, 100.0, 1.0,
                                     window_s=0.5)
        assert [e["series"]["drain_uj"] for e in events] == [50.0, 50.0]
        assert [e["vt"] for e in events] == [0.0, 0.5]


class TestPipeline:
    def test_derives_tail_series_at_boundaries(self, fleet_events):
        live, _ = run_pipeline(fleet_events, ())
        assert "session_uj_p99" in live["series"]
        assert FLEET_SOURCE in live["sources"]

    def test_pipeline_is_worker_shuffle_invariant(self, fleet_events):
        rules = default_rulebook()
        baseline = run_pipeline(fleet_events, rules)
        for shuffled in _shuffled_copies(fleet_events):
            assert run_pipeline(shuffled, rules) == baseline

    def test_external_aggregator_receives_the_fold(self, fleet_events):
        aggregator = StreamAggregator(window_s=0.5)
        live, _ = run_pipeline(fleet_events, (), aggregator=aggregator)
        assert aggregator.snapshot() == live


class TestExposition:
    def test_stream_families_and_stats(self, fleet_events):
        live, _ = run_pipeline(fleet_events, ())
        text = render_stream_exposition(live)
        assert "# TYPE repro_stream_session_uj gauge" in text
        assert 'repro_stream_session_uj{stat="p99"}' in text
        assert 'stat="peak_window_sum"' in text

    def test_label_values_escaped(self):
        aggregator = StreamAggregator()
        aggregator.fold(make_event(0.0, 'we"ird\\src', 0, uj=1.0))
        text = render_stream_exposition(aggregator.snapshot())
        assert '\\"' in text and "\\\\" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_stream_exposition({"series": {}}) == ""
