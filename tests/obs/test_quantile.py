"""Fixed-bucket quantile estimation: the documented error bound."""

import math
import random

import pytest

from repro.obs.metrics import MetricRegistry
from repro.obs.quantile import (
    PERCENTILES,
    estimate_quantile,
    percentiles_from_counts,
    render_quantile_exposition,
    snapshot_percentiles,
)

BUCKETS = (1.0, 3.0, 10.0, 30.0, 100.0)


def _fold(samples, buckets=BUCKETS):
    counts = [0] * len(buckets)
    for sample in samples:
        for i, le in enumerate(buckets):
            if sample <= le:
                counts[i] += 1
                break
    return counts


def _true_quantile(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _bucket_width(samples, buckets, q):
    """The width of the bucket the true q-rank sample lands in."""
    true = _true_quantile(samples, q)
    lower = min(samples)
    for upper in buckets:
        if true <= upper:
            return upper - lower
        lower = upper
    return max(samples) - buckets[-1]


class TestEstimate:
    def test_empty_series_is_none(self):
        assert estimate_quantile(BUCKETS, [0] * 5, 0, None, None,
                                 0.5) is None

    def test_degenerate_series_is_exact(self):
        assert estimate_quantile(BUCKETS, [0, 3, 0, 0, 0], 3,
                                 2.5, 2.5, 0.99) == 2.5

    def test_quantile_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            estimate_quantile(BUCKETS, [1], 1, 1.0, 1.0, 1.5)

    def test_error_bounded_by_one_bucket_width(self):
        rng = random.Random(7)
        for _ in range(20):
            samples = [rng.uniform(0.1, 150.0) for _ in
                       range(rng.randrange(3, 60))]
            counts = _fold(samples)
            for q in PERCENTILES:
                estimate = estimate_quantile(
                    BUCKETS, counts, len(samples),
                    min(samples), max(samples), q)
                true = _true_quantile(samples, q)
                width = _bucket_width(samples, BUCKETS, q)
                assert abs(estimate - true) <= width + 1e-9, \
                    (q, samples)

    def test_estimate_never_leaves_min_max(self):
        rng = random.Random(11)
        samples = [rng.uniform(0.5, 200.0) for _ in range(40)]
        counts = _fold(samples)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            estimate = estimate_quantile(BUCKETS, counts, len(samples),
                                         min(samples), max(samples), q)
            assert min(samples) <= estimate <= max(samples)

    def test_overflow_bucket_bounded_by_observed_max(self):
        # Every sample above the last upper bound.
        samples = [120.0, 140.0, 160.0]
        counts = _fold(samples)
        assert sum(counts) == 0
        estimate = estimate_quantile(BUCKETS, counts, 3, 120.0, 160.0,
                                     0.99)
        assert 100.0 < estimate <= 160.0


class TestRenderers:
    def test_percentiles_from_counts_keys_and_rounding(self):
        samples = [0.5, 2.0, 8.0, 25.0, 90.0]
        out = percentiles_from_counts(BUCKETS, _fold(samples),
                                      len(samples), min(samples),
                                      max(samples))
        assert set(out) == {"p50", "p95", "p99"}
        for value in out.values():
            assert value == round(value, 6)

    def test_snapshot_percentiles_only_histograms(self):
        registry = MetricRegistry()
        histogram = registry.histogram("repro_x_uj", "test",
                                       buckets=BUCKETS)
        counter = registry.counter("repro_x_total", "test")
        counter.inc(3)
        for sample in (0.5, 5.0, 50.0):
            histogram.observe(sample)
        out = snapshot_percentiles(registry.snapshot())
        assert set(out) == {"repro_x_uj"}
        row = out["repro_x_uj"][0]
        assert row["count"] == 3
        assert row["p50"] is not None

    def test_exposition_escapes_label_values(self):
        registry = MetricRegistry()
        histogram = registry.histogram("repro_x_uj", "test",
                                       buckets=BUCKETS)
        histogram.observe(2.0, label='we"ird\\value\n')
        text = render_quantile_exposition(registry.snapshot())
        assert "repro_x_uj_q{" in text
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\n " not in text  # no raw newline inside a sample line

    def test_exposition_empty_without_histograms(self):
        assert render_quantile_exposition({"metrics": {}}) == ""
