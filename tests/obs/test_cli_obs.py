"""The `obs` CLI verbs and the --obs flags on campaign/protocol."""

import json
import os

import pytest

from repro.cli import main

ACQUIRE = ["campaign", "acquire", "--curve", "TOY-B17", "--traces", "6",
           "--shard-size", "2", "--workers", "1", "--seed", "7",
           "--quiet", "--obs"]


@pytest.fixture(scope="class")
def traced_cli_run(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("obs-cli") / "camp")
    assert main(ACQUIRE + ["--dir", directory]) == 0
    return directory


class TestObsReport:
    def test_acquire_announces_the_obs_dir(self, tmp_path, capsys):
        d = str(tmp_path / "camp")
        assert main(ACQUIRE + ["--dir", d]) == 0
        out = capsys.readouterr().out
        assert "observability:" in out
        assert os.path.isdir(os.path.join(d, "obs"))

    def test_report_prints_energy_rollup(self, traced_cli_run, capsys):
        assert main(["obs", "report", "--dir", traced_cli_run]) == 0
        out = capsys.readouterr().out
        assert "energy by span (self / total):" in out
        assert "total energy:" in out
        assert "ladder.step" in out

    def test_report_json_is_machine_readable(self, traced_cli_run,
                                             capsys):
        assert main(["obs", "report", "--dir", traced_cli_run,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total_uj"] > 0
        assert data["manifest"]["kind"] == "campaign"

    def test_required_spans_and_metrics_gate_exit_code(
            self, traced_cli_run, capsys):
        assert main([
            "obs", "report", "--dir", traced_cli_run,
            "--require-spans", "campaign.acquire,shard,trace,ladder.step",
            "--require-metrics",
            "repro_campaign_energy_uj_total,repro_arch_pointmult_cycles",
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--dir", traced_cli_run,
                     "--require-spans", "never.seen"]) == 1
        assert "missing span" in capsys.readouterr().out

    def test_report_without_obs_data_fails_cleanly(self, tmp_path,
                                                   capsys):
        assert main(["obs", "report", "--dir", str(tmp_path)]) == 1
        assert "obs error:" in capsys.readouterr().err


class TestObsDiff:
    def test_self_diff_passes_threshold(self, traced_cli_run, capsys):
        assert main(["obs", "diff", traced_cli_run, traced_cli_run,
                     "--max-regression", "20"]) == 0
        assert "ok: no metric above +20%" in capsys.readouterr().out

    def test_regression_fails_the_diff(self, traced_cli_run, tmp_path,
                                       capsys):
        from repro.obs.metrics import MetricRegistry
        from repro.obs.report import load_metrics, resolve_obs_dir

        registry = MetricRegistry()
        registry.merge_snapshot(
            load_metrics(resolve_obs_dir(traced_cli_run)))
        registry.counter("repro_campaign_traces_total").inc(50)
        worse = str(tmp_path / "worse.json")
        registry.write_snapshot(worse)
        assert main(["obs", "diff", traced_cli_run, worse,
                     "--filter", "repro_campaign_traces_total",
                     "--max-regression", "20"]) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestDoctorProvenance:
    def test_doctor_shows_pid_and_attempt_wall(self, tmp_path, capsys):
        d = str(tmp_path / "chaos")
        code = main([
            "campaign", "acquire", "--dir", d, "--curve", "TOY-B17",
            "--traces", "4", "--shard-size", "2", "--workers", "2",
            "--seed", "7", "--quiet", "--chaos", "error=0.6",
            "--chaos-seed", "3", "--max-attempts", "2",
        ])
        assert code == 3
        capsys.readouterr()
        assert main(["campaign", "doctor", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "(pid " in out
        assert "s)" in out and ", ran " in out


class TestObsTailAlertsTrend:
    """The telemetry verbs: tail, alerts (exit contract), trend."""

    @pytest.fixture(scope="class")
    def flood_soak(self, tmp_path_factory):
        from repro.adversary import AttackSpec, run_attack_soak

        directory = str(tmp_path_factory.mktemp("flood") / "soak")
        spec = AttackSpec(adversary="bogus-flood", defense="none",
                          sessions=12, cohorts=1, legit_fraction=0.2,
                          seed=2013)
        run_attack_soak(directory, spec, workers=1)
        return directory

    @pytest.fixture(scope="class")
    def clean_soak(self, tmp_path_factory):
        from repro.adversary import AttackSpec, run_attack_soak

        directory = str(tmp_path_factory.mktemp("clean") / "soak")
        spec = AttackSpec(adversary="bogus-flood", defense="none",
                          sessions=12, cohorts=1, legit_fraction=1.0,
                          seed=2013)
        run_attack_soak(directory, spec, workers=1)
        return directory

    def test_tail_renders_the_series_table(self, flood_soak, capsys):
        assert main(["obs", "tail", "--dir", flood_soak]) == 0
        out = capsys.readouterr().out
        assert "session_uj" in out and "drain_uj" in out
        assert "p99=" in out
        assert "no flight-recorder dumps" in out

    def test_tail_json_is_the_telemetry_snapshot(self, flood_soak,
                                                 capsys):
        assert main(["obs", "tail", "--dir", flood_soak,
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "session_uj" in data["series"]

    def test_tail_without_telemetry_fails_cleanly(self, tmp_path,
                                                  capsys):
        assert main(["obs", "tail", "--dir", str(tmp_path)]) == 1
        assert "obs error:" in capsys.readouterr().err

    def test_alerts_exit_3_when_the_flood_is_detected(self, flood_soak,
                                                      capsys):
        assert main(["obs", "alerts", "--dir", flood_soak]) == 3
        out = capsys.readouterr().out
        assert "energy_session_p99" in out

    def test_alerts_exit_0_on_the_clean_baseline(self, clean_soak,
                                                 capsys):
        assert main(["obs", "alerts", "--dir", clean_soak]) == 0
        out = capsys.readouterr().out
        assert "every rule stayed silent" in out

    def test_trend_folds_and_is_idempotent(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_a.json").write_text(
            json.dumps({"speedup": 2.0}))
        assert main(["obs", "trend", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "folded new entry" in out
        assert (results / "BENCH_trend.json").exists()
        assert main(["obs", "trend", "--results", str(results)]) == 0
        assert "trend untouched" in capsys.readouterr().out


class TestProtocolObs:
    def test_soak_writes_and_reports_protocol_spans(self, tmp_path,
                                                    capsys):
        obs_dir = str(tmp_path / "soak-obs")
        assert main(["protocol", "soak", "--sessions", "2",
                     "--sweep", "0,0.2", "--workers", "0", "--seed", "5",
                     "--quiet", "--obs-dir", obs_dir]) == 0
        capsys.readouterr()
        assert main([
            "obs", "report", "--dir", obs_dir,
            "--require-spans", "protocol.soak,protocol.session",
            "--require-metrics",
            "repro_protocol_sessions_total,repro_channel_frames_total",
        ]) == 0
        out = capsys.readouterr().out
        assert "protocol.soak" in out
