"""Reading runs back: rollups, the energy contract, reports, diffs."""

import json

import pytest

from repro.campaign.acquire import random_protocol_point
from repro.campaign.spec import derive_rng
from repro.obs.metrics import MetricRegistry
from repro.obs.report import (
    canonical_span_tree,
    check_required,
    energy_rollup,
    load_metrics,
    load_spans,
    name_rollup,
    render_diff,
    render_report,
    report_json,
    resolve_obs_dir,
    top_slowest,
)

from .conftest import TRACED_SPEC


def independent_energy_total_uj(spec):
    """Re-derive the campaign's total energy straight from the model,
    sharing no code path with the tracer's attribution."""
    from repro.power.energy import calibrate_energy_model

    total = 0.0
    for shard_index in range(spec.n_shards):
        coprocessor = spec.build_coprocessor()
        model = calibrate_energy_model(coprocessor)
        point_rng = derive_rng(spec.seed, "points", shard_index)
        z_rng = derive_rng(spec.seed, "z", shard_index)
        key = spec.resolve_key()
        field = coprocessor.domain.field
        for _ in range(spec.shard_trace_count(shard_index)):
            point = random_protocol_point(coprocessor.domain, point_rng)
            z0 = 0
            while z0 == 0:
                z0 = z_rng.getrandbits(field.m) & (field.order - 1)
            execution = coprocessor.point_multiply(
                key, point, initial_z=z0,
                max_iterations=spec.max_iterations, recover_y=False,
            )
            total += model.report(execution).energy_joules * 1e6
    return total


class TestEnergyRollup:
    def test_rollup_total_matches_energy_model(self, traced_run):
        """The acceptance bar: energy-by-span total within 0.1% of the
        model's own total for the campaign."""
        rollup = energy_rollup(load_spans(traced_run["obs_dir"]))
        expected = independent_energy_total_uj(TRACED_SPEC)
        assert rollup["total_uj"] == pytest.approx(expected, rel=1e-3)

    def test_rollup_total_equals_energy_counter_exactly(self, traced_run):
        rollup = energy_rollup(load_spans(traced_run["obs_dir"]))
        snapshot = load_metrics(traced_run["obs_dir"])
        entry = snapshot["metrics"]["repro_campaign_energy_uj_total"]
        (value,) = [item["value"] for item in entry["values"]]
        assert rollup["total_uj"] == value

    def test_children_partition_their_parents(self, traced_run):
        """ladder.step self == total (leaves); the trace spans keep
        only the prologue/epilogue; shards shield nothing."""
        by_name = energy_rollup(
            load_spans(traced_run["obs_dir"]))["by_name"]
        steps = by_name["ladder.step"]
        assert steps["self_uj"] == pytest.approx(steps["total_uj"])
        trace = by_name["trace"]
        assert 0 < trace["self_uj"] < trace["total_uj"]
        shard = by_name["shard"]
        assert shard["self_uj"] == pytest.approx(0.0, abs=1e-12)
        assert shard["total_uj"] == pytest.approx(trace["total_uj"])


class TestSpanTreeAndRollups:
    def test_tree_roots_at_campaign_acquire(self, traced_run):
        tree = canonical_span_tree(traced_run["obs_dir"])
        (root,) = tree
        assert root["name"] == "campaign.acquire"
        names = {child["name"] for child in root["children"]}
        assert names == {"campaign.plan", "shard"}
        shard = next(c for c in root["children"] if c["name"] == "shard")
        trace = shard["children"][0]
        assert trace["name"] == "trace"
        assert {kid["name"] for kid in trace["children"]} == \
            {"ladder.step"}

    def test_name_rollup_counts(self, traced_run):
        rollup = name_rollup(load_spans(traced_run["obs_dir"]))
        assert rollup["shard"]["count"] == TRACED_SPEC.n_shards
        assert rollup["trace"]["count"] == TRACED_SPEC.n_traces
        steps = TRACED_SPEC.n_traces * TRACED_SPEC.max_iterations
        assert rollup["ladder.step"]["count"] == steps
        assert rollup["trace"]["cycles"] > 0
        assert rollup["trace"]["wall_s"] > 0

    def test_top_slowest_is_sorted(self, traced_run):
        spans = load_spans(traced_run["obs_dir"])
        slowest = top_slowest(spans, 5)
        walls = [r["end_s"] - r["start_s"] for r in slowest]
        assert walls == sorted(walls, reverse=True)
        assert len(slowest) == 5

    def test_resolve_obs_dir_accepts_run_or_obs_dir(self, traced_run):
        assert resolve_obs_dir(traced_run["dir"]) == \
            resolve_obs_dir(traced_run["obs_dir"])
        with pytest.raises(FileNotFoundError):
            resolve_obs_dir("/nonexistent/nowhere")


class TestReportRendering:
    def test_report_json_shape(self, traced_run):
        data = report_json(traced_run["dir"], top=3)
        assert data["total_uj"] == \
            data["energy_rollup"]["total_uj"] > 0
        assert len(data["slowest_spans"]) == 3
        assert data["manifest"]["kind"] == "campaign"
        assert data["manifest"]["seed"] == TRACED_SPEC.seed
        assert data["manifest"]["config_digest"] == TRACED_SPEC.digest()
        json.dumps(data)   # machine-readable end to end

    def test_render_report_mentions_every_span_name(self, traced_run):
        text = render_report(traced_run["dir"])
        for name in ("campaign.acquire", "shard", "trace",
                     "ladder.step", "total energy:"):
            assert name in text

    def test_check_required(self, traced_run):
        missing = check_required(
            traced_run["dir"],
            required_spans=["shard", "never.seen"],
            required_metrics=["repro_campaign_traces_total",
                              "repro_ghost_total"],
        )
        assert missing == {"missing_spans": ["never.seen"],
                           "missing_metrics": ["repro_ghost_total"]}


class TestDiff:
    def test_self_diff_is_flat(self, traced_run):
        text, regressions = render_diff(
            traced_run["dir"], traced_run["dir"], max_regression=0.0)
        assert regressions == []
        assert "ok: no metric above +0%" in text

    def test_regression_detected(self, tmp_path, traced_run):
        registry = MetricRegistry()
        registry.merge_snapshot(load_metrics(traced_run["obs_dir"]))
        registry.counter("repro_campaign_traces_total").inc(100)
        worse = str(tmp_path / "worse.json")
        registry.write_snapshot(worse)
        text, regressions = render_diff(
            traced_run["dir"], worse,
            patterns=["repro_campaign_traces_total"], max_regression=20.0)
        assert len(regressions) == 1
        assert "REGRESSION" in text
