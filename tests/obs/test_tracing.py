"""Span identity, context propagation, detail gating, persistence."""

import json

import pytest

from repro.obs.tracing import (
    SpanWriter,
    Tracer,
    current_span,
    derive_span_id,
    derive_trace_id,
)


@pytest.fixture
def tracer(tmp_path):
    writer = SpanWriter(str(tmp_path / "spans.jsonl"), batch_size=1)
    t = Tracer(derive_trace_id(7, "cfg"), writer, detail=2)
    yield t
    t.close()


def read_records(tracer):
    tracer.flush()
    with open(tracer.writer.path, encoding="utf-8") as f:
        return [json.loads(line) for line in f if line.strip()]


class TestIdentity:
    def test_ids_are_pure_functions_of_inputs(self):
        tid = derive_trace_id(7, "cfg")
        assert tid == derive_trace_id(7, "cfg")
        assert tid != derive_trace_id(8, "cfg")
        assert tid != derive_trace_id(7, "other")
        sid = derive_span_id(tid, None, "shard", 3)
        assert sid == derive_span_id(tid, None, "shard", 3)
        assert sid != derive_span_id(tid, None, "shard", 4)
        assert sid != derive_span_id(tid, sid, "shard", 3)
        assert len(tid) == len(sid) == 16

    def test_worker_rederives_coordinator_root_id(self, tracer, tmp_path):
        """The cross-process contract: a worker derives its parent id
        from (trace_id, None, 'campaign.acquire', 0) with no IPC."""
        with tracer.span("campaign.acquire", key=0) as root:
            pass
        other = Tracer(tracer.trace_id,
                       SpanWriter(str(tmp_path / "w.jsonl")))
        derived = derive_span_id(other.trace_id, None,
                                 "campaign.acquire", 0)
        assert derived == root.span_id
        other.close()


class TestPropagation:
    def test_nesting_links_parent_ids(self, tracer):
        with tracer.span("outer", key=0) as outer:
            assert current_span() is outer
            with tracer.span("inner", key=1) as inner:
                assert inner.parent_id == outer.span_id
        assert current_span() is None
        records = {r["name"]: r for r in read_records(tracer)}
        assert records["inner"]["parent"] == records["outer"]["span"]
        assert records["outer"]["parent"] is None

    def test_auto_keys_count_children(self, tracer):
        with tracer.span("outer", key=0):
            ids = [tracer.event("child") for _ in range(3)]
        assert len(set(ids)) == 3
        keys = [r["key"] for r in read_records(tracer)
                if r["name"] == "child"]
        assert sorted(keys) == ["0", "1", "2"]

    def test_explicit_parent_id_wins(self, tracer):
        fake_parent = derive_span_id(tracer.trace_id, None, "ghost", 0)
        with tracer.span("outer", key=0):
            with tracer.span("adopted", key=0,
                             parent_id=fake_parent) as span:
                assert span.parent_id == fake_parent


class TestDetailGating:
    def test_spans_above_detail_yield_none(self, tmp_path):
        writer = SpanWriter(str(tmp_path / "s.jsonl"))
        tracer = Tracer("t" * 16, writer, detail=1)
        with tracer.span("hot", key=0, level=2) as span:
            assert span is None
        assert tracer.event("hotter", level=3) is None
        tracer.close()
        assert read_records(tracer) == []

    def test_gated_span_does_not_become_ambient_parent(self, tmp_path):
        tracer = Tracer("t" * 16, SpanWriter(str(tmp_path / "s.jsonl")),
                        detail=1)
        with tracer.span("visible", key=0) as outer:
            with tracer.span("gated", level=2):
                with tracer.span("leaf", key=5) as leaf:
                    assert leaf.parent_id == outer.span_id
        tracer.close()


class TestPersistence:
    def test_records_carry_attribution_and_sorted_attrs(self, tracer):
        with tracer.span("trace", key=2, scenario="protected") as span:
            span.set(cycles=812, uj=0.048, z="last", a="first")
        (record,) = read_records(tracer)
        assert record["cycles"] == 812
        assert record["uj"] == pytest.approx(0.048)
        assert list(record["attrs"]) == ["a", "scenario", "z"]
        assert {"start_s", "end_s", "pid"} <= set(record)

    def test_event_is_zero_duration_leaf(self, tracer):
        tracer.event("ladder.step", key=9, cycles=144, uj=0.001, bit=1)
        (record,) = read_records(tracer)
        assert record["cycles"] == 144
        assert record["attrs"]["bit"] == 1

    def test_batched_writer_flushes_on_close(self, tmp_path):
        writer = SpanWriter(str(tmp_path / "batch.jsonl"), batch_size=64)
        tracer = Tracer("t" * 16, writer)
        tracer.event("only", key=0)
        tracer.close()
        with open(writer.path, encoding="utf-8") as f:
            assert len(f.readlines()) == 1

    def test_bad_batch_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SpanWriter(str(tmp_path / "x.jsonl"), batch_size=0)
