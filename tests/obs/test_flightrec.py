"""The crash flight recorder: bounded ring, deterministic dumps."""

import json

import pytest

from repro.obs.flightrec import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    flight_path,
    list_flight_dumps,
    load_flight_dumps,
    strip_record,
)


def _span(i):
    return {"name": "trace", "span": f"s{i:04d}", "parent": None,
            "cycles": i, "uj": float(i), "start_s": 12.5 + i,
            "end_s": 13.0 + i, "pid": 4242}


class TestRing:
    def test_ring_keeps_the_last_capacity_records(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record(_span(i))
        assert recorder.recorded == 10
        assert len(recorder) == 3
        assert [r["span"] for r in recorder.snapshot()] == \
            ["s0007", "s0008", "s0009"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_strips_wall_clock_and_pid(self):
        stripped = strip_record(_span(1))
        assert "start_s" not in stripped
        assert "end_s" not in stripped
        assert "pid" not in stripped
        assert stripped["cycles"] == 1


class TestDumps:
    def test_dump_load_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record(_span(i))
        path = flight_path(str(tmp_path), "shard-00002")
        recorder.dump(path, "chaos-kill", context={"shard": 2})
        dumps = load_flight_dumps(str(tmp_path))
        assert [name for name, _ in dumps] == ["flight-shard-00002.json"]
        payload = dumps[0][1]
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["reason"] == "chaos-kill"
        assert payload["context"] == {"shard": 2}
        assert payload["recorded"] == 6
        assert len(payload["records"]) == 4

    def test_dump_is_byte_deterministic(self, tmp_path):
        for run in ("a", "b"):
            recorder = FlightRecorder(capacity=8)
            for i in range(5):
                recorder.record(_span(i))
            recorder.dump(flight_path(str(tmp_path / run), "w"),
                          "watchdog", context={"shard": 0})
        assert (tmp_path / "a" / "flight-w.json").read_bytes() == \
            (tmp_path / "b" / "flight-w.json").read_bytes()

    def test_torn_dump_skipped(self, tmp_path):
        (tmp_path / "flight-torn.json").write_text('{"schema": 1, ')
        FlightRecorder().dump(flight_path(str(tmp_path), "ok"),
                              "exception")
        assert list_flight_dumps(str(tmp_path)) == \
            ["flight-ok.json", "flight-torn.json"]
        assert [name for name, _ in load_flight_dumps(str(tmp_path))] \
            == ["flight-ok.json"]

    def test_missing_dir_is_empty(self, tmp_path):
        assert list_flight_dumps(str(tmp_path / "nope")) == []
        assert load_flight_dumps(str(tmp_path / "nope")) == []
