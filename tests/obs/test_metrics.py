"""Exporter conformance: Prometheus text, JSON snapshots, merging."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    MetricError,
    MetricRegistry,
    diff_snapshots,
    strip_wall_metrics,
)


def sample_registry():
    registry = MetricRegistry()
    registry.counter("repro_test_events_total", "events").inc(3, kind="a")
    registry.counter("repro_test_events_total").inc(2, kind="b")
    registry.counter("repro_test_energy_uj_total").inc(0.125)
    registry.gauge("repro_test_coverage_ratio", "coverage").set(0.75)
    hist = registry.histogram("repro_test_step_cycles", "cycles",
                              buckets=DEFAULT_CYCLE_BUCKETS)
    for value in (50, 250, 2_500, 2_000_000):
        hist.observe(value)
    return registry


class TestNaming:
    def test_convention_enforced(self):
        registry = MetricRegistry()
        for bad in ("traces_total", "repro_Traces_total", "repro_x",
                    "repro-campaign-traces"):
            with pytest.raises(MetricError):
                registry.counter(bad)

    def test_counter_cannot_decrease(self):
        with pytest.raises(MetricError):
            sample_registry().counter("repro_test_events_total").inc(-1)

    def test_kind_collision_rejected(self):
        registry = sample_registry()
        with pytest.raises(MetricError):
            registry.gauge("repro_test_events_total")

    def test_histogram_bucket_redeclaration_rejected(self):
        registry = sample_registry()
        with pytest.raises(MetricError):
            registry.histogram("repro_test_step_cycles",
                               buckets=(1.0, 2.0))


class TestPrometheusText:
    """The text exposition parses line-by-line and is self-consistent."""

    SAMPLE_RE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE.+inf]+$"
    )

    def test_every_line_parses(self):
        text = sample_registry().render_prometheus()
        assert text.endswith("\n")
        for line in text.strip().split("\n"):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert self.SAMPLE_RE.match(line), f"unparsable line: {line!r}"

    def test_type_lines_precede_samples(self):
        text = sample_registry().render_prometheus()
        seen_types = set()
        for line in text.strip().split("\n"):
            if line.startswith("# TYPE "):
                seen_types.add(line.split()[2])
            elif not line.startswith("#"):
                family = re.sub(r"_(bucket|sum|count)$", "",
                                line.split("{")[0].split(" ")[0])
                assert family in seen_types or \
                    line.split("{")[0].split(" ")[0] in seen_types

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        text = sample_registry().render_prometheus()
        buckets = []
        count = None
        for line in text.strip().split("\n"):
            if line.startswith("repro_test_step_cycles_bucket"):
                buckets.append(float(line.rsplit(" ", 1)[1]))
            elif line.startswith("repro_test_step_cycles_count"):
                count = float(line.rsplit(" ", 1)[1])
        assert buckets == sorted(buckets)          # cumulative
        assert buckets[-1] == count == 4           # +Inf catches overflow

    def test_label_values_escaped(self):
        registry = MetricRegistry()
        registry.counter("repro_test_events_total").inc(
            1, kind='quo"te\nline')
        text = registry.render_prometheus()
        assert r"\"" in text and r"\n" in text and "\nline" not in \
            text.split("# TYPE")[1]


class TestSnapshotRoundTrip:
    def test_snapshot_is_json_serializable_and_sorted(self):
        snapshot = sample_registry().snapshot()
        payload = json.dumps(snapshot, sort_keys=True)
        assert json.loads(payload) == snapshot

    def test_round_trip_through_merge(self):
        snapshot = sample_registry().snapshot()
        fresh = MetricRegistry()
        fresh.merge_snapshot(snapshot)
        assert fresh.snapshot() == snapshot

    def test_write_load_round_trip(self, tmp_path):
        registry = sample_registry()
        path = str(tmp_path / "metrics.json")
        registry.write_snapshot(path)
        assert MetricRegistry.load_snapshot(path) == registry.snapshot()

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "metrics": {}}))
        with pytest.raises(MetricError):
            MetricRegistry.load_snapshot(str(path))

    def test_histogram_bucket_counts_sum_to_count(self):
        snapshot = sample_registry().snapshot()
        entry = snapshot["metrics"]["repro_test_step_cycles"]
        for item in entry["values"]:
            overflow = item["count"] - sum(item["bucket_counts"])
            assert overflow >= 0
            # overflow is exactly the +Inf bucket: values above the
            # last upper bound (2e6 > 1e6 here).
            assert overflow == 1

    def test_merge_adds_counters_and_histograms(self):
        a, b = sample_registry(), sample_registry()
        a.merge_snapshot(b.snapshot())
        assert a.counter("repro_test_events_total").value(kind="a") == 6
        state = a.histogram("repro_test_step_cycles").state()
        assert state.count == 8
        assert sum(state.bucket_counts) == 6   # 2x (4 - 1 overflow)
        assert state.min == 50 and state.max == 2_000_000


class TestDiffAndStrip:
    def test_strip_wall_metrics(self):
        registry = sample_registry()
        registry.gauge("repro_test_rate_traces_per_second").set(9.0)
        registry.histogram("repro_test_wall_seconds").observe(1.0)
        kept = strip_wall_metrics(registry.snapshot())["metrics"]
        assert "repro_test_rate_traces_per_second" not in kept
        assert "repro_test_wall_seconds" not in kept
        assert "repro_test_events_total" in kept

    def test_diff_reports_pct_and_none_for_zero_base(self):
        a = sample_registry().snapshot()
        b_registry = sample_registry()
        b_registry.counter("repro_test_events_total").inc(3, kind="a")
        rows = diff_snapshots(a, b_registry.snapshot(),
                              ["repro_test_events_total"])
        by_labels = {tuple(sorted(r["labels"].items())): r for r in rows}
        row = by_labels[(("kind", "a"),)]
        assert row["a"] == 3 and row["b"] == 6
        assert math.isclose(row["pct"], 100.0)

    def test_diff_histogram_exposes_count_and_mean(self):
        snap = sample_registry().snapshot()
        rows = diff_snapshots(snap, snap, ["repro_test_step_cycles"])
        names = {r["metric"] for r in rows}
        assert names == {"repro_test_step_cycles:count",
                         "repro_test_step_cycles:mean"}
        assert all(r["delta"] == 0 for r in rows)
