"""The bench-trajectory aggregator: idempotent folds, change entries."""

import json

from repro.obs.trend import (
    TREND_NAME,
    bench_name,
    fold_trend,
    headline_figures,
    load_trend,
    render_trend,
    write_trend,
)


def _write_bench(directory, name, payload):
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True))


class TestHeadlineFigures:
    def test_scalars_pass_cells_aggregate(self):
        figures = headline_figures({
            "seed": 7, "speedup": 12.5, "label": "ignored",
            "flag": True,
            "cells": [{"uj": 1.5, "n": 2, "name": "a"},
                      {"uj": 2.5, "n": 3, "name": "b"}],
        })
        assert figures == {
            "seed": 7.0, "speedup": 12.5, "cells": 2.0,
            "cells.uj": 4.0, "cells.n": 5.0,
        }

    def test_bench_name_parsing(self):
        assert bench_name("BENCH_server.json") == "server"
        assert bench_name(TREND_NAME) is None
        assert bench_name("results.txt") is None
        assert bench_name("BENCH_x.txt") is None


class TestFold:
    def test_first_fold_creates_history(self, tmp_path):
        _write_bench(tmp_path, "a", {"speedup": 2.0})
        trend, folded = fold_trend(str(tmp_path))
        assert folded == ["a"]
        assert trend["benches"]["a"]["history"] == \
            [{"figures": {"speedup": 2.0}}]

    def test_refold_of_unchanged_results_is_idempotent(self, tmp_path):
        _write_bench(tmp_path, "a", {"speedup": 2.0})
        trend, _ = fold_trend(str(tmp_path))
        write_trend(str(tmp_path), trend)
        before = (tmp_path / TREND_NAME).read_bytes()
        trend, folded = fold_trend(str(tmp_path))
        assert folded == []
        write_trend(str(tmp_path), trend)
        assert (tmp_path / TREND_NAME).read_bytes() == before

    def test_changed_figures_append_an_entry(self, tmp_path):
        _write_bench(tmp_path, "a", {"speedup": 2.0})
        write_trend(str(tmp_path), fold_trend(str(tmp_path))[0])
        _write_bench(tmp_path, "a", {"speedup": 3.0})
        trend, folded = fold_trend(str(tmp_path), label="rev2")
        assert folded == ["a"]
        history = trend["benches"]["a"]["history"]
        assert len(history) == 2
        assert history[1] == {"figures": {"speedup": 3.0},
                              "label": "rev2"}

    def test_torn_bench_file_skipped(self, tmp_path):
        (tmp_path / "BENCH_torn.json").write_text('{"speedup": ')
        _write_bench(tmp_path, "ok", {"speedup": 1.0})
        _, folded = fold_trend(str(tmp_path))
        assert folded == ["ok"]

    def test_missing_trend_file_loads_empty(self, tmp_path):
        assert load_trend(str(tmp_path)) == {"schema": 1, "benches": {}}


class TestRender:
    def test_render_shows_deltas_vs_previous(self, tmp_path):
        _write_bench(tmp_path, "a", {"speedup": 2.0})
        write_trend(str(tmp_path), fold_trend(str(tmp_path))[0])
        _write_bench(tmp_path, "a", {"speedup": 3.0})
        trend, _ = fold_trend(str(tmp_path))
        text = render_trend(trend)
        assert "a: 2 entries" in text
        assert "+50.00% vs prev" in text

    def test_render_empty(self):
        assert "no benches" in render_trend({"benches": {}})
