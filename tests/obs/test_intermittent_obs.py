"""Tracing an intermittent session: the µJ rollup survives power cuts.

The energy contract extends to brownouts: however many times the
supply cuts out, the traced span tree and the metric counters must
reproduce the session's energy decomposition to the float digit —
including the checkpoint overhead and the re-executed steps.
"""

import os

import pytest

from repro.intermittent import (
    IntermittentSpec,
    PowerCutSchedule,
    run_with_schedule,
)
from repro.obs import runtime as obs_runtime
from repro.obs.integration import snapshot_value
from repro.obs.report import energy_rollup, load_metrics, load_spans

SPEC = IntermittentSpec(curve="TOY-B17", seed=2013)


@pytest.fixture(scope="module")
def traced_cut_session(tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs-intermittent")
    obs_dir = os.path.join(str(directory), obs_runtime.OBS_DIRNAME)
    schedule = PowerCutSchedule.seeded(7, 0, cuts=3,
                                       mean_on_cycles=8000)
    with obs_runtime.session(obs_dir, kind="intermittent",
                             seed=SPEC.seed):
        result = run_with_schedule(SPEC, 0, schedule)
    assert result.completed and result.power_cycles > 0
    return {"obs_dir": obs_dir, "result": result}


class TestSpans:
    def test_session_span_carries_the_cut_count(self, traced_cut_session):
        spans = load_spans(traced_cut_session["obs_dir"])
        result = traced_cut_session["result"]
        session = [s for s in spans
                   if s["name"] == "intermittent.session"]
        assert len(session) == 1
        assert session[0]["attrs"]["power_cycles"] == result.power_cycles
        assert session[0]["attrs"]["completed"] is True

    def test_children_partition_the_energy_exactly(self,
                                                   traced_cut_session):
        spans = load_spans(traced_cut_session["obs_dir"])
        result = traced_cut_session["result"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["intermittent.compute"]["uj"] == result.compute_uj
        assert by_name["intermittent.radio"]["uj"] == result.radio_uj
        assert by_name["intermittent.checkpoint"]["uj"] == \
            result.checkpoint_uj
        assert by_name["intermittent.session"]["uj"] == result.total_uj

    def test_rollup_total_is_the_session_total(self, traced_cut_session):
        rollup = energy_rollup(load_spans(traced_cut_session["obs_dir"]))
        result = traced_cut_session["result"]
        assert rollup["total_uj"] == pytest.approx(result.total_uj,
                                                   abs=1e-12)
        grand = sum(entry["self_uj"]
                    for entry in rollup["by_name"].values())
        assert grand == pytest.approx(result.total_uj, abs=1e-12)
        # The session span keeps no self energy: the components claim
        # every microjoule.
        assert rollup["by_name"]["intermittent.session"]["self_uj"] == \
            pytest.approx(0.0, abs=1e-12)


class TestMetrics:
    def test_energy_counter_components_sum_to_total(self,
                                                    traced_cut_session):
        snapshot = load_metrics(traced_cut_session["obs_dir"])
        result = traced_cut_session["result"]
        name = "repro_intermittent_energy_uj_total"
        parts = {
            component: snapshot_value(snapshot, name,
                                      component=component)
            for component in ("compute", "radio", "checkpoint")
        }
        assert parts["checkpoint"] == result.checkpoint_uj
        assert sum(parts.values()) == pytest.approx(result.total_uj,
                                                    abs=1e-12)

    def test_cut_bookkeeping_counters(self, traced_cut_session):
        snapshot = load_metrics(traced_cut_session["obs_dir"])
        result = traced_cut_session["result"]
        assert snapshot_value(
            snapshot, "repro_intermittent_power_cycles_total"
        ) == result.power_cycles
        assert snapshot_value(
            snapshot, "repro_intermittent_sessions_total",
            outcome="accepted") == 1
        wasted = snapshot_value(
            snapshot, "repro_intermittent_ladder_steps_total",
            kind="wasted")
        productive = snapshot_value(
            snapshot, "repro_intermittent_ladder_steps_total",
            kind="productive")
        assert wasted == result.steps_wasted
        assert productive + wasted == result.steps_executed
