"""Shared traced campaigns for the observability tests.

Tracing must never perturb the measurement, so these fixtures run
real (tiny, TOY-B17) acquisitions under ``obs.session`` and hand the
tests the resulting run directories.  Session-scoped where read-only.
"""

import os

import pytest

from repro.campaign import AcquisitionEngine, CampaignSpec
from repro.obs import runtime as obs_runtime

TRACED_SPEC = CampaignSpec(
    n_traces=6, shard_size=2, scenario="protected",
    max_iterations=3, seed=7, noise_sigma=38.0, curve="TOY-B17",
)


def run_traced_campaign(directory, spec=TRACED_SPEC, workers=1,
                        profile=False, chaos=None, retry_policy=None):
    """One campaign with tracing on; returns (store, obs_dir)."""
    directory = str(directory)
    obs_dir = os.path.join(directory, obs_runtime.OBS_DIRNAME)
    with obs_runtime.session(
        obs_dir, kind="campaign", seed=spec.seed,
        config_digest=spec.digest(), profile=profile,
    ):
        engine = AcquisitionEngine(directory, spec, workers=workers,
                                   chaos=chaos, retry_policy=retry_policy)
        store = engine.run()
    return store, obs_dir


@pytest.fixture(scope="session")
def traced_run(tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs-traced")
    store, obs_dir = run_traced_campaign(directory)
    return {"dir": str(directory), "obs_dir": obs_dir, "store": store}
