"""The alert engine: hysteresis, window closing, typed records."""

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertOrderingError,
    AlertRule,
    AlertRuleError,
    default_rulebook,
    load_alert_log,
    render_alert_log,
    write_alert_log,
)
from repro.obs.stream import make_event, sort_events


def _feed(engine, events):
    for event in sort_events(events):
        engine.observe(event)
    return engine.finalize()


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AlertRuleError):
            AlertRule(name="r", series="s", kind="vibes")

    def test_unknown_severity_rejected(self):
        with pytest.raises(AlertRuleError):
            AlertRule(name="r", series="s", kind="threshold",
                      threshold=1.0, severity="mauve")

    def test_non_positive_threshold_rejected(self):
        with pytest.raises(AlertRuleError):
            AlertRule(name="r", series="s", kind="threshold")

    def test_invariant_needs_no_threshold(self):
        AlertRule(name="r", series="s", kind="invariant")

    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="r", series="s", kind="invariant")
        with pytest.raises(AlertRuleError):
            AlertEngine([rule, rule])


class TestThresholdHysteresis:
    RULE = AlertRule(name="hot", series="uj", kind="threshold",
                     threshold=100.0, clear_ratio=0.8, sustain=2)

    def _values(self, values):
        events = [make_event(i * 0.1, "s", i, uj=v)
                  for i, v in enumerate(values)]
        return _feed(AlertEngine([self.RULE]), events)

    def test_fires_only_after_sustain_breaches(self):
        assert self._values([150.0]) == []
        records = self._values([150.0, 150.0])
        assert [r["state"] for r in records] == ["firing"]

    def test_band_value_resets_the_streak(self):
        # breach, band (between 80 and 100), breach — never 2 in a row.
        assert self._values([150.0, 90.0, 150.0]) == []

    def test_clears_only_below_clear_ratio(self):
        records = self._values([150.0, 150.0, 90.0, 70.0])
        assert [r["state"] for r in records] == ["firing", "cleared"]
        assert records[1]["value"] == 70.0

    def test_one_firing_while_sustained(self):
        records = self._values([150.0] * 6)
        assert [r["state"] for r in records] == ["firing"]


class TestWindowKinds:
    def test_window_sum_fires_on_window_close(self):
        rule = AlertRule(name="drain", series="uj", kind="window_sum",
                         threshold=100.0, window_s=1.0)
        records = _feed(AlertEngine([rule]), [
            make_event(0.1, "s", 0, uj=60.0),
            make_event(0.2, "s", 1, uj=60.0),   # window 0 sum = 120
            make_event(1.1, "s", 2, uj=10.0),   # closes window 0
        ])
        firing = [r for r in records if r["state"] == "firing"]
        assert len(firing) == 1
        assert firing[0]["window"] == 0
        assert firing[0]["value"] == 120.0

    def test_finalize_closes_the_open_window(self):
        rule = AlertRule(name="drain", series="uj", kind="window_sum",
                         threshold=100.0, window_s=1.0)
        records = _feed(AlertEngine([rule]),
                        [make_event(0.1, "s", 0, uj=150.0)])
        assert [r["state"] for r in records] == ["firing"]

    def test_rate_of_change_compares_adjacent_windows(self):
        rule = AlertRule(name="spike", series="shed",
                         kind="rate_of_change", threshold=3.0,
                         window_s=1.0)
        records = _feed(AlertEngine([rule]), [
            make_event(0.1, "s", 0, shed=1.0),
            make_event(1.1, "s", 1, shed=2.0),    # x2: quiet
            make_event(2.1, "s", 2, shed=10.0),   # x5: spike
            make_event(3.1, "s", 3, shed=0.0),    # closes the window
        ])
        firing = [r for r in records if r["state"] == "firing"]
        assert len(firing) == 1
        assert firing[0]["window"] == 2

    def test_sources_are_independent(self):
        rule = AlertRule(name="drain", series="uj", kind="window_sum",
                         threshold=100.0, window_s=1.0)
        records = _feed(AlertEngine([rule]), [
            make_event(0.1, "a", 0, uj=150.0),
            make_event(0.2, "b", 0, uj=10.0),
        ])
        assert [(r["source"], r["state"]) for r in records] == \
            [("a", "firing")]


class TestInvariantAndOrdering:
    def test_invariant_fires_once_on_first_violation(self):
        rule = AlertRule(name="nonce", series="nonce_reuse",
                         kind="invariant")
        records = _feed(AlertEngine([rule]), [
            make_event(0.1, "s", 0, nonce_reuse=0.0),
            make_event(0.2, "s", 1, nonce_reuse=2.0),
            make_event(0.3, "s", 2, nonce_reuse=1.0),
        ])
        assert [r["state"] for r in records] == ["firing"]
        assert records[0]["value"] == 2.0

    def test_out_of_order_events_rejected(self):
        engine = AlertEngine(default_rulebook())
        engine.observe(make_event(1.0, "s", 0, session_uj=1.0))
        with pytest.raises(AlertOrderingError):
            engine.observe(make_event(0.5, "s", 1, session_uj=1.0))

    def test_observe_after_finalize_rejected(self):
        engine = AlertEngine(())
        engine.finalize()
        with pytest.raises(AlertOrderingError):
            engine.observe(make_event(0.0, "s", 0, uj=1.0))


class TestRulebookAndLog:
    def test_default_rulebook_shape(self):
        rules = default_rulebook()
        by_name = {rule.name: rule for rule in rules}
        assert set(by_name) == {
            "window_drain_exceeds_cap", "energy_session_p99",
            "shed_rate_spike", "nonce_reuse_invariant",
        }
        assert by_name["window_drain_exceeds_cap"].threshold == 600.0
        assert by_name["energy_session_p99"].threshold == 110.0
        assert by_name["nonce_reuse_invariant"].kind == "invariant"

    def test_log_round_trip_and_render(self, tmp_path):
        rules = default_rulebook()
        records = _feed(AlertEngine(rules), [
            make_event(0.1, "tag", 0, nonce_reuse=1.0),
        ])
        path = str(tmp_path / "alerts.json")
        payload = write_alert_log(path, rules, records)
        assert load_alert_log(path) == payload
        assert payload["firings"] == 1
        assert payload["firings_by_rule"] == \
            {"nonce_reuse_invariant": 1}
        text = render_alert_log(payload)
        assert "nonce_reuse_invariant" in text
        assert "firing totals:" in text

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "alerts.json"
        path.write_text('{"schema": 999}')
        with pytest.raises(AlertRuleError):
            load_alert_log(str(path))
