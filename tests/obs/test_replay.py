"""Deterministic replay: same seed, byte-identical observability.

The determinism contract is the whole point of deriving span ids
instead of drawing them: two same-seed runs — whatever the worker
count, scheduling, or injected (deterministic) faults — must produce
byte-identical canonical span trees and metric snapshots, with only
wall-clock fields differing.
"""

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.chaos import ChaosConfig
from repro.campaign.supervisor import RetryPolicy
from repro.obs.report import (
    canonical_metrics_bytes,
    canonical_span_bytes,
    load_spans,
)

from .conftest import TRACED_SPEC, run_traced_campaign


def canonical(obs_dir):
    return canonical_span_bytes(obs_dir), canonical_metrics_bytes(obs_dir)


class TestReplay:
    def test_same_seed_runs_are_byte_identical(self, tmp_path,
                                               traced_run):
        _, obs_dir = run_traced_campaign(tmp_path / "replay")
        assert canonical(obs_dir) == canonical(traced_run["obs_dir"])

    def test_replay_holds_across_worker_counts(self, tmp_path,
                                               traced_run):
        _, obs_dir = run_traced_campaign(tmp_path / "parallel",
                                         workers=2)
        assert canonical(obs_dir) == canonical(traced_run["obs_dir"])

    def test_different_seed_diverges(self, tmp_path, traced_run):
        spec = CampaignSpec(
            n_traces=6, shard_size=2, scenario="protected",
            max_iterations=3, seed=8, noise_sigma=38.0, curve="TOY-B17",
        )
        _, obs_dir = run_traced_campaign(tmp_path / "reseeded",
                                         spec=spec)
        ours, theirs = canonical(obs_dir), canonical(traced_run["obs_dir"])
        assert ours[0] != theirs[0] and ours[1] != theirs[1]

    def test_replay_survives_chaos(self, tmp_path):
        """Injected failures retry deterministically: the completed
        run's canonical artifacts still replay byte-for-byte."""
        chaos = ChaosConfig(seed=3, error_rate=0.4)
        policy = RetryPolicy(max_attempts=6, deterministic_attempts=6,
                             base_delay=0.0, jitter=0.0)
        runs = []
        for name in ("chaos-a", "chaos-b"):
            store, obs_dir = run_traced_campaign(
                tmp_path / name, chaos=chaos, retry_policy=policy)
            assert store.n_traces_on_disk == TRACED_SPEC.n_traces
            runs.append(canonical(obs_dir))
        assert runs[0] == runs[1]

    def test_tracing_does_not_perturb_the_traces(self, tmp_path,
                                                 traced_run):
        """Observation must never change the measurement: shard bytes
        match an untraced acquisition of the same spec."""
        from repro.campaign import AcquisitionEngine

        bare = AcquisitionEngine(str(tmp_path / "untraced"),
                                 TRACED_SPEC, workers=1).run()
        digests = lambda store: [
            (r.index, r.samples_sha256, r.aux_sha256)
            for r in sorted(store.shard_records, key=lambda r: r.index)
        ]
        assert digests(bare) == digests(traced_run["store"])


class TestWallClockExclusion:
    def test_canonical_tree_strips_wall_fields(self, traced_run):
        spans = load_spans(traced_run["obs_dir"])
        assert any("start_s" in r for r in spans)
        blob = canonical_span_bytes(traced_run["obs_dir"]).decode()
        for field in ("start_s", "end_s", "pid"):
            assert field not in blob

    def test_wall_metrics_excluded_from_canonical_snapshot(
            self, traced_run):
        blob = canonical_metrics_bytes(traced_run["obs_dir"]).decode()
        assert "repro_campaign_shard_wall_seconds" not in blob
        assert "repro_campaign_rate_traces_per_second" not in blob
        assert "repro_campaign_traces_total" in blob
