"""Snapshot merging and exposition escaping, adversarially.

Three properties CI leans on: merged counter/histogram state is
invariant to the order shard snapshots arrive in, Prometheus label
escaping survives a parse round-trip, and histograms merge correctly
when several shards report the *same* label set.
"""

import itertools
import json
import re

from repro.obs.metrics import (
    MetricRegistry,
    _escape_label_value,
)

BUCKETS = (1.0, 10.0, 100.0)


def _shard_snapshot(shard, samples):
    registry = MetricRegistry()
    counter = registry.counter("repro_x_total", "t")
    histogram = registry.histogram("repro_x_uj", "t", buckets=BUCKETS)
    for sample in samples:
        counter.inc(1, worker="tag")
        histogram.observe(sample, worker="tag")
        histogram.observe(sample * 2, worker=f"shard-{shard}")
    return registry.snapshot()


class TestShardOrderInvariance:
    def test_merge_is_order_invariant_for_counters_and_histograms(self):
        shards = [
            _shard_snapshot(0, [0.5, 5.0, 50.0]),
            _shard_snapshot(1, [2.0, 20.0]),
            _shard_snapshot(2, [0.1, 999.0, 7.0]),
        ]
        merged = []
        for order in itertools.permutations(range(3)):
            registry = MetricRegistry()
            for index in order:
                registry.merge_snapshot(shards[index])
            merged.append(json.dumps(registry.snapshot(),
                                     sort_keys=True))
        assert len(set(merged)) == 1

    def test_duplicate_label_sets_accumulate_not_overwrite(self):
        a = _shard_snapshot(0, [0.5, 5.0])
        b = _shard_snapshot(0, [50.0])      # same shard labels again
        registry = MetricRegistry()
        registry.merge_snapshot(a)
        registry.merge_snapshot(b)
        snapshot = registry.snapshot()
        histogram = snapshot["metrics"]["repro_x_uj"]
        tag_rows = [item for item in histogram["values"]
                    if item["labels"] == {"worker": "tag"}]
        assert len(tag_rows) == 1            # one series, not two
        row = tag_rows[0]
        assert row["count"] == 3
        assert row["sum"] == 55.5
        assert row["min"] == 0.5 and row["max"] == 50.0
        assert sum(row["bucket_counts"]) == 3
        counter = snapshot["metrics"]["repro_x_total"]["values"]
        assert counter == [{"labels": {"worker": "tag"}, "value": 3.0}]

    def test_merged_bucket_counts_are_elementwise_sums(self):
        a = _shard_snapshot(0, [0.5])        # bucket 0
        b = _shard_snapshot(0, [5.0, 50.0])  # buckets 1 and 2
        registry = MetricRegistry()
        registry.merge_snapshot(a)
        registry.merge_snapshot(b)
        row = next(
            item for item in
            registry.snapshot()["metrics"]["repro_x_uj"]["values"]
            if item["labels"] == {"worker": "tag"})
        assert row["bucket_counts"] == [1, 1, 1]


_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _unescape(value):
    # Left-to-right, like a real exposition parser: sequential
    # str.replace calls corrupt inputs such as '\\' + 'n'.
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            follow = value[i + 1]
            if follow == "n":
                out.append("\n")
                i += 2
                continue
            if follow in ('"', "\\"):
                out.append(follow)
                i += 2
                continue
        out.append(value[i])
        i += 1
    return "".join(out)


class TestEscapingRoundTrip:
    NASTY = ['plain', 'with"quote', 'back\\slash', 'new\nline',
             'all\\three\n"at once"', '\\', '\\n']

    def test_escape_then_parse_recovers_the_value(self):
        for value in self.NASTY:
            escaped = _escape_label_value(value)
            assert "\n" not in escaped
            line = f'repro_x_total{{worker="{escaped}"}} 1'
            match = _LABEL_RE.search(line)
            assert match is not None, line
            assert _unescape(match.group(2)) == value

    def test_exposition_lines_parse_for_nasty_labels(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_x_total", "t")
        for value in self.NASTY:
            counter.inc(1, worker=value)
        text = registry.render_prometheus()
        parsed = set()
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            match = _LABEL_RE.search(line)
            if match:
                parsed.add(_unescape(match.group(2)))
        assert parsed == set(self.NASTY)
