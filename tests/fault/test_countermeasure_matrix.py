"""Countermeasure coverage across the full fault-model matrix.

Every :class:`~repro.fault.injector.FaultKind` (BIT_FLIP,
STUCK_AT_ZERO, SKIP) against both multiplier variants (Montgomery
ladder and double-and-add-always), behind
:class:`~repro.fault.countermeasures.HardenedMultiplier`.  The
invariant under test is the paper's abort rule: a faulty result is key
material and must never be released — every injected run either raises
:class:`~repro.fault.countermeasures.FaultDetectedError` or returns
the mathematically correct point (the fault landed in a dummy
operation and physically vanished).
"""

import random

import pytest

from repro.ec.curves import TOY_B17
from repro.fault import (
    FaultDetectedError,
    FaultKind,
    FaultSpec,
    HardenedMultiplier,
    faulty_double_and_add_always,
    faulty_montgomery_ladder,
)

CURVE, G, ORDER = TOY_B17.curve, TOY_B17.generator, TOY_B17.order
K = 0b1101001011010111
N_ITERATIONS = K.bit_length() - 1
CORRECT = CURVE.multiply_naive(K, G)


def ladder_variant(kind, iteration):
    def multiplier(k, point):
        return faulty_montgomery_ladder(
            CURVE, k, point,
            FaultSpec(iteration=iteration, target="X1", kind=kind))
    return multiplier


def daa_variant(kind, iteration):
    def multiplier(k, point):
        return faulty_double_and_add_always(
            CURVE, k, point, fault_iteration=iteration, kind=kind)
    return multiplier


VARIANTS = {"montgomery-ladder": ladder_variant,
            "double-and-add-always": daa_variant}


@pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestFaultMatrix:
    def test_no_faulty_result_is_ever_released(self, variant, kind):
        """Sweep the injection point over every iteration: the hardened
        wrapper either detects or the output is exactly correct."""
        rng = random.Random(1)
        detections = 0
        for iteration in range(N_ITERATIONS):
            hardened = HardenedMultiplier(
                CURVE, order=ORDER, verify_by_recomputation=True,
                multiplier=VARIANTS[variant](kind, iteration))
            try:
                result = hardened.multiply(K, G, rng)
            except FaultDetectedError:
                detections += 1
            else:
                assert result == CORRECT, (
                    f"{variant}/{kind.value}: faulty point released "
                    f"at iteration {iteration}")
        assert detections > 0, (
            f"{variant}/{kind.value}: no injection was ever detected — "
            "the fault model is not exercising the countermeasure")

    def test_curve_membership_check_alone_catches_some(self, variant, kind):
        """Even without the 2x recomputation, the cheap output-on-curve
        check stops a sizeable share of corrupted runs — except pure
        SKIP faults, which yield valid (wrong) multiples and are
        exactly why recomputation exists."""
        rng = random.Random(2)
        cheap_detections = 0
        released_wrong = 0
        for iteration in range(N_ITERATIONS):
            hardened = HardenedMultiplier(
                CURVE, order=ORDER, verify_by_recomputation=False,
                multiplier=VARIANTS[variant](kind, iteration))
            try:
                result = hardened.multiply(K, G, rng)
            except FaultDetectedError:
                cheap_detections += 1
            else:
                if result != CORRECT:
                    released_wrong += 1
        if kind is FaultKind.SKIP:
            # a skipped step yields k' * P for some wrong k' — on the
            # curve, in the subgroup, invisible to output validation
            assert released_wrong > 0
        else:
            assert cheap_detections > 0


class TestMatrixSanity:
    def test_unfaulted_variants_agree_with_naive(self):
        assert faulty_montgomery_ladder(CURVE, K, G) == CORRECT or \
            faulty_montgomery_ladder(CURVE, K, G).x == CORRECT.x
        assert faulty_double_and_add_always(CURVE, K, G) == CORRECT

    def test_skip_on_daa_dummy_iteration_is_a_safe_error(self):
        """SKIP in a key-bit-0 iteration suppresses only the dummy add:
        the output stays correct — the safe-error information leak the
        attack module exploits, now reproduced for every fault kind."""
        zero_bits = [i for i, bit in enumerate(bin(K)[3:]) if bit == "0"]
        assert zero_bits, "need a zero key bit for this test"
        result = faulty_double_and_add_always(
            CURVE, K, G, fault_iteration=zero_bits[0],
            kind=FaultKind.SKIP)
        assert result == CORRECT

    def test_stuck_at_zero_on_daa_real_iteration_detected(self):
        one_bits = [i for i, bit in enumerate(bin(K)[3:]) if bit == "1"]
        rng = random.Random(3)
        hardened = HardenedMultiplier(
            CURVE, order=ORDER, verify_by_recomputation=True,
            multiplier=daa_variant(FaultKind.STUCK_AT_ZERO, one_bits[0]))
        with pytest.raises(FaultDetectedError):
            hardened.multiply(K, G, rng)
