"""Tests for the fault attacks and the countermeasures that stop them."""

import random

import pytest

from repro.ec import AffinePoint, BinaryEllipticCurve, NIST_K163
from repro.gf2m import BinaryField
from repro.fault import (
    FaultDetectedError,
    FaultSpec,
    HardenedMultiplier,
    faulty_double_and_add_always,
    faulty_montgomery_ladder,
    find_small_order_invalid_point,
    invalid_curve_residue,
    safe_error_attack,
    validate_input_point,
)

CURVE, G, ORDER = NIST_K163.curve, NIST_K163.generator, NIST_K163.order


class TestSafeErrorAttack:
    def test_recovers_key_prefix(self):
        """The safe-error attack reads bits out of double-and-add-always."""
        k = 0b110100101101
        correct = CURVE.multiply_naive(k, G)

        def device(fault_iteration):
            return faulty_double_and_add_always(CURVE, k, G, fault_iteration)

        n_bits = k.bit_length() - 1
        recovered = safe_error_attack(CURVE, G, device, correct, n_bits)
        expected = [int(c) for c in bin(k)[3:]]
        assert recovered == expected

    def test_ladder_is_not_vulnerable_to_this_oracle(self):
        """The MPL has no dummy operations: every fault changes the
        output, so the unchanged/changed oracle reads all-ones."""
        k = 0b110100101101
        correct_x = CURVE.multiply_naive(k, G).x

        def device(fault_iteration):
            return faulty_montgomery_ladder(
                CURVE, k, G, FaultSpec(iteration=fault_iteration, target="X1")
            )

        readings = [
            0 if device(i).x == correct_x else 1
            for i in range(k.bit_length() - 1)
        ]
        assert all(readings)  # no information about the key bits


class ToyCurve:
    """GF(2^13) curve small enough to brute-force group structure.

    With a = 0 the quadratic twist is the a = 1 curve, whose order
    8374 = 2 * 53 * 79 provides the small subgroup the attack needs.
    """

    FIELD = BinaryField(13, (1 << 13) | 0b11011)  # x^13+x^4+x^3+x+1

    @classmethod
    def make(cls):
        return BinaryEllipticCurve(cls.FIELD, 0, 1)


def test_toy_field_modulus_is_irreducible():
    from repro.gf2m import is_irreducible

    assert is_irreducible(ToyCurve.FIELD.modulus)


class TestInvalidCurveAttack:
    def test_end_to_end_residue_recovery(self):
        """Full invalid-curve attack on a toy unvalidated device."""
        curve = ToyCurve.make()
        rng = random.Random(99)
        attack = find_small_order_invalid_point(curve, max_order=60, rng=rng)
        assert attack is not None
        assert 3 <= attack.order <= 60

        secret_k = 1337
        # Unvalidated device: runs the ladder on whatever point arrives.
        device_output = faulty_montgomery_ladder(
            curve, secret_k, attack.point, fault=None
        )
        residue = invalid_curve_residue(curve, attack, device_output)
        assert residue is not None
        assert residue % attack.order in (
            secret_k % attack.order,
            (-secret_k) % attack.order,  # x-only leaks k up to sign
        )

    def test_attack_point_is_not_on_real_curve(self):
        curve = ToyCurve.make()
        rng = random.Random(7)
        attack = find_small_order_invalid_point(curve, max_order=60, rng=rng)
        assert attack is not None
        assert not curve.is_on_curve(attack.point)

    def test_brute_force_guard_on_big_fields(self):
        with pytest.raises(ValueError):
            find_small_order_invalid_point(CURVE, 10, random.Random(0))


class TestValidation:
    def test_accepts_good_point(self):
        validate_input_point(CURVE, G, ORDER)

    def test_rejects_off_curve(self):
        with pytest.raises(FaultDetectedError):
            validate_input_point(CURVE, AffinePoint(123, 456))

    def test_rejects_infinity_and_torsion(self):
        with pytest.raises(FaultDetectedError):
            validate_input_point(CURVE, AffinePoint.infinity())
        with pytest.raises(FaultDetectedError):
            validate_input_point(CURVE, CURVE.lift_x(0))

    def test_rejects_wrong_subgroup(self):
        rng = random.Random(3)
        # Find a point of order 2n (full group, cofactor part kept).
        while True:
            p = CURVE.random_point(rng)
            from repro.ec import montgomery_ladder

            if not montgomery_ladder(CURVE, ORDER, p,
                                     randomize_z=False).is_infinity:
                break
        with pytest.raises(FaultDetectedError):
            validate_input_point(CURVE, p, ORDER)

    def test_validation_stops_invalid_curve_attack(self):
        """The countermeasure catches the attack point of the toy demo."""
        curve = ToyCurve.make()
        rng = random.Random(99)
        attack = find_small_order_invalid_point(curve, max_order=60, rng=rng)
        with pytest.raises(FaultDetectedError):
            validate_input_point(curve, attack.point)


class TestHardenedMultiplier:
    def test_normal_operation(self):
        rng = random.Random(4)
        hard = HardenedMultiplier(CURVE, ORDER)
        assert hard.multiply(0x123, G, rng) == CURVE.multiply_naive(0x123, G)

    def test_scalar_range_enforced(self):
        rng = random.Random(5)
        hard = HardenedMultiplier(CURVE, ORDER)
        with pytest.raises(FaultDetectedError):
            hard.multiply(0, G, rng)
        with pytest.raises(FaultDetectedError):
            hard.multiply(ORDER + 5, G, rng)

    def test_detects_faulty_backend(self):
        """A backend corrupted by a transient fault is caught by the
        output curve check."""
        rng = random.Random(6)

        def faulty_backend(k, point):
            return faulty_montgomery_ladder(
                CURVE, k, point, FaultSpec(iteration=5, target="X1", bit=3)
            )

        hard = HardenedMultiplier(CURVE, ORDER, multiplier=faulty_backend)
        caught = 0
        keys = (0x1111, 0x2222, 0x3333, 0x4444, 0x5555,
                0x6666, 0x7777, 0x8888, 0x9999, 0xAAAA)
        for k in keys:
            try:
                result = hard.multiply(k, G, rng)
            except FaultDetectedError:
                caught += 1
                continue
            # If the corrupted x happened to lift onto the curve, the
            # curve check alone cannot catch it — this is exactly why
            # x-only outputs need the recomputation check for full
            # fault coverage.
            assert CURVE.is_on_curve(result)
        assert caught >= 1

    def test_recomputation_catches_everything(self):
        rng = random.Random(7)

        def faulty_backend(k, point):
            return faulty_montgomery_ladder(
                CURVE, k, point, FaultSpec(iteration=5, target="X1", bit=3)
            )

        hard = HardenedMultiplier(CURVE, ORDER, verify_by_recomputation=True,
                                  multiplier=faulty_backend)
        for k in (0x1111, 0x2222, 0x3333):
            with pytest.raises(FaultDetectedError):
                hard.multiply(k, G, rng)
