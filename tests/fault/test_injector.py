"""Tests for fault injection into scalar multiplications."""

import pytest

from repro.ec import NIST_K163
from repro.fault import (
    FaultKind,
    FaultSpec,
    faulty_double_and_add_always,
    faulty_montgomery_ladder,
    flip_bit,
)

CURVE, G = NIST_K163.curve, NIST_K163.generator


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(iteration=-1)
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, target="X9")
        with pytest.raises(ValueError):
            FaultSpec(iteration=0, bit=-1)

    def test_flip_bit(self):
        assert flip_bit(0b1000, 3) == 0
        assert flip_bit(0, 5) == 32


class TestFaultyLadder:
    def test_no_fault_is_correct(self):
        k = 0xABCDE
        result = faulty_montgomery_ladder(CURVE, k, G, fault=None)
        assert result.x == CURVE.multiply_naive(k, G).x

    def test_bit_flip_corrupts_output(self):
        k = 0xABCDE
        correct = CURVE.multiply_naive(k, G)
        fault = FaultSpec(iteration=3, target="X1", bit=7)
        faulted = faulty_montgomery_ladder(CURVE, k, G, fault)
        assert faulted.x != correct.x

    def test_stuck_at_zero(self):
        k = 0xABCDE
        fault = FaultSpec(iteration=2, target="Z1",
                          kind=FaultKind.STUCK_AT_ZERO)
        faulted = faulty_montgomery_ladder(CURVE, k, G, fault)
        assert faulted.x != CURVE.multiply_naive(k, G).x

    def test_skip_iteration_changes_result(self):
        k = 0xABCDE
        fault = FaultSpec(iteration=1, kind=FaultKind.SKIP)
        faulted = faulty_montgomery_ladder(CURVE, k, G, fault)
        assert faulted.x != CURVE.multiply_naive(k, G).x

    def test_fault_after_last_iteration_is_harmless(self):
        k = 0b101
        fault = FaultSpec(iteration=99, target="X1", bit=0)
        result = faulty_montgomery_ladder(CURVE, k, G, fault)
        assert result.x == CURVE.multiply_naive(k, G).x

    def test_faulty_output_is_usually_invalid(self):
        """Most corrupted x-coordinates fail validation — the hook the
        output-check countermeasure relies on."""
        invalid = 0
        for bit in range(10):
            fault = FaultSpec(iteration=4, target="X2", bit=bit)
            result = faulty_montgomery_ladder(CURVE, 0xABCDE, G, fault)
            expected = CURVE.multiply_naive(0xABCDE, G)
            if result.x != expected.x:
                invalid += 1
        assert invalid >= 9

    def test_input_validation(self):
        from repro.ec import AffinePoint

        with pytest.raises(ValueError):
            faulty_montgomery_ladder(CURVE, 0, G)
        with pytest.raises(ValueError):
            faulty_montgomery_ladder(CURVE, 5, AffinePoint.infinity())


class TestFaultyAlwaysAdd:
    def test_no_fault_is_correct(self):
        k = 0b110101
        assert faulty_double_and_add_always(CURVE, k, G) == \
            CURVE.multiply_naive(k, G)

    def test_fault_on_real_add_corrupts(self):
        # k = 0b111: iterations process bits 1,1 -> both adds real.
        k = 0b111
        correct = CURVE.multiply_naive(k, G)
        assert faulty_double_and_add_always(CURVE, k, G, 0) != correct

    def test_fault_on_dummy_add_vanishes(self):
        # k = 0b100: both processed bits are 0 -> dummy adds.
        k = 0b100
        correct = CURVE.multiply_naive(k, G)
        assert faulty_double_and_add_always(CURVE, k, G, 0) == correct
        assert faulty_double_and_add_always(CURVE, k, G, 1) == correct
