"""Calibrate-then-measure pricing of the symmetric engines.

The engines hand back ``(consumed, cycles)``; these tests pin that
one calibrated per-toggle constant prices both ECC and symmetric
workloads, and that the measurement is a pure function (so the DSE
cache can key it by digest).
"""

import pytest

from repro.backends.evaluation import (
    HANDSHAKE_POINT_MULTIPLICATIONS,
    MESSAGE_BYTES,
    MeasuredPrimitive,
    measure_backend,
    message_energy_uj,
)
from repro.backends import get_backend
from repro.power.energy import EnergyModel, OperatingPoint

#: Any positive constant works — pricing is linear in it.
MODEL = EnergyModel(energy_per_toggle=1e-12)


class TestMeasuredPrimitive:
    def test_measurement_is_pure(self):
        a = MeasuredPrimitive.measure("simon-aead")
        b = measure_backend("simon-aead")
        assert a == b
        assert a.message_bytes == MESSAGE_BYTES
        assert a.cycles > 0 and a.consumed > 0
        assert a.area_ge == get_backend("simon-aead").area_ge()

    def test_engines_differ(self):
        simon = measure_backend("simon-aead")
        sha1 = measure_backend("sha1-aead")
        assert simon.consumed != sha1.consumed
        assert simon.area_ge < sha1.area_ge

    def test_operating_point_is_arithmetic(self):
        measured = measure_backend("simon-aead")
        slow = measured.at(MODEL, OperatingPoint(
            frequency_hz=500e3, vdd=1.0))
        fast = measured.at(MODEL, OperatingPoint(
            frequency_hz=1e6, vdd=1.0))
        # Same charge in half the time: duration halves.
        assert fast.duration_seconds == pytest.approx(
            slow.duration_seconds / 2)


class TestMessageEnergy:
    def test_positive_and_grows_with_size(self):
        small = message_energy_uj("simon-aead", MODEL,
                                  message_bytes=16)
        large = message_energy_uj("simon-aead", MODEL,
                                  message_bytes=64)
        assert 0 < small < large

    def test_instance_and_name_agree(self):
        by_name = message_energy_uj("sha1-aead", MODEL)
        by_instance = message_energy_uj(get_backend("sha1-aead"),
                                        MODEL)
        assert by_name == pytest.approx(by_instance)

    def test_handshake_is_two_point_multiplications(self):
        # Peeters-Hermans commit + response: the per-message ECC bill
        # the amortized hybrid divides by its epoch.
        assert HANDSHAKE_POINT_MULTIPLICATIONS == 2
