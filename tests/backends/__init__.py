"""Tests of the repro.backends crypto-engine subsystem."""
