"""The AEAD layer over both engines: round trips, tamper rejection."""

import pytest

from repro.backends import AeadTagError, get_backend

BACKENDS = ("simon-aead", "sha1-aead")


def _material(backend):
    key = bytes(range(backend.key_bytes))
    nonce = bytes(range(100, 100 + backend.nonce_bytes))
    return key, nonce


@pytest.mark.parametrize("name", BACKENDS)
class TestRoundTrip:
    def test_seal_open(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        for size in (0, 1, 3, 4, 31, 32, 33, 100):
            sealed = backend.seal(key, nonce, b"m" * size, b"aad")
            assert len(sealed.ciphertext) == size
            assert len(sealed.tag) == backend.tag_bytes
            opened = backend.open(key, nonce, sealed.ciphertext,
                                  sealed.tag, b"aad")
            assert opened.plaintext == b"m" * size

    def test_deterministic(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        a = backend.seal(key, nonce, b"payload")
        b = backend.seal(key, nonce, b"payload")
        assert (a.ciphertext, a.tag) == (b.ciphertext, b.tag)
        assert (a.trace.cycles, a.trace.consumed) == \
            (b.trace.cycles, b.trace.consumed)

    def test_nonce_changes_everything(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        other = bytes(backend.nonce_bytes)
        a = backend.seal(key, nonce, b"payload")
        b = backend.seal(key, other, b"payload")
        assert a.ciphertext != b.ciphertext
        assert a.tag != b.tag


@pytest.mark.parametrize("name", BACKENDS)
class TestTamper:
    def test_flipped_ciphertext_rejected(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        sealed = backend.seal(key, nonce, b"secret message")
        bad = bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:]
        with pytest.raises(AeadTagError) as err:
            backend.open(key, nonce, bad, sealed.tag)
        # The failed open still bills its engine work — the receiver
        # paid for the MAC pass that caught the tamper.
        assert err.value.trace.cycles > 0
        assert err.value.trace.consumed > 0

    def test_flipped_tag_rejected(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        sealed = backend.seal(key, nonce, b"secret message")
        bad_tag = bytes([sealed.tag[-1] ^ 0x80]) + sealed.tag[1:]
        bad_tag = sealed.tag[:-1] + bytes([sealed.tag[-1] ^ 0x80])
        with pytest.raises(AeadTagError):
            backend.open(key, nonce, sealed.ciphertext, bad_tag)

    def test_aad_is_authenticated(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        sealed = backend.seal(key, nonce, b"msg", b"header-a")
        with pytest.raises(AeadTagError):
            backend.open(key, nonce, sealed.ciphertext, sealed.tag,
                         b"header-b")

    def test_wrong_key_rejected(self, name):
        backend = get_backend(name)
        key, nonce = _material(backend)
        sealed = backend.seal(key, nonce, b"msg")
        wrong = bytes(backend.key_bytes)
        with pytest.raises(AeadTagError):
            backend.open(wrong, nonce, sealed.ciphertext, sealed.tag)
