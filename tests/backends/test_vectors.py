"""Known-answer tests gating the symmetric engines.

Simon 32/64 against the designers' specification vector (Beaulieu et
al., "The SIMON and SPECK Families of Lightweight Block Ciphers",
2013) and the SHA-1 unit against the FIPS 180 examples.  These are
the CI gate: an engine that drifts off its spec must fail here before
anything downstream prices it.
"""

import hashlib

import pytest

from repro.backends.sha1_unit import Sha1Engine, hmac_sha1_trace
from repro.backends.simon import (
    Simon32Engine,
    simon32_decrypt,
    simon32_encrypt,
)

#: The published Simon 32/64 test vector.
SIMON_KEY = bytes.fromhex("1918111009080100")
SIMON_PT = bytes.fromhex("65656877")
SIMON_CT = bytes.fromhex("c69be9bb")

#: FIPS 180 SHA-1 examples plus the empty message.
SHA1_VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
]


class TestSimonVector:
    def test_specification_vector(self):
        assert simon32_encrypt(SIMON_KEY, SIMON_PT) == SIMON_CT

    def test_decrypt_inverts(self):
        assert simon32_decrypt(SIMON_KEY, SIMON_CT) == SIMON_PT

    def test_round_trip_other_blocks(self):
        engine = Simon32Engine(SIMON_KEY)
        for block in (b"\x00" * 4, b"\xff" * 4, b"\x12\x34\x56\x78"):
            ct, _ = engine.encrypt_block(block)
            pt, _ = engine.decrypt_block(ct)
            assert pt == block
            assert ct != block

    def test_block_size_enforced(self):
        with pytest.raises(ValueError, match="4 bytes"):
            simon32_encrypt(SIMON_KEY, b"\x00" * 5)


class TestSha1Vectors:
    @pytest.mark.parametrize("message,expected", SHA1_VECTORS)
    def test_fips_examples(self, message, expected):
        digest, _ = Sha1Engine().hash(message)
        assert digest.hex() == expected

    def test_matches_hashlib_across_block_boundaries(self):
        engine = Sha1Engine()
        for n in (55, 56, 57, 63, 64, 65, 200):
            message = bytes(range(256))[:n] * 2
            digest, _ = engine.hash(message)
            assert digest == hashlib.sha1(message).digest()

    def test_hmac_matches_rfc2104(self):
        import hmac as hmac_mod

        for key, msg in [(b"k" * 20, b"Hi There"),
                         (b"long-key" * 12, b"payload"),
                         (b"", b"")]:
            tag, trace = hmac_sha1_trace(key, msg)
            assert tag == hmac_mod.new(key, msg, hashlib.sha1).digest()
            assert trace.cycles > 0 and trace.consumed > 0
