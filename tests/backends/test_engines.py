"""The metered engines: cycle counts, switching activity, area."""

import pytest

from repro.backends import get_backend
from repro.backends.base import (
    BackendPoint,
    EngineTrace,
    parse_backend_point,
)
from repro.backends.sha1_unit import BLOCK_CYCLES, Sha1Engine
from repro.backends.simon import ROUNDS, SIMON32_64_GATES, Simon32Engine

KEY = bytes.fromhex("1918111009080100")


class TestSimonEngine:
    def test_block_cycle_count(self):
        _, trace = Simon32Engine(KEY).encrypt_block(b"\x65\x65\x68\x77")
        assert trace.cycles == ROUNDS + 4  # rounds + load/unload

    def test_activity_is_data_dependent(self):
        engine = Simon32Engine(KEY)
        _, a = engine.encrypt_block(b"\x00" * 4)
        _, b = engine.encrypt_block(b"\xff" * 4)
        assert a.cycles == b.cycles
        assert a.consumed != b.consumed

    def test_schedule_activity_charged_every_block(self):
        # A serialized core re-derives its schedule per block, so the
        # bill of two blocks is at least twice one block's schedule.
        engine = Simon32Engine(KEY)
        _, first = engine.encrypt_block(b"\x00" * 4)
        _, again = engine.encrypt_block(b"\x00" * 4)
        assert again.consumed == first.consumed  # deterministic

    def test_decrypt_costs_like_encrypt(self):
        engine = Simon32Engine(KEY)
        ct, enc = engine.encrypt_block(b"\x12\x34\x56\x78")
        _, dec = engine.decrypt_block(ct)
        assert dec.cycles == enc.cycles


class TestSha1Unit:
    def test_single_block_cycles(self):
        _, trace = Sha1Engine().hash(b"abc")
        assert trace.cycles == BLOCK_CYCLES

    def test_cycles_scale_with_blocks(self):
        _, one = Sha1Engine().hash(b"x" * 10)
        _, two = Sha1Engine().hash(b"x" * 70)
        assert two.cycles == 2 * one.cycles


class TestTraces:
    def test_traces_add(self):
        t = EngineTrace(10, 3.0) + EngineTrace(5, 2.5)
        assert (t.cycles, t.consumed) == (15, 5.5)
        z = EngineTrace.zero()
        assert (z.cycles, z.consumed) == (0, 0.0)


class TestRegistry:
    def test_known_backends(self):
        simon = get_backend("simon-aead")
        sha1 = get_backend("sha1-aead")
        assert simon.area_ge() == SIMON32_64_GATES
        assert sha1.area_ge() > simon.area_ge()  # 5k+ GE vs 523

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("present-aead")


class TestBackendPoints:
    def test_parse_forms(self):
        assert parse_backend_point("ecc") == BackendPoint(
            "ecc", "ecc", None, None)
        assert parse_backend_point("simon-aead") == BackendPoint(
            "simon-aead", "symmetric", "simon-aead", None)
        assert parse_backend_point("hybrid:16") == BackendPoint(
            "hybrid:16", "hybrid", "simon-aead", 16)
        assert parse_backend_point("hybrid:sha1-aead:64") == \
            BackendPoint("hybrid:sha1-aead:64", "hybrid",
                         "sha1-aead", 64)

    def test_parse_rejects_bad_labels(self):
        for label in ("hybrid:", "hybrid:0", "hybrid:none:4",
                      "hybrid:simon-aead:4:9", "des"):
            with pytest.raises(ValueError):
                parse_backend_point(label)
