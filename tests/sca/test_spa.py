"""Tests for SPA: clustering vs balanced encoding vs profiled templates."""

import random

import numpy as np
import pytest

from repro.arch import (
    BalancedEncoding,
    CoprocessorConfig,
    EccCoprocessor,
    UnbalancedEncoding,
)
from repro.power import PowerTraceSimulator
from repro.sca import ProfiledSpa, SpaResult, bits_from_transitions, transition_spa

from .conftest import NOISE_SIGMA

N_ITER = 24  # truncated ladder length for the SPA unit tests


def run_and_measure(config, key, seed, n_traces=1):
    cop = EccCoprocessor(config)
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=seed)
    rng = random.Random(seed)
    rows = []
    execution = None
    for _ in range(n_traces):
        execution = cop.point_multiply(
            key, cop.domain.generator, rng=rng, max_iterations=N_ITER
        )
        rows.append(sim.measure(execution))
    return np.vstack(rows), execution


class TestTransitionSpa:
    def test_unbalanced_single_trace_recovers_key(self):
        key = EccCoprocessor().domain.scalar_ring.random_scalar(random.Random(3))
        samples, execution = run_and_measure(
            CoprocessorConfig(mux_encoding=UnbalancedEncoding()), key, seed=20
        )
        result = transition_spa(samples[0], execution.iteration_slices(),
                                execution.key_bits)
        assert result.success

    def test_balanced_encoding_defeats_clustering(self):
        key = EccCoprocessor().domain.scalar_ring.random_scalar(random.Random(4))
        samples, execution = run_and_measure(
            CoprocessorConfig(mux_encoding=BalancedEncoding()), key, seed=21
        )
        result = transition_spa(samples[0], execution.iteration_slices(),
                                execution.key_bits)
        # Roughly half the bits wrong = guessing.
        assert result.bit_errors > N_ITER // 4

    def test_works_on_averaged_traces(self):
        key = EccCoprocessor().domain.scalar_ring.random_scalar(random.Random(5))
        samples, execution = run_and_measure(
            CoprocessorConfig(mux_encoding=UnbalancedEncoding()), key,
            seed=22, n_traces=4
        )
        result = transition_spa(samples, execution.iteration_slices(),
                                execution.key_bits)
        assert result.success

    def test_window_size_validation(self):
        key = 0x12345
        samples, execution = run_and_measure(
            CoprocessorConfig(mux_encoding=UnbalancedEncoding()), key, seed=23
        )
        with pytest.raises(ValueError):
            transition_spa(samples[0], execution.iteration_slices(),
                           execution.key_bits, window_size=0)


class TestBitsFromTransitions:
    def test_integration(self):
        # MSB=1; transitions 1,0,1 -> bits 0,0,1
        assert bits_from_transitions([1, 0, 1]) == [0, 0, 1]

    def test_no_transitions(self):
        assert bits_from_transitions([0, 0, 0]) == [1, 1, 1]

    def test_first_bit_override(self):
        assert bits_from_transitions([1], first_bit=0) == [1]


class TestSpaResult:
    def test_error_counting(self):
        r = SpaResult(recovered_bits=[1, 0, 1], true_bits=[1, 1, 1])
        assert r.bit_errors == 1
        assert not r.success
        assert SpaResult([1], [1]).success


@pytest.mark.slow
class TestProfiledSpa:
    """The Section 7 residual: balanced encoding + layout mismatch."""

    MISMATCH = 0.05
    TRACES = 120

    def _device_config(self):
        return CoprocessorConfig(
            mux_encoding=BalancedEncoding(layout_mismatch=self.MISMATCH)
        )

    def test_profiled_attack_beats_clustering(self):
        ring = EccCoprocessor().domain.scalar_ring
        profiling_key = ring.random_scalar(random.Random(6))
        target_key = ring.random_scalar(random.Random(7))

        prof_samples, prof_exec = run_and_measure(
            self._device_config(), profiling_key, seed=30, n_traces=self.TRACES
        )
        spa = ProfiledSpa()
        spa.profile(prof_samples, prof_exec.iteration_slices(),
                    prof_exec.key_bits)

        atk_samples, atk_exec = run_and_measure(
            self._device_config(), target_key, seed=31, n_traces=self.TRACES
        )
        profiled = spa.attack(atk_samples, atk_exec.iteration_slices(),
                              atk_exec.key_bits)
        clustered = transition_spa(atk_samples, atk_exec.iteration_slices(),
                                   atk_exec.key_bits)
        assert profiled.bit_errors <= 1
        assert profiled.bit_errors < clustered.bit_errors

    def test_no_mismatch_means_no_profiled_leak(self):
        """With a perfectly balanced layout the templates collapse."""
        ring = EccCoprocessor().domain.scalar_ring
        profiling_key = ring.random_scalar(random.Random(8))
        target_key = ring.random_scalar(random.Random(9))
        config = CoprocessorConfig(mux_encoding=BalancedEncoding())

        prof_samples, prof_exec = run_and_measure(config, profiling_key,
                                                  seed=32, n_traces=60)
        spa = ProfiledSpa()
        spa.profile(prof_samples, prof_exec.iteration_slices(),
                    prof_exec.key_bits)
        atk_samples, atk_exec = run_and_measure(config, target_key,
                                                seed=33, n_traces=60)
        result = spa.attack(atk_samples, atk_exec.iteration_slices(),
                            atk_exec.key_bits)
        assert result.bit_errors > N_ITER // 4

    def test_attack_requires_profiling(self):
        spa = ProfiledSpa()
        with pytest.raises(RuntimeError):
            spa.attack(np.zeros((1, 10)), [(0, 5)], [1])

    def test_profile_needs_both_classes(self):
        spa = ProfiledSpa()
        with pytest.raises(ValueError):
            spa.profile(np.ones((1, 10)), [(0, 2), (2, 4)], [1, 1])

    def test_profile_length_mismatch(self):
        spa = ProfiledSpa()
        with pytest.raises(ValueError):
            spa.profile(np.ones((1, 10)), [(0, 2), (2, 4)], [1])
