"""Shared fixtures for the side-channel tests.

Campaigns are module-scoped and deliberately small: the unit tests
check attack *behaviour* (succeeds/fails in the right scenario); the
paper-scale trace counts live in the benchmarks.
"""

import random

import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import PowerTraceSimulator

#: Noise level used across the SCA tests (matches the benches).
NOISE_SIGMA = 38.0


def protocol_points(domain, count, rng):
    """Random prime-order-subgroup points with x != 0."""
    curve = domain.curve
    points = []
    while len(points) < count:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    return points


@pytest.fixture(scope="session")
def secret_key():
    return EccCoprocessor().domain.scalar_ring.random_scalar(random.Random(1234))


@pytest.fixture(scope="session")
def attack_points():
    cop = EccCoprocessor()
    return protocol_points(cop.domain, 240, random.Random(77))


@pytest.fixture(scope="session")
def unprotected_campaign(secret_key, attack_points):
    cop = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=10)
    traces = sim.campaign(cop, secret_key, attack_points,
                          scenario="unprotected", max_iterations=3)
    return cop, traces


@pytest.fixture(scope="session")
def protected_campaign(secret_key, attack_points):
    cop = EccCoprocessor(CoprocessorConfig(randomize_z=True))
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=11)
    traces = sim.campaign(cop, secret_key, attack_points,
                          rng=random.Random(5), scenario="protected",
                          max_iterations=3)
    return cop, traces


@pytest.fixture(scope="session")
def known_randomness_campaign(secret_key, attack_points):
    cop = EccCoprocessor(CoprocessorConfig(randomize_z=True))
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=12)
    traces = sim.campaign(cop, secret_key, attack_points[:120],
                          rng=random.Random(6), scenario="known_randomness",
                          max_iterations=6)
    return cop, traces
