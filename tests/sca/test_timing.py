"""Tests for timing attacks and constant-time verification."""

import random

import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.ec import NIST_K163
from repro.sca import (
    coprocessor_timing_report,
    double_and_add_cycle_model,
    timing_attack_hamming_weight,
)


class TestCoprocessorConstantTime:
    def test_constant_across_keys(self):
        cop = EccCoprocessor(CoprocessorConfig(randomize_z=False))
        rng = random.Random(1)
        keys = [cop.domain.scalar_ring.random_scalar(rng) for _ in range(3)]
        keys += [1, 3, cop.domain.order // 2]
        report = coprocessor_timing_report(cop, keys)
        assert report.is_constant_time
        assert report.correlation_with_weight == 0.0


class TestLeakyBaseline:
    def test_cycle_count_tracks_hamming_weight(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        sparse = 1 << 40                       # weight 1
        dense = (1 << 41) - 1                  # weight 41
        assert double_and_add_cycle_model(curve, dense, g) > \
            double_and_add_cycle_model(curve, sparse, g)

    def test_timing_attack_recovers_weight_exactly(self):
        curve, g = NIST_K163.curve, NIST_K163.generator
        rng = random.Random(2)
        for _ in range(5):
            k = rng.getrandbits(48) | (1 << 47)
            cycles = double_and_add_cycle_model(curve, k, g)
            recovered = timing_attack_hamming_weight(cycles, k.bit_length())
            assert recovered == bin(k).count("1")

    def test_weight_leak_shrinks_keyspace(self):
        """The point of the attack: HW(k) = w cuts the search space from
        2^t to C(t, w)."""
        import math

        t, w = 48, 10
        assert math.comb(t, w) < 2 ** t / 1000

    def test_correlation_detected_on_baseline(self):
        """The distinguisher flags the leaky implementation."""
        from repro.sca.timing import TimingReport

        curve, g = NIST_K163.curve, NIST_K163.generator
        rng = random.Random(3)
        cycles, weights = [], []
        for _ in range(30):
            k = rng.getrandbits(64) | (1 << 63)
            cycles.append(double_and_add_cycle_model(curve, k, g))
            weights.append(bin(k).count("1"))
        report = TimingReport(tuple(cycles), tuple(weights))
        assert not report.is_constant_time
        assert report.correlation_with_weight > 0.95
