"""Tests for the Gaussian template attack."""

import random

import numpy as np
import pytest

from repro.arch import BalancedEncoding, CoprocessorConfig, EccCoprocessor
from repro.power import PowerTraceSimulator
from repro.sca import GaussianTemplateAttack, transition_spa

from .conftest import NOISE_SIGMA

N_ITER = 20


def collect(config, key, n_traces, seed):
    coprocessor = EccCoprocessor(config)
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=seed)
    rng = random.Random(seed)
    rows = []
    execution = None
    for __ in range(n_traces):
        execution = coprocessor.point_multiply(
            key, coprocessor.domain.generator, rng=rng,
            max_iterations=N_ITER,
        )
        rows.append(sim.measure(execution))
    return np.vstack(rows), execution


@pytest.mark.slow
class TestTemplateAttack:
    MISMATCH = 0.05
    TRACES = 100

    def _config(self):
        return CoprocessorConfig(
            mux_encoding=BalancedEncoding(layout_mismatch=self.MISMATCH)
        )

    def test_recovers_residual_leak(self):
        ring = EccCoprocessor().domain.scalar_ring
        profiling_key = ring.random_scalar(random.Random(40))
        target_key = ring.random_scalar(random.Random(41))
        prof, prof_exec = collect(self._config(), profiling_key,
                                  self.TRACES, seed=50)
        attack = GaussianTemplateAttack(poi_count=2)
        attack.profile(prof, prof_exec.iteration_slices(),
                       prof_exec.key_bits)
        target, target_exec = collect(self._config(), target_key,
                                      self.TRACES, seed=51)
        result = attack.attack(target, target_exec.iteration_slices(),
                               target_exec.key_bits)
        assert result.bit_errors <= 1
        # ...where unprofiled clustering fails outright.
        clustered = transition_spa(target, target_exec.iteration_slices(),
                                   target_exec.key_bits)
        assert result.bit_errors < clustered.bit_errors

    def test_perfectly_balanced_device_defeats_templates(self):
        ring = EccCoprocessor().domain.scalar_ring
        config = CoprocessorConfig(mux_encoding=BalancedEncoding())
        prof, prof_exec = collect(config, ring.random_scalar(random.Random(42)),
                                  60, seed=52)
        attack = GaussianTemplateAttack(poi_count=2)
        attack.profile(prof, prof_exec.iteration_slices(), prof_exec.key_bits)
        target, target_exec = collect(config,
                                      ring.random_scalar(random.Random(43)),
                                      60, seed=53)
        result = attack.attack(target, target_exec.iteration_slices(),
                               target_exec.key_bits)
        assert result.bit_errors > N_ITER // 4  # guessing

    def test_requires_profiling(self):
        with pytest.raises(RuntimeError):
            GaussianTemplateAttack().attack(np.zeros((2, 40)), [(0, 20)], [1])

    def test_profile_needs_both_classes(self):
        attack = GaussianTemplateAttack(poi_count=1, window=2)
        with pytest.raises(ValueError):
            attack.profile(np.random.default_rng(0).normal(size=(4, 8)),
                           [(0, 4), (4, 8)], [1, 1])

    def test_profile_length_mismatch(self):
        attack = GaussianTemplateAttack(poi_count=1, window=2)
        with pytest.raises(ValueError):
            attack.profile(np.ones((2, 8)), [(0, 4), (4, 8)], [1])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GaussianTemplateAttack(poi_count=0)
        with pytest.raises(ValueError):
            GaussianTemplateAttack(poi_count=5, window=3)
