"""Tests for metrics, preprocessing and the TVLA t-test."""

import numpy as np
import pytest

from repro.sca import (
    TVLA_THRESHOLD,
    average_traces,
    center,
    compress_windows,
    first_order_snr,
    signal_to_noise_ratio,
    standardize,
    success_rate,
    tvla_fixed_vs_random,
    welch_t_statistic,
    window,
)


class TestSuccessRate:
    def test_perfect(self):
        assert success_rate([1, 0, 1], [1, 0, 1]) == 1.0

    def test_partial(self):
        assert success_rate([1, 1, 1, 1], [1, 0, 1, 0]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            success_rate([1], [1, 0])

    def test_empty(self):
        with pytest.raises(ValueError):
            success_rate([], [])


class TestSnr:
    def test_high_snr_where_classes_separate(self):
        rng = np.random.default_rng(0)
        labels = np.repeat([0, 1], 100)
        samples = rng.normal(0, 1, size=(200, 4))
        samples[labels == 1, 2] += 10.0  # class signal at sample 2
        snr = signal_to_noise_ratio(samples, labels)
        assert snr[2] > 5
        assert snr[0] < 0.5
        assert first_order_snr(samples, labels) == snr.max()

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            signal_to_noise_ratio(np.ones((4, 2)), np.zeros(4))


class TestPreprocess:
    def test_center(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        c = center(x)
        assert np.allclose(c.mean(axis=0), 0)

    def test_standardize(self):
        rng = np.random.default_rng(1)
        x = rng.normal(5, 3, size=(50, 4))
        s = standardize(x)
        assert np.allclose(s.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(s.std(axis=0), 1)

    def test_standardize_constant_column(self):
        x = np.ones((5, 2))
        s = standardize(x)
        assert np.allclose(s, 0)

    def test_window(self):
        x = np.arange(20).reshape(2, 10)
        assert window(x, 2, 5).shape == (2, 3)
        with pytest.raises(ValueError):
            window(x, 5, 2)

    def test_compress_windows(self):
        x = np.array([[1.0, 2.0, 3.0, 4.0]])
        f = compress_windows(x, [(0, 2), (2, 4)])
        assert np.allclose(f, [[3.0, 7.0]])

    def test_compress_out_of_range(self):
        with pytest.raises(ValueError):
            compress_windows(np.ones((1, 4)), [(0, 9)])

    def test_average(self):
        x = np.array([[1.0, 3.0], [3.0, 5.0]])
        assert np.allclose(average_traces(x), [2.0, 4.0])
        with pytest.raises(ValueError):
            average_traces(np.empty((0, 4)))


class TestWelchTtest:
    def test_identical_populations_pass(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, size=(300, 20))
        b = rng.normal(0, 1, size=(300, 20))
        report = tvla_fixed_vs_random(a, b)
        assert not report.leaks

    def test_shifted_sample_detected(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, size=(300, 20))
        b = rng.normal(0, 1, size=(300, 20))
        b[:, 7] += 1.0
        report = tvla_fixed_vs_random(a, b)
        assert report.leaks
        assert report.num_leaky_samples >= 1
        assert report.max_abs_t > TVLA_THRESHOLD

    def test_t_statistic_shape(self):
        a = np.random.default_rng(4).normal(size=(10, 8))
        b = np.random.default_rng(5).normal(size=(12, 8))
        assert welch_t_statistic(a, b).shape == (8,)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            welch_t_statistic(np.ones((5, 4)), np.ones((5, 6)))

    def test_tiny_groups_rejected(self):
        with pytest.raises(ValueError):
            welch_t_statistic(np.ones((1, 4)), np.ones((5, 4)))

    def test_report_str(self):
        rng = np.random.default_rng(6)
        report = tvla_fixed_vs_random(
            rng.normal(size=(50, 5)), rng.normal(size=(50, 5))
        )
        assert "TVLA" in str(report)
