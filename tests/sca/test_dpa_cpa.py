"""Tests for DPA and CPA in the three Section 7 scenarios."""

import pytest

from repro.sca import LadderCpa, LadderDpa


class TestUnprotectedScenario:
    """Countermeasure off: the attack must work (paper: ~200 traces)."""

    def test_dpa_recovers_bits(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        result = LadderDpa(cop).recover_bits(traces, 2)
        assert result.success
        assert result.recovered_bits == traces.key_bits[:2]

    def test_cpa_recovers_bits_with_fewer_traces(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        result = LadderCpa(cop).recover_bits(traces.subset(60), 2)
        assert result.success

    def test_decision_margins_grow_with_traces(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        dpa = LadderDpa(cop)
        small = dpa.recover_bits(traces.subset(60), 1).decisions[0].margin
        large = dpa.recover_bits(traces, 1).decisions[0].margin
        assert large > small

    def test_traces_to_disclosure_within_paper_band(self, unprotected_campaign):
        """Succeeds somewhere at/below a couple hundred traces."""
        cop, traces = unprotected_campaign
        needed = LadderDpa(cop).traces_to_disclosure(
            traces, 2, grid=[60, 120, 240]
        )
        assert needed is not None
        assert needed <= 240


@pytest.mark.slow
class TestKnownRandomnessScenario:
    """White-box: randomization on but Z known -> the attack still works,
    validating its soundness (Section 7)."""

    def test_dpa_succeeds_with_known_z(self, known_randomness_campaign):
        cop, traces = known_randomness_campaign
        result = LadderDpa(cop).recover_bits(
            traces, 2, z_values=traces.known_randomness
        )
        assert result.success

    def test_same_traces_fail_without_z(self, known_randomness_campaign):
        """The identical measurements are useless without the mask.

        Six bits are attacked so a lucky coin-flip success (the
        statistics degenerate to noise without Z) is implausible.
        """
        cop, traces = known_randomness_campaign
        result = LadderDpa(cop).recover_bits(traces, 6)
        assert not result.significant_success()


@pytest.mark.slow
class TestProtectedScenario:
    """Countermeasure on, randomness secret: the attack must fail."""

    def test_dpa_fails(self, protected_campaign):
        cop, traces = protected_campaign
        result = LadderDpa(cop).recover_bits(traces, 3)
        assert not result.significant_success()
        # Statistics sit at the max-over-cycles noise floor.
        assert all(p < 6.0 for p in result.peak_statistics)

    def test_cpa_fails(self, protected_campaign):
        cop, traces = protected_campaign
        result = LadderCpa(cop).recover_bits(traces, 3)
        import numpy as np
        assert not result.significant_success(
            threshold=4.5 / np.sqrt(traces.n_traces)
        )

    def test_traces_to_disclosure_returns_none(self, protected_campaign):
        cop, traces = protected_campaign
        needed = LadderDpa(cop).traces_to_disclosure(traces, 3, grid=[120, 240])
        assert needed is None


class TestInterfaces:
    def test_bad_nbits(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        with pytest.raises(ValueError):
            LadderDpa(cop).recover_bits(traces, 0)
        with pytest.raises(ValueError):
            LadderDpa(cop).recover_bits(traces, 99)

    def test_z_length_mismatch(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        with pytest.raises(ValueError):
            LadderDpa(cop).recover_bits(traces, 1, z_values=[1, 2, 3])

    def test_min_partition_validation(self, unprotected_campaign):
        cop, __ = unprotected_campaign
        with pytest.raises(ValueError):
            LadderDpa(cop, min_partition=0)

    def test_decision_records_truth(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        result = LadderDpa(cop).recover_bits(traces.subset(60), 1)
        decision = result.decisions[0]
        assert decision.true_bit == traces.key_bits[0]
        assert decision.chosen in (0, 1)
        assert decision.margin >= 0
