"""Tests for mutual information analysis."""

import numpy as np
import pytest

from repro.sca import LadderMia, mutual_information


class TestMutualInformation:
    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=3000)
        b = rng.normal(size=3000)
        assert mutual_information(a, b) < 0.05

    def test_identical_variables_high(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=3000)
        assert mutual_information(a, a) > 1.0

    def test_nonlinear_dependence_detected(self):
        """The point of MIA: |x| is uncorrelated with x but shares
        information with it."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=5000)
        y = np.abs(x) + rng.normal(scale=0.1, size=5000)
        pearson = abs(np.corrcoef(x, y)[0, 1])
        assert pearson < 0.1
        assert mutual_information(x, y) > 0.2

    def test_constant_input_is_zero(self):
        assert mutual_information(np.ones(100), np.arange(100.0)) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mutual_information(np.ones(5), np.ones(6))
        with pytest.raises(ValueError):
            mutual_information(np.ones((2, 3)), np.ones((2, 3)))


class TestLadderMia:
    def test_recovers_bits_unprotected(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        mia = LadderMia(cop)
        result = mia.recover_bits(traces, 1)
        assert result.decisions[0].correct

    def test_statistics_drop_when_protected(self, unprotected_campaign,
                                            protected_campaign):
        cop_u, traces_u = unprotected_campaign
        cop_p, traces_p = protected_campaign
        stat_u = LadderMia(cop_u).attack_bit(traces_u.subset(120), 0, [])
        stat_p = LadderMia(cop_p).attack_bit(traces_p.subset(120), 0, [])
        peak_u = max(stat_u.statistic_zero, stat_u.statistic_one)
        peak_p = max(stat_p.statistic_zero, stat_p.statistic_one)
        assert peak_u > peak_p

    def test_nbits_validation(self, unprotected_campaign):
        cop, traces = unprotected_campaign
        with pytest.raises(ValueError):
            LadderMia(cop).recover_bits(traces, 0)
