"""Tests for the white-box evaluation harness (Section 7 reproduction)."""

import pytest

from repro.arch import CoprocessorConfig, UnbalancedEncoding
from repro.security import WhiteBoxEvaluation


@pytest.fixture(scope="module")
def protected_report():
    """The paper's protected design, evaluated once (module scope:
    the full battery runs several point multiplications)."""
    return WhiteBoxEvaluation(n_traces=80, n_bits=2, seed=42).run()


@pytest.fixture(scope="module")
def weak_report():
    """A design with randomization off and an unbalanced mux encoding."""
    config = CoprocessorConfig(
        randomize_z=False, mux_encoding=UnbalancedEncoding()
    )
    return WhiteBoxEvaluation(config, n_traces=80, n_bits=2, seed=42).run()


class TestProtectedDesign:
    def test_timing_resistant(self, protected_report):
        assert protected_report.finding("timing").resistant

    def test_spa_resistant(self, protected_report):
        assert protected_report.finding("spa").resistant

    def test_dpa_resistant(self, protected_report):
        assert protected_report.finding("dpa").resistant

    def test_tvla_clean(self, protected_report):
        assert protected_report.finding("tvla").resistant

    def test_overall_verdict(self, protected_report):
        assert protected_report.all_resistant

    def test_render(self, protected_report):
        text = protected_report.render()
        assert "RESISTANT" in text
        assert "K-163" in text

    def test_unknown_attack_lookup(self, protected_report):
        with pytest.raises(KeyError):
            protected_report.finding("rowhammer")


class TestWeakDesign:
    def test_spa_vulnerable(self, weak_report):
        assert not weak_report.finding("spa").resistant

    def test_dpa_vulnerable(self, weak_report):
        assert not weak_report.finding("dpa").resistant

    def test_tvla_flags_the_leak(self, weak_report):
        assert not weak_report.finding("tvla").resistant

    def test_timing_still_resistant(self, weak_report):
        """Constant time is structural: even the weak config keeps it."""
        assert weak_report.finding("timing").resistant

    def test_overall_verdict(self, weak_report):
        assert not weak_report.all_resistant

    def test_pyramid_open_doors_in_header(self, weak_report):
        assert "dpa" in weak_report.configuration
