"""Tests for the scalar security score (the DSE security axis)."""

import pytest

from repro.arch import CoprocessorConfig, UnbalancedEncoding
from repro.security import ATTACK_THREATS, SecurityScore, score_design
from repro.security.pyramid import PAPER_THREATS


def protected():
    return CoprocessorConfig()


def unprotected():
    return CoprocessorConfig(randomize_z=False,
                             mux_encoding=UnbalancedEncoding())


class TestScoreDesign:
    def test_protected_design_closes_every_door(self):
        score = score_design(protected())
        assert score.value == 1.0
        assert score.open_doors == ()
        assert score.total == len(PAPER_THREATS)

    def test_unprotected_design_leaves_dpa_open(self):
        score = score_design(unprotected())
        assert score.open_doors == ("dpa",)
        assert score.value == pytest.approx(7 / 8)

    def test_sub_nominal_voltage_opens_fault_attack(self):
        score = score_design(protected(), vdd=0.8)
        assert score.open_doors == ("fault-attack",)
        assert score.vdd == 0.8

    def test_nominal_and_above_voltage_keep_it_closed(self):
        assert score_design(protected(), vdd=1.0).value == 1.0
        assert score_design(protected(), vdd=1.2).value == 1.0

    def test_none_voltage_means_nominal(self):
        score = score_design(protected(), vdd=None)
        assert score.vdd == 1.0
        assert score.value == 1.0

    def test_non_resistant_finding_opens_its_threat(self):
        findings = [{"attack": "spa", "resistant": False, "detail": ""}]
        score = score_design(protected(), findings=findings)
        assert "spa" in score.open_doors

    def test_resistant_finding_changes_nothing(self):
        findings = [{"attack": "spa", "resistant": True}]
        assert score_design(protected(), findings=findings).value == 1.0

    def test_tvla_maps_onto_dpa(self):
        findings = [{"attack": "tvla", "resistant": False}]
        score = score_design(protected(), findings=findings)
        assert "dpa" in score.open_doors
        assert ATTACK_THREATS["tvla"] == "dpa"

    def test_finding_objects_accepted(self):
        class Finding:
            attack = "timing"
            resistant = False

        score = score_design(protected(), findings=[Finding()])
        assert "timing-attack" in score.open_doors

    def test_doors_reported_in_pyramid_order(self):
        findings = [{"attack": a, "resistant": False}
                    for a in ("dpa", "spa", "timing")]
        score = score_design(unprotected(), vdd=0.8, findings=findings)
        order = [t.name for t in PAPER_THREATS]
        assert list(score.open_doors) \
            == [n for n in order if n in score.open_doors]
        assert list(score.closed) \
            == [n for n in order if n in score.closed]


class TestSecurityScore:
    def test_value_of_empty_score_is_one(self):
        assert SecurityScore(closed=(), open_doors=(), vdd=1.0).value == 1.0

    def test_str_names_the_open_doors(self):
        score = score_design(unprotected())
        assert "open: dpa" in str(score)
        assert str(score_design(protected())).endswith("(open: none)")

    def test_to_dict_roundtrips_the_fields(self):
        data = score_design(unprotected(), vdd=0.9).to_dict()
        assert data["value"] == pytest.approx(6 / 8)
        assert data["open"] == ["dpa", "fault-attack"]
        assert data["vdd"] == 0.9
