"""The opt-in key-compromise threat term of ``score_design``.

Session amortization adds a ninth threat to the paper's pyramid: a
captured session key exposes its forward-secrecy window.  The term is
strictly opt-in — a caller that never mentions ``session`` gets the
exact score it always got — and an AmortizedSpec is itself a valid
posture (duck-typed like the defense and checkpoint postures).
"""

import pytest

from repro.arch import CoprocessorConfig, BalancedEncoding
from repro.protocols import AmortizedSpec
from repro.security import score_design
from repro.security.pyramid import (
    KEY_COMPROMISE_THREAT,
    session_countermeasures,
)


def make_config(**overrides):
    kwargs = dict(digit_size=4, randomize_z=True,
                  mux_encoding=BalancedEncoding())
    kwargs.update(overrides)
    return CoprocessorConfig(**kwargs)


class TestOptIn:
    def test_absent_session_is_byte_identical(self):
        config = make_config()
        base = score_design(config)
        again = score_design(config, session=None)
        assert base == again
        assert KEY_COMPROMISE_THREAT.name not in base.closed
        assert KEY_COMPROMISE_THREAT.name not in base.open_doors

    def test_finite_epoch_closes_the_door(self):
        score = score_design(make_config(),
                             session={"rekey_epoch": 16,
                                      "private_identification": True})
        assert KEY_COMPROMISE_THREAT.name in score.closed
        assert "tracking" not in score.open_doors

    def test_unbounded_window_opens_the_door(self):
        score = score_design(make_config(),
                             session={"rekey_epoch": None,
                                      "private_identification": True})
        assert KEY_COMPROMISE_THREAT.name in score.open_doors

    def test_symmetric_identity_opens_tracking(self):
        score = score_design(make_config(),
                             session={"rekey_epoch": None,
                                      "private_identification": False})
        assert "tracking" in score.open_doors
        assert KEY_COMPROMISE_THREAT.name in score.open_doors

    def test_session_term_moves_the_score_value(self):
        config = make_config()
        base = score_design(config)
        closed = score_design(config, session={"rekey_epoch": 1})
        opened = score_design(config, session={"rekey_epoch": None})
        # One more threat scored: closing it keeps the perfect score,
        # leaving it open drops below the base.
        assert closed.value == pytest.approx(base.value)
        assert opened.value < base.value


class TestPostures:
    def test_amortized_spec_is_a_posture(self):
        spec = AmortizedSpec(epoch_messages=8)
        score = score_design(make_config(), session=spec)
        assert KEY_COMPROMISE_THREAT.name in score.closed
        assert "tracking" not in score.open_doors

    def test_schnorr_spec_opens_tracking(self):
        spec = AmortizedSpec(protocol="schnorr")
        score = score_design(make_config(), session=spec)
        assert "tracking" in score.open_doors

    def test_erasure_is_supporting_only(self):
        # Erasing retired keys cannot bound a live key's window.
        measures = session_countermeasures(
            type("P", (), {"rekey_epoch": None, "erase_keys": True})())
        assert measures and all(not cm.primary for cm in measures)
        score = score_design(make_config(),
                             session={"rekey_epoch": None,
                                      "erase_keys": True})
        assert KEY_COMPROMISE_THREAT.name in score.open_doors

    def test_bool_epoch_is_not_a_window(self):
        # True is an int in Python; a boolean must not read as a
        # one-message epoch.
        assert session_countermeasures(
            type("P", (), {"rekey_epoch": True})()) == []


class TestComposition:
    def test_all_three_optional_terms_stack(self):
        score = score_design(
            make_config(), defenses="full", checkpoint=True,
            session={"rekey_epoch": 16})
        assert "battery-depletion" in score.closed
        assert "power-interruption" in score.closed
        assert KEY_COMPROMISE_THREAT.name in score.closed
