"""Scoring the battery-depletion posture: back-compat is pinned."""

import pytest

from repro.arch.coprocessor import CoprocessorConfig
from repro.ec.curves import get_curve
from repro.security import (
    BATTERY_DEPLETION_THREAT,
    defense_countermeasures,
    pyramid_with_defenses,
    score_design,
)
from repro.security.pyramid import PAPER_THREATS


@pytest.fixture(scope="module")
def config():
    return CoprocessorConfig(domain=get_curve("K-163"), digit_size=4)


class TestBackCompat:
    def test_no_defenses_keeps_the_eight_threat_score(self, config):
        """``defenses=None`` is the paper's original account —
        byte-identical, battery-depletion not even mentioned."""
        score = score_design(config)
        assert score.total == len(PAPER_THREATS) == 8
        assert score.value == 1.0
        assert BATTERY_DEPLETION_THREAT.name not in score.closed
        assert BATTERY_DEPLETION_THREAT.name not in score.open_doors


class TestDefenseScoring:
    def test_primary_defense_closes_the_door(self, config):
        for name in ("budget-cap", "wake-gating", "full"):
            score = score_design(config, defenses=name)
            assert score.total == 9
            assert BATTERY_DEPLETION_THREAT.name in score.closed, name

    def test_no_defense_opens_the_door(self, config):
        score = score_design(config, defenses="none")
        assert score.total == 9
        assert score.open_doors == (BATTERY_DEPLETION_THREAT.name,)
        assert score.value == pytest.approx(8 / 9)

    def test_backoff_alone_is_supporting_not_primary(self, config):
        """Throttling slows the bleed but bounds nothing — the door
        stays open, exactly like circuit-level hygiene elsewhere."""
        score = score_design(config, defenses="backoff")
        assert BATTERY_DEPLETION_THREAT.name in score.open_doors

    def test_accepts_dicts_and_configs(self, config):
        from repro.adversary import defense_config

        as_dict = score_design(
            config, defenses={"name": "x", "wake_gating": True})
        as_config = score_design(config,
                                 defenses=defense_config("wake-gating"))
        assert BATTERY_DEPLETION_THREAT.name in as_dict.closed
        assert BATTERY_DEPLETION_THREAT.name in as_config.closed

    def test_composes_with_vdd_and_findings(self, config):
        score = score_design(config, vdd=0.9, defenses="none")
        assert set(score.open_doors) == \
            {"fault-attack", BATTERY_DEPLETION_THREAT.name}


class TestPyramidWithDefenses:
    def test_extends_the_pyramid(self, config):
        from repro.adversary import defense_config

        pyramid = pyramid_with_defenses(config, defense_config("full"))
        names = [t.name for t in pyramid.threats]
        assert BATTERY_DEPLETION_THREAT.name in names
        assert pyramid.uncovered_threats() == []
        report = pyramid.report()
        assert "wake-up radio gating" in report

    def test_countermeasure_levels(self):
        from repro.adversary import defense_config
        from repro.security import AbstractionLevel

        measures = defense_countermeasures(defense_config("full"))
        by_name = {cm.name: cm for cm in measures}
        assert len(measures) == 3
        gating = by_name["authenticated wake-up radio gating"]
        budget = by_name["per-window energy budget cap"]
        backoff = by_name["bounded restart backoff / epoch throttling"]
        assert gating.level is AbstractionLevel.PROTOCOL and gating.primary
        assert budget.level is AbstractionLevel.ARCHITECTURE \
            and budget.primary
        assert not backoff.primary
