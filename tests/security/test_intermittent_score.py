"""Scoring the intermittent-power posture: back-compat is pinned."""

import pytest

from repro.arch.coprocessor import CoprocessorConfig
from repro.ec.curves import get_curve
from repro.security import (
    POWER_INTERRUPTION_THREAT,
    intermittent_countermeasures,
    pyramid_with_intermittent,
    score_design,
)
from repro.security.pyramid import PAPER_THREATS


@pytest.fixture(scope="module")
def config():
    return CoprocessorConfig(domain=get_curve("K-163"), digit_size=4)


class TestBackCompat:
    def test_no_checkpoint_keeps_the_eight_threat_score(self, config):
        """``checkpoint=None`` is the paper's original account —
        byte-identical, power-interruption not even mentioned."""
        score = score_design(config)
        assert score.total == len(PAPER_THREATS) == 8
        assert score.value == 1.0
        assert POWER_INTERRUPTION_THREAT.name not in score.closed
        assert POWER_INTERRUPTION_THREAT.name not in score.open_doors


class TestCheckpointScoring:
    def test_durable_posture_closes_the_door(self, config):
        score = score_design(config, checkpoint=True)
        assert score.total == 9
        assert POWER_INTERRUPTION_THREAT.name in score.closed
        assert score.value == 1.0

    def test_naive_tag_leaves_the_door_open(self, config):
        score = score_design(
            config, checkpoint={"durable": False, "checkpoint_interval": 8})
        assert score.total == 9
        assert score.open_doors == (POWER_INTERRUPTION_THREAT.name,)
        assert score.value == pytest.approx(8 / 9)

    def test_accepts_spec_objects(self, config):
        from repro.intermittent import IntermittentSpec

        score = score_design(config, checkpoint=IntermittentSpec())
        assert POWER_INTERRUPTION_THREAT.name in score.closed

    def test_composes_with_defenses(self, config):
        score = score_design(config, defenses="none",
                             checkpoint={"durable": False})
        assert score.total == 10
        assert set(score.open_doors) == \
            {"battery-depletion", POWER_INTERRUPTION_THREAT.name}


class TestPyramidWithIntermittent:
    def test_extends_the_pyramid(self, config):
        from repro.intermittent import IntermittentSpec

        pyramid = pyramid_with_intermittent(config, IntermittentSpec())
        names = [t.name for t in pyramid.threats]
        assert POWER_INTERRUPTION_THREAT.name in names
        assert pyramid.uncovered_threats() == []
        assert "commit-before-use" in pyramid.report()

    def test_countermeasure_levels(self):
        from repro.intermittent import IntermittentSpec
        from repro.security import AbstractionLevel

        measures = intermittent_countermeasures(IntermittentSpec())
        by_name = {cm.name: cm for cm in measures}
        assert len(measures) == 3
        vault = by_name["commit-before-use nonce checkpointing"]
        commit = by_name["two-phase atomic NVM commit"]
        ladder = by_name["periodic ladder-state checkpointing"]
        assert vault.level is AbstractionLevel.PROTOCOL and vault.primary
        assert commit.level is AbstractionLevel.ARCHITECTURE \
            and commit.primary
        assert ladder.level is AbstractionLevel.ALGORITHM \
            and not ladder.primary

    def test_ladder_checkpointing_alone_is_not_primary(self, config):
        from types import SimpleNamespace

        measures = intermittent_countermeasures(
            SimpleNamespace(durable=False, checkpoint_interval=8))
        assert measures and not any(cm.primary for cm in measures)
