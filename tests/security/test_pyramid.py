"""Tests for the security pyramid model (Figure 1)."""

import pytest

from repro.arch import (
    ClockGatingPolicy,
    CoprocessorConfig,
    UnbalancedEncoding,
)
from repro.security import (
    AbstractionLevel,
    Countermeasure,
    SecurityPyramid,
    Threat,
    default_pyramid,
    pyramid_for_config,
)


class TestPyramidModel:
    def test_levels_ordered_top_down(self):
        assert AbstractionLevel.PROTOCOL > AbstractionLevel.ALGORITHM
        assert AbstractionLevel.ALGORITHM > AbstractionLevel.ARCHITECTURE
        assert AbstractionLevel.ARCHITECTURE > AbstractionLevel.CIRCUIT

    def test_unknown_threat_rejected(self):
        pyramid = SecurityPyramid()
        pyramid.add_threat(Threat("dpa", "..."))
        with pytest.raises(ValueError):
            pyramid.add_countermeasure(
                Countermeasure("x", AbstractionLevel.CIRCUIT, ("spa",), "m")
            )

    def test_uncovered_threats(self):
        pyramid = SecurityPyramid()
        pyramid.add_threat(Threat("dpa", "..."))
        pyramid.add_threat(Threat("spa", "..."))
        pyramid.add_countermeasure(
            Countermeasure("rand-z", AbstractionLevel.ALGORITHM, ("dpa",), "m")
        )
        assert [t.name for t in pyramid.uncovered_threats()] == ["spa"]

    def test_supporting_measures_do_not_close_threats(self):
        pyramid = SecurityPyramid()
        pyramid.add_threat(Threat("dpa", "..."))
        pyramid.add_countermeasure(
            Countermeasure("hygiene", AbstractionLevel.CIRCUIT, ("dpa",), "m",
                           primary=False)
        )
        assert [t.name for t in pyramid.uncovered_threats()] == ["dpa"]


class TestDefaultPyramid:
    def test_all_threats_covered(self):
        assert default_pyramid().uncovered_threats() == []

    def test_every_level_contributes(self):
        """The paper's thesis: defences at ALL four levels."""
        levels = default_pyramid().levels_used()
        assert levels == [
            AbstractionLevel.PROTOCOL,
            AbstractionLevel.ALGORITHM,
            AbstractionLevel.ARCHITECTURE,
            AbstractionLevel.CIRCUIT,
        ]

    def test_timing_defended_on_two_levels(self):
        """Section 7: constant time comes from the algorithm level AND
        the architecture level."""
        defences = default_pyramid().defences_for("timing-attack")
        levels = {cm.level for cm in defences}
        assert AbstractionLevel.ALGORITHM in levels
        assert AbstractionLevel.ARCHITECTURE in levels

    def test_report_renders(self):
        text = default_pyramid().report()
        assert "PROTOCOL" in text and "CIRCUIT" in text
        assert "All modelled threats" in text

    def test_coverage_structure(self):
        coverage = default_pyramid().coverage()
        assert "dpa" in coverage
        assert any("randomized projective" in name
                   for __, name in coverage["dpa"])


class TestPyramidForConfig:
    def test_full_config_has_no_open_doors(self):
        pyramid = pyramid_for_config(CoprocessorConfig())
        assert pyramid.uncovered_threats() == []

    def test_disabling_randomization_opens_dpa(self):
        pyramid = pyramid_for_config(CoprocessorConfig(randomize_z=False))
        assert "dpa" in [t.name for t in pyramid.uncovered_threats()]

    def test_unbalanced_mux_removes_circuit_spa_defence(self):
        pyramid = pyramid_for_config(
            CoprocessorConfig(mux_encoding=UnbalancedEncoding())
        )
        names = [cm.name for cm in pyramid.defences_for("spa")]
        assert "balanced mux-select encoding" not in names

    def test_gating_and_glitch_flags(self):
        pyramid = pyramid_for_config(
            CoprocessorConfig(
                clock_gating=ClockGatingPolicy.DATA_DEPENDENT,
                glitch_factor=0.5,
                input_isolation=False,
            )
        )
        names = {cm.name for cm in pyramid.countermeasures}
        assert "no data-dependent clock gating" not in names
        assert "glitch avoidance" not in names
        assert "datapath input isolation" not in names
