"""Tests for trace export/import and iteration profiles."""

import random

import numpy as np
import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import (
    PowerTraceSimulator,
    iteration_profile,
    load_traceset,
    save_traceset,
    trace_to_csv,
)


@pytest.fixture(scope="module")
def campaign():
    coprocessor = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    rng = random.Random(1)
    curve = coprocessor.domain.curve
    points = []
    while len(points) < 4:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    sim = PowerTraceSimulator(noise_sigma=2.0, seed=1)
    return sim.campaign(coprocessor, 0x123, points, scenario="unprotected",
                        max_iterations=3)


class TestNpzRoundtrip:
    def test_roundtrip(self, campaign, tmp_path):
        path = tmp_path / "campaign.npz"
        save_traceset(campaign, path)
        loaded = load_traceset(path)
        assert np.allclose(loaded.samples, campaign.samples)
        assert loaded.inputs == campaign.inputs
        assert loaded.iteration_slices == campaign.iteration_slices
        assert loaded.key_bits == campaign.key_bits
        assert loaded.known_randomness is None

    def test_roundtrip_with_randomness(self, tmp_path):
        coprocessor = EccCoprocessor(CoprocessorConfig())
        rng = random.Random(2)
        curve = coprocessor.domain.curve
        point = curve.double(curve.random_point(rng))
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=2)
        traces = sim.campaign(coprocessor, 0x55, [point, point], rng=rng,
                              scenario="known_randomness", max_iterations=2)
        path = tmp_path / "wb.npz"
        save_traceset(traces, path)
        loaded = load_traceset(path)
        assert loaded.known_randomness == traces.known_randomness


class TestCsv:
    def test_single_trace(self, campaign, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(campaign.samples[0], path)
        loaded = np.loadtxt(path, delimiter=",")
        assert np.allclose(loaded, campaign.samples[0], atol=1e-5)

    def test_matrix(self, campaign, tmp_path):
        path = tmp_path / "traces.csv"
        trace_to_csv(campaign.samples, path)
        loaded = np.loadtxt(path, delimiter=",")
        assert loaded.shape == campaign.samples.shape


class TestIterationProfile:
    def test_shape(self, campaign):
        profile = iteration_profile(campaign.samples,
                                    campaign.iteration_slices)
        min_width = min(e - s for s, e in campaign.iteration_slices)
        assert profile.shape == (min_width,)

    def test_explicit_width(self, campaign):
        profile = iteration_profile(campaign.samples,
                                    campaign.iteration_slices, width=10)
        assert profile.shape == (10,)

    def test_profile_is_average(self):
        samples = np.array([[1.0, 2.0, 3.0, 4.0]])
        profile = iteration_profile(samples, [(0, 2), (2, 4)])
        assert np.allclose(profile, [2.0, 3.0])

    def test_validation(self, campaign):
        with pytest.raises(ValueError):
            iteration_profile(campaign.samples, [])
        with pytest.raises(ValueError):
            iteration_profile(campaign.samples, campaign.iteration_slices,
                              width=10_000)
