"""Tests for the calibrated energy model (the paper's E1 numbers)."""

import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import (
    OperatingPoint,
    PAPER_ENERGY_PER_PM_JOULES,
    PAPER_OPERATING_POINT,
    PAPER_POWER_WATTS,
    PAPER_THROUGHPUT_PM_PER_S,
    TechnologyParams,
    calibrate_energy_model,
    energy_per_toggle_for_activity,
)


@pytest.fixture(scope="module")
def calibrated():
    cop = EccCoprocessor(CoprocessorConfig())
    model = calibrate_energy_model(cop)
    execution = cop.point_multiply(0x123456789ABCDEF, cop.domain.generator,
                                   initial_z=1)
    return model, execution


class TestCalibration:
    def test_power_matches_paper(self, calibrated):
        model, execution = calibrated
        report = model.report(execution)
        assert report.power_watts == pytest.approx(PAPER_POWER_WATTS, rel=0.02)

    def test_energy_per_pm_matches_paper(self, calibrated):
        """5.1 uJ per point multiplication."""
        model, execution = calibrated
        energy = model.energy_per_operation(execution)
        assert energy == pytest.approx(PAPER_ENERGY_PER_PM_JOULES, rel=0.02)

    def test_throughput_matches_paper(self, calibrated):
        """9.8 point multiplications per second at 847.5 kHz."""
        model, execution = calibrated
        report = model.report(execution)
        assert report.operations_per_second == pytest.approx(
            PAPER_THROUGHPUT_PM_PER_S, rel=0.02
        )

    def test_report_string(self, calibrated):
        model, execution = calibrated
        text = str(model.report(execution))
        assert "uW" in text and "uJ" in text and "op/s" in text


class TestScalingLaws:
    def test_frequency_scaling_keeps_energy(self, calibrated):
        """Energy per operation is frequency-independent (CV^2 per toggle);
        power scales linearly with f."""
        model, execution = calibrated
        slow = model.report(execution, OperatingPoint(100e3, 1.0))
        fast = model.report(execution, OperatingPoint(1e6, 1.0))
        assert slow.energy_joules == pytest.approx(fast.energy_joules)
        assert fast.power_watts == pytest.approx(slow.power_watts * 10)

    def test_voltage_scaling_quadratic(self, calibrated):
        model, execution = calibrated
        low = model.report(execution, OperatingPoint(847.5e3, 0.8))
        high = model.report(execution, OperatingPoint(847.5e3, 1.2))
        assert high.energy_joules / low.energy_joules == pytest.approx(
            (1.2 / 0.8) ** 2
        )

    def test_static_fraction_bounds(self):
        with pytest.raises(ValueError):
            TechnologyParams("x", 130, 1.0, static_fraction=1.0)

    def test_bad_operating_point(self):
        with pytest.raises(ValueError):
            OperatingPoint(0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1e6, -1.0)

    def test_energy_per_toggle_positive(self, calibrated):
        model, __ = calibrated
        assert model.energy_per_toggle > 0

    def test_invalid_energy_model(self):
        from repro.power import EnergyModel

        with pytest.raises(ValueError):
            EnergyModel(0.0)


class TestActivityInterface:
    """The (consumed, cycles) reduction the DSE cache is built on."""

    def test_report_activity_reproduces_report(self, calibrated):
        model, execution = calibrated
        consumed = model.activity(execution)
        for point in (PAPER_OPERATING_POINT, OperatingPoint(4e6, 0.8)):
            via_activity = model.report_activity(consumed, execution.cycles,
                                                 point)
            direct = model.report(execution, point)
            assert via_activity.power_watts == direct.power_watts
            assert via_activity.energy_joules == direct.energy_joules
            assert via_activity.duration_seconds == direct.duration_seconds

    def test_calibration_roundtrip_is_exact(self, calibrated):
        """Fitting the per-toggle energy from the pair the calibration
        workload produces must return the calibrated constant exactly
        (the DSE cache recalibrates from cached bytes this way)."""
        from repro.power import MeasuredDesign

        model, _ = calibrated
        measured = MeasuredDesign.measure(CoprocessorConfig(), model)
        ept = energy_per_toggle_for_activity(measured.consumed,
                                             measured.cycles)
        assert ept == model.energy_per_toggle

    def test_rejects_nonpositive_activity(self):
        with pytest.raises(ValueError, match="activity"):
            energy_per_toggle_for_activity(0.0, 1000)

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError, match="cycle"):
            energy_per_toggle_for_activity(1000.0, 0)
