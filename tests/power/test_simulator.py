"""Tests for the virtual oscilloscope (trace simulator and campaigns)."""

import random

import numpy as np
import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import PowerTraceSimulator


@pytest.fixture(scope="module")
def setup():
    cop = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    cop_protected = EccCoprocessor(CoprocessorConfig(randomize_z=True))
    rng = random.Random(9)
    curve = cop.domain.curve
    points = []
    while len(points) < 6:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    return cop, cop_protected, points


class TestMeasure:
    def test_trace_length_equals_cycles(self, setup):
        cop, __, points = setup
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=0)
        execution = cop.point_multiply(5, points[0], max_iterations=2)
        assert sim.measure(execution).shape == (execution.cycles,)

    def test_zero_noise_is_deterministic(self, setup):
        cop, __, points = setup
        sim = PowerTraceSimulator(noise_sigma=0.0)
        execution = cop.point_multiply(5, points[0], max_iterations=2)
        assert np.array_equal(sim.measure(execution), sim.measure(execution))

    def test_noise_changes_traces(self, setup):
        cop, __, points = setup
        sim = PowerTraceSimulator(noise_sigma=5.0, seed=1)
        execution = cop.point_multiply(5, points[0], max_iterations=2)
        assert not np.array_equal(sim.measure(execution), sim.measure(execution))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PowerTraceSimulator(noise_sigma=-1.0)


class TestCampaign:
    def test_unprotected_campaign_shape(self, setup):
        cop, __, points = setup
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=2)
        ts = sim.campaign(cop, 0x123, points, scenario="unprotected",
                          max_iterations=2)
        assert ts.n_traces == len(points)
        assert ts.samples.shape == (len(points), ts.n_samples)
        assert ts.known_randomness is None
        assert len(ts.iteration_slices) == 2
        assert len(ts.key_bits) == 2

    def test_known_randomness_recorded(self, setup):
        __, cop_p, points = setup
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=3)
        ts = sim.campaign(cop_p, 0x123, points, rng=random.Random(1),
                          scenario="known_randomness", max_iterations=2)
        assert len(ts.known_randomness) == len(points)
        assert all(z >= 1 for z in ts.known_randomness)

    def test_protected_hides_randomness(self, setup):
        __, cop_p, points = setup
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=4)
        ts = sim.campaign(cop_p, 0x123, points, rng=random.Random(2),
                          scenario="protected", max_iterations=2)
        assert ts.known_randomness is None

    def test_randomized_scenarios_need_rng(self, setup):
        __, cop_p, points = setup
        sim = PowerTraceSimulator()
        with pytest.raises(ValueError):
            sim.campaign(cop_p, 0x123, points, scenario="protected",
                         max_iterations=2)

    def test_unknown_scenario_rejected(self, setup):
        cop, __, points = setup
        with pytest.raises(ValueError):
            PowerTraceSimulator().campaign(cop, 1, points, scenario="nope")

    def test_subset(self, setup):
        cop, __, points = setup
        sim = PowerTraceSimulator(noise_sigma=1.0, seed=5)
        ts = sim.campaign(cop, 0x123, points, scenario="unprotected",
                          max_iterations=2)
        sub = ts.subset(3)
        assert sub.n_traces == 3
        assert np.array_equal(sub.samples, ts.samples[:3])
        with pytest.raises(ValueError):
            ts.subset(100)
