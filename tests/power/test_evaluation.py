"""Tests for the hoisted design-point evaluation helpers."""

import pytest

from repro.arch import CoprocessorConfig, UnbalancedEncoding, ecc_core_area
from repro.ec import NIST_K163
from repro.power import (
    DesignEvaluation,
    MeasuredDesign,
    OperatingPoint,
    PAPER_ENERGY_PER_PM_JOULES,
    PAPER_POWER_WATTS,
    design_area,
    reference_config,
    reference_model,
)


@pytest.fixture(scope="module")
def toy_model():
    return reference_model("TOY-B17")


@pytest.fixture(scope="module")
def toy_measured(toy_model):
    return MeasuredDesign.measure(reference_config("TOY-B17"), toy_model)


class TestReferenceConfig:
    def test_default_is_the_papers_design(self):
        config = reference_config()
        assert config.digit_size == 4
        assert config.randomize_z
        assert config.domain is NIST_K163

    def test_accepts_curve_names_and_objects(self):
        from repro.ec.curves import get_curve

        toy = get_curve("TOY-B17")
        assert reference_config("TOY-B17").domain is toy
        assert reference_config(toy).domain is toy


class TestDesignArea:
    def test_matches_the_area_model(self):
        config = reference_config()
        area = design_area(config)
        expected = ecc_core_area(
            m=163, digit_size=4, register_count=6, mux_fanout=164,
            dedicated_squarer=False)
        assert area.total == expected.total

    def test_uses_the_configs_field_and_registers(self):
        config = reference_config("TOY-B17")
        area = design_area(config)
        expected = ecc_core_area(
            m=17, digit_size=4,
            register_count=config.core_register_count,
            mux_fanout=18, dedicated_squarer=False)
        assert area.total == expected.total


class TestMeasuredDesign:
    def test_measure_fills_the_area(self, toy_measured):
        assert toy_measured.area.total > 0
        assert toy_measured.cycles > 0
        assert toy_measured.consumed > 0

    def test_reference_measurement_prices_at_the_paper_point(self):
        model = reference_model()
        measured = MeasuredDesign.measure(reference_config(), model)
        evaluation = measured.at(model)
        assert evaluation.power_uw \
            == pytest.approx(PAPER_POWER_WATTS * 1e6, rel=1e-9)
        assert evaluation.energy_uj \
            == pytest.approx(PAPER_ENERGY_PER_PM_JOULES * 1e6, rel=0.02)

    def test_at_reprices_without_resimulation(self, toy_model, toy_measured):
        nominal = toy_measured.at(toy_model)
        fast = toy_measured.at(toy_model, OperatingPoint(4e6, 1.0))
        low = toy_measured.at(toy_model, OperatingPoint(847.5e3, 0.8))
        assert fast.energy_uj == pytest.approx(nominal.energy_uj)
        assert fast.latency_s < nominal.latency_s
        assert low.energy_uj / nominal.energy_uj == pytest.approx(0.64)

    def test_evaluation_figures_of_merit(self, toy_model, toy_measured):
        evaluation = toy_measured.at(toy_model)
        assert isinstance(evaluation, DesignEvaluation)
        assert evaluation.area_ge == toy_measured.area.total
        assert evaluation.cycles == toy_measured.cycles
        assert evaluation.area_energy \
            == pytest.approx(evaluation.area_ge * evaluation.energy_uj)
        assert evaluation.latency_s \
            == pytest.approx(toy_measured.cycles / 847.5e3)

    def test_protected_design_costs_more_than_unprotected(self, toy_model):
        from repro.ec.curves import get_curve

        toy = get_curve("TOY-B17")
        protected = MeasuredDesign.measure(
            reference_config(toy), toy_model)
        unprotected = MeasuredDesign.measure(
            CoprocessorConfig(domain=toy, digit_size=4, randomize_z=False,
                              mux_encoding=UnbalancedEncoding()),
            toy_model)
        assert protected.consumed > unprotected.consumed
