"""Tests for the leakage models (CMOS vs SABL/WDDL)."""

import numpy as np
import pytest

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import (
    ChannelWeights,
    CmosLeakageModel,
    SablLeakageModel,
    WddlLeakageModel,
)


@pytest.fixture(scope="module")
def executions():
    cop = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    g = cop.domain.generator
    n = cop.domain.order
    # Keys differing in their HIGH bits: the truncated run only covers
    # the first ladder iterations, and scalar recoding (k + n / k + 2n)
    # makes the top bits of small keys identical.
    return [
        cop.point_multiply(k, g, max_iterations=3)
        for k in (n // 2, n // 3, n // 5)
    ]


class TestCmosModel:
    def test_output_length(self, executions):
        model = CmosLeakageModel()
        out = model.consumed(executions[0])
        assert out.shape == (executions[0].cycles,)

    def test_data_dependence(self, executions):
        """CMOS leaks: different data -> different consumption."""
        model = CmosLeakageModel()
        a = model.consumed(executions[0])
        b = model.consumed(executions[1])
        assert not np.allclose(a, b)

    def test_weights_scale_channels(self, executions):
        light = CmosLeakageModel(ChannelWeights(control=0.0))
        heavy = CmosLeakageModel(ChannelWeights(control=10.0))
        assert heavy.consumed(executions[0]).sum() > light.consumed(
            executions[0]
        ).sum()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ChannelWeights(datapath=-1.0)


class TestDifferentialLogic:
    def test_sabl_nearly_constant(self, executions):
        """SABL consumes (almost) the same energy regardless of data."""
        model = SablLeakageModel()
        a = model.consumed(executions[0])
        b = model.consumed(executions[1])
        # Relative variation across different data is tiny.
        diff = np.abs(a - b).max()
        assert diff / a.mean() < 0.15

    def test_residual_ordering(self, executions):
        """WDDL (std-cell) balances worse than full-custom SABL."""
        sabl = SablLeakageModel()
        wddl = WddlLeakageModel()
        assert wddl.residual_imbalance > sabl.residual_imbalance

    def test_power_overhead(self, executions):
        """Secure logic styles cost substantially more power."""
        cmos = CmosLeakageModel().consumed(executions[0]).mean()
        sabl = SablLeakageModel().consumed(executions[0]).mean()
        assert sabl > 2 * cmos

    def test_data_dependent_residual(self, executions):
        """With a nonzero residual, a tiny data dependence remains."""
        model = WddlLeakageModel(residual_imbalance=0.05)
        a = model.consumed(executions[0])
        b = model.consumed(executions[1])
        assert not np.allclose(a, b)
        ideal = WddlLeakageModel(residual_imbalance=0.0)
        assert np.allclose(ideal.consumed(executions[0]),
                           ideal.consumed(executions[1]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SablLeakageModel(cells_per_cycle=0)
        with pytest.raises(ValueError):
            WddlLeakageModel(residual_imbalance=-0.1)
