"""The TagDatabase seam: toy and custom backends are interchangeable."""

import pytest

from repro.ec.curves import get_curve
from repro.primitives import AesCtrDrbg
from repro.protocols import (
    InMemoryTagDatabase,
    PeetersHermansReader,
    PeetersHermansTag,
    TagDatabase,
    make_adapter,
    run_identification,
    run_resilient_session,
)

DOMAIN = get_curve("TOY-B17")


def make_pair(tag_secret=1234, reader_secret=4321, database=None):
    reader = PeetersHermansReader(DOMAIN, reader_secret, database=database)
    tag = PeetersHermansTag(DOMAIN, tag_secret, reader.public)
    return tag, reader


class TestInMemoryTagDatabase:
    def test_enroll_lookup_len(self):
        db = InMemoryTagDatabase(DOMAIN.curve)
        tag, _ = make_pair()
        assert len(db) == 0
        db.enroll(7, tag.identity_point)
        assert len(db) == 1
        assert db.lookup(tag.identity_point) == 7

    def test_unknown_point_is_none(self):
        db = InMemoryTagDatabase(DOMAIN.curve)
        tag, _ = make_pair()
        assert db.lookup(tag.identity_point) is None

    def test_first_enrollment_is_canonical(self):
        """Colliding enrollments resolve to the earliest identity —
        the same rule the sharded store's scan order implies."""
        db = InMemoryTagDatabase(DOMAIN.curve)
        tag, _ = make_pair()
        db.enroll(3, tag.identity_point)
        db.enroll(9, tag.identity_point)
        assert db.lookup(tag.identity_point) == 3
        assert len(db) == 1

    def test_off_curve_rejected(self):
        from repro.ec.point import AffinePoint

        db = InMemoryTagDatabase(DOMAIN.curve)
        with pytest.raises(ValueError):
            db.enroll(1, AffinePoint(1, 2))

    def test_infinity_rejected(self):
        from repro.ec.point import AffinePoint

        db = InMemoryTagDatabase(DOMAIN.curve)
        with pytest.raises(ValueError):
            db.enroll(1, AffinePoint.infinity())
        assert db.lookup(AffinePoint.infinity()) is None


class _RecordingDatabase(TagDatabase):
    """A custom backend proving the reader only uses the protocol."""

    def __init__(self):
        self.entries = {}
        self.lookups = 0

    def enroll(self, identity, point):
        self.entries.setdefault((point.x, point.y), identity)

    def lookup(self, point):
        self.lookups += 1
        return self.entries.get((point.x, point.y))

    def __len__(self):
        return len(self.entries)


class TestReaderSeam:
    def test_reader_identifies_through_custom_backend(self):
        db = _RecordingDatabase()
        tag, reader = make_pair(database=db)
        reader.register(42, tag.identity_point)
        result = run_identification(tag, reader, AesCtrDrbg(5))
        assert result.accepted
        assert result.identity == 42
        assert db.lookups == 1

    def test_resilient_session_not_in_database_path(self):
        """session.py's 'tag not in the database' verdict is whatever
        the injected TagDatabase says — here, an empty one."""
        adapter = make_adapter("peeters-hermans", DOMAIN, seed=11,
                               session_index=0,
                               database=_RecordingDatabase())
        result = run_resilient_session(adapter, seed=11, session_index=0)
        assert result.completed
        assert not result.accepted
        assert result.detail == "tag not in the database"

    def test_resilient_session_through_shared_backend(self):
        """Two sessions against ONE shared pre-enrolled database —
        the server's shape, on the toy backend."""
        shared = InMemoryTagDatabase(DOMAIN.curve)
        adapters = [
            make_adapter("peeters-hermans", DOMAIN, seed=11,
                         session_index=i, database=shared)
            for i in range(2)
        ]
        for i, adapter in enumerate(adapters):
            shared.enroll(100 + i, adapter.tag.identity_point)
        for i, adapter in enumerate(adapters):
            result = run_resilient_session(adapter, seed=11,
                                           session_index=i)
            assert result.accepted
            assert result.identity == 100 + i

    def test_default_behavior_unchanged(self):
        adapter = make_adapter("peeters-hermans", DOMAIN, seed=11,
                               session_index=3)
        result = run_resilient_session(adapter, seed=11, session_index=3)
        assert result.accepted
        assert result.identity == 4  # session_index + 1, as always
        assert len(adapter.reader.database) == 1
