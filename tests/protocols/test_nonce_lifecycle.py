"""Nonce single-use lifecycle under duplicated and replayed frames.

The adversary lab's replay flood leans entirely on one invariant: the
tag never computes ``s`` twice under one ``r``.  These tests pin the
lifecycle at the protocol layer (commit / respond / abort state
machine) and then over the channel, where duplicated frames deliver
the same challenge twice."""

import random

import pytest

from repro.channel import BodyAreaChannel, LossProfile
from repro.ec import NIST_K163
from repro.protocols import (
    NonceConsumedError,
    NoncePendingError,
    PeetersHermansReader,
    PeetersHermansTag,
)

RING = NIST_K163.scalar_ring


def make_pair(rng, identity=7):
    reader = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
    tag = PeetersHermansTag(NIST_K163, RING.random_scalar(rng),
                            reader.public)
    reader.register(identity, tag.identity_point)
    return tag, reader


class TestLifecycle:
    def test_second_respond_raises(self):
        rng = random.Random(1)
        tag, reader = make_pair(rng)
        commitment = tag.commit(rng)
        challenge = reader.challenge(rng)
        s = tag.respond(challenge, rng)
        assert reader.identify(commitment, challenge, s) == 7
        # The duplicated challenge frame must never yield a second s.
        with pytest.raises(NonceConsumedError):
            tag.respond(challenge, rng)

    def test_replayed_different_challenge_also_refused(self):
        """After the nonce is spent, *any* challenge is refused — a
        second s under one r (even for a new e) leaks the key."""
        rng = random.Random(2)
        tag, _ = make_pair(rng)
        tag.commit(rng)
        tag.respond(3, rng)
        with pytest.raises(NonceConsumedError):
            tag.respond(5, rng)

    def test_commit_with_pending_nonce_raises(self):
        rng = random.Random(3)
        tag, _ = make_pair(rng)
        tag.commit(rng)
        with pytest.raises(NoncePendingError):
            tag.commit(rng)

    def test_abort_discards_and_allows_fresh_commit(self):
        rng = random.Random(4)
        tag, reader = make_pair(rng)
        first = tag.commit(rng)
        tag.abort()
        second = tag.commit(rng)
        assert first != second
        challenge = reader.challenge(rng)
        s = tag.respond(challenge, rng)
        # The response verifies against the *fresh* commit only.
        assert reader.identify(second, challenge, s) == 7
        assert reader.identify(first, challenge, s) is None

    def test_fresh_epoch_uses_fresh_nonce(self):
        rng = random.Random(5)
        tag, reader = make_pair(rng)
        seen = set()
        for _ in range(5):
            commitment = tag.commit(rng)
            seen.add((commitment.x, commitment.y))
            challenge = reader.challenge(rng)
            assert reader.identify(commitment, challenge,
                                   tag.respond(challenge, rng)) == 7
        assert len(seen) == 5


class TestOverDuplicatingChannel:
    def test_duplicated_challenge_frames_yield_one_response(self):
        """A channel that echoes every frame delivers each challenge
        at least twice; the tag answers exactly once per nonce."""
        rng = random.Random(6)
        tag, reader = make_pair(rng)
        channel = BodyAreaChannel(
            LossProfile(frame_loss=0.0, duplicate_rate=1.0),
            seed=9, session=0)
        commitment = tag.commit(rng)
        challenge = reader.challenge(rng)
        deliveries = channel.transmit(bytes([challenge & 0xFF]),
                                      frame=1, attempt=0, now=0.0)
        assert len(deliveries) >= 2
        responses, refused = [], 0
        for _ in deliveries:
            try:
                responses.append(tag.respond(challenge, rng))
            except NonceConsumedError:
                refused += 1
        assert len(responses) == 1
        assert refused == len(deliveries) - 1
        assert reader.identify(commitment, challenge, responses[0]) == 7
