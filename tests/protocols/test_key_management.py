"""Tests for symmetric key diversification and fleet exposure."""

import pytest

from repro.protocols import KeyServer, diversify_key, fleet_exposure

MASTER = bytes(range(16))


class TestDiversification:
    def test_deterministic(self):
        assert diversify_key(MASTER, b"dev-1") == diversify_key(MASTER, b"dev-1")

    def test_distinct_per_device(self):
        assert diversify_key(MASTER, b"dev-1") != diversify_key(MASTER, b"dev-2")

    def test_distinct_per_master(self):
        other = bytes(16)
        assert diversify_key(MASTER, b"dev-1") != diversify_key(other, b"dev-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            diversify_key(b"short", b"dev-1")
        with pytest.raises(ValueError):
            diversify_key(MASTER, b"")

    def test_key_is_aes_sized(self):
        assert len(diversify_key(MASTER, b"dev-1")) == 16


class TestKeyServer:
    def test_enroll_and_rederive(self):
        server = KeyServer(MASTER)
        provisioned = server.enroll(b"implant-42")
        assert server.key_for(b"implant-42") == provisioned

    def test_unknown_device_rejected(self):
        server = KeyServer(MASTER)
        with pytest.raises(KeyError):
            server.key_for(b"ghost")

    def test_provisioned_key_works_for_mutual_auth(self):
        from repro.primitives import AesCtrDrbg
        from repro.protocols import (
            SymmetricDevice,
            SymmetricServer,
            run_mutual_authentication,
        )

        server = KeyServer(MASTER)
        device_key = server.enroll(b"implant-7")
        implant = SymmetricDevice(device_key)
        backend = SymmetricServer(server.key_for(b"implant-7"))
        result = run_mutual_authentication(implant, backend, AesCtrDrbg(1))
        assert result.authenticated

    def test_bad_master(self):
        with pytest.raises(ValueError):
            KeyServer(b"short")


class TestFleetExposure:
    def test_stolen_device_key_does_not_expose_fleet(self):
        """One compromised device key reveals nothing about the others
        (that is the entire point of diversification)."""
        server = KeyServer(MASTER)
        for i in range(5):
            server.enroll(b"dev-%d" % i)
        stolen_device_key = server.key_for(b"dev-0")
        # The attacker tries the stolen DEVICE key as a master key.
        exposure = fleet_exposure(server, stolen_device_key)
        assert exposure == {}

    def test_stolen_master_exposes_everything(self):
        """The residual risk the paper's PKC argument rests on."""
        server = KeyServer(MASTER)
        for i in range(5):
            server.enroll(b"dev-%d" % i)
        exposure = fleet_exposure(server, MASTER)
        assert len(exposure) == 5
        assert exposure[b"dev-3"] == server.key_for(b"dev-3")

    def test_wrong_master_exposes_nothing(self):
        server = KeyServer(MASTER)
        server.enroll(b"dev-0")
        assert fleet_exposure(server, bytes(16)) == {}


class TestEnrollmentOrder:
    """Satellite fix: fleet iteration must not depend on the hash seed."""

    def test_enrolled_preserves_insertion_order(self):
        server = KeyServer(MASTER)
        ids = [b"dev-%d" % i for i in (9, 3, 7, 1, 5)]
        for device_id in ids:
            server.enroll(device_id)
        assert list(server.enrolled) == ids

    def test_reenrollment_keeps_original_position(self):
        server = KeyServer(MASTER)
        for device_id in (b"a", b"b", b"c"):
            server.enroll(device_id)
        server.enroll(b"a")  # idempotent re-provisioning
        assert list(server.enrolled) == [b"a", b"b", b"c"]

    def test_fleet_exposure_order_matches_enrollment(self):
        server = KeyServer(MASTER)
        ids = [b"implant-%02d" % i for i in (42, 3, 17, 8)]
        for device_id in ids:
            server.enroll(device_id)
        exposure = fleet_exposure(server, MASTER)
        assert list(exposure) == ids

    def test_order_stable_across_hash_seeds(self):
        """The regression this guards: a ``set`` of bytes iterates in a
        PYTHONHASHSEED-dependent order, so two processes disagreed on
        the fleet-exposure report order."""
        import os
        import subprocess
        import sys

        program = (
            "from repro.protocols import KeyServer, fleet_exposure\n"
            "master = bytes(range(16))\n"
            "server = KeyServer(master)\n"
            "for i in (12, 5, 30, 1, 21, 9):\n"
            "    server.enroll(b'dev-%d' % i)\n"
            "print([d.decode() for d in fleet_exposure(server, master)])\n"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", program], env=env,
                capture_output=True, text=True, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert "dev-12" in outputs[0]
        assert outputs[0].index("dev-12") < outputs[0].index("dev-9")
