"""Tests for symmetric key diversification and fleet exposure."""

import pytest

from repro.protocols import KeyServer, diversify_key, fleet_exposure

MASTER = bytes(range(16))


class TestDiversification:
    def test_deterministic(self):
        assert diversify_key(MASTER, b"dev-1") == diversify_key(MASTER, b"dev-1")

    def test_distinct_per_device(self):
        assert diversify_key(MASTER, b"dev-1") != diversify_key(MASTER, b"dev-2")

    def test_distinct_per_master(self):
        other = bytes(16)
        assert diversify_key(MASTER, b"dev-1") != diversify_key(other, b"dev-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            diversify_key(b"short", b"dev-1")
        with pytest.raises(ValueError):
            diversify_key(MASTER, b"")

    def test_key_is_aes_sized(self):
        assert len(diversify_key(MASTER, b"dev-1")) == 16


class TestKeyServer:
    def test_enroll_and_rederive(self):
        server = KeyServer(MASTER)
        provisioned = server.enroll(b"implant-42")
        assert server.key_for(b"implant-42") == provisioned

    def test_unknown_device_rejected(self):
        server = KeyServer(MASTER)
        with pytest.raises(KeyError):
            server.key_for(b"ghost")

    def test_provisioned_key_works_for_mutual_auth(self):
        from repro.primitives import AesCtrDrbg
        from repro.protocols import (
            SymmetricDevice,
            SymmetricServer,
            run_mutual_authentication,
        )

        server = KeyServer(MASTER)
        device_key = server.enroll(b"implant-7")
        implant = SymmetricDevice(device_key)
        backend = SymmetricServer(server.key_for(b"implant-7"))
        result = run_mutual_authentication(implant, backend, AesCtrDrbg(1))
        assert result.authenticated

    def test_bad_master(self):
        with pytest.raises(ValueError):
            KeyServer(b"short")


class TestFleetExposure:
    def test_stolen_device_key_does_not_expose_fleet(self):
        """One compromised device key reveals nothing about the others
        (that is the entire point of diversification)."""
        server = KeyServer(MASTER)
        for i in range(5):
            server.enroll(b"dev-%d" % i)
        stolen_device_key = server.key_for(b"dev-0")
        # The attacker tries the stolen DEVICE key as a master key.
        exposure = fleet_exposure(server, stolen_device_key)
        assert exposure == {}

    def test_stolen_master_exposes_everything(self):
        """The residual risk the paper's PKC argument rests on."""
        server = KeyServer(MASTER)
        for i in range(5):
            server.enroll(b"dev-%d" % i)
        exposure = fleet_exposure(server, MASTER)
        assert len(exposure) == 5
        assert exposure[b"dev-3"] == server.key_for(b"dev-3")

    def test_wrong_master_exposes_nothing(self):
        server = KeyServer(MASTER)
        server.enroll(b"dev-0")
        assert fleet_exposure(server, bytes(16)) == {}
