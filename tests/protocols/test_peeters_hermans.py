"""Tests for the Peeters-Hermans identification protocol (Figure 2)."""

import random

import pytest

from repro.ec import AffinePoint, NIST_K163
from repro.protocols import (
    NonceConsumedError,
    NoncePendingError,
    PeetersHermansReader,
    PeetersHermansTag,
    run_identification,
)

RING = NIST_K163.scalar_ring


def make_pair(rng, identity=7):
    reader = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
    tag = PeetersHermansTag(NIST_K163, RING.random_scalar(rng), reader.public)
    reader.register(identity, tag.identity_point)
    return tag, reader


class TestCorrectness:
    def test_honest_run_accepts(self):
        rng = random.Random(1)
        tag, reader = make_pair(rng, identity=42)
        result = run_identification(tag, reader, rng)
        assert result.accepted
        assert result.identity == 42

    def test_multiple_sessions_accept(self):
        rng = random.Random(2)
        tag, reader = make_pair(rng)
        for _ in range(3):
            assert run_identification(tag, reader, rng).accepted

    def test_unregistered_tag_rejected(self):
        rng = random.Random(3)
        reader = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
        stranger = PeetersHermansTag(NIST_K163, RING.random_scalar(rng),
                                     reader.public)
        result = run_identification(stranger, reader, rng)
        assert not result.accepted
        assert result.identity is None

    def test_wrong_reader_key_rejects(self):
        """A tag provisioned for reader A does not identify to reader B."""
        rng = random.Random(4)
        tag, reader_a = make_pair(rng)
        reader_b = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
        reader_b.register(7, tag.identity_point)
        result = run_identification(tag, reader_b, rng)
        assert not result.accepted

    def test_multi_tag_database(self):
        rng = random.Random(5)
        reader = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
        tags = {}
        for identity in range(3):
            tag = PeetersHermansTag(NIST_K163, RING.random_scalar(rng),
                                    reader.public)
            reader.register(identity, tag.identity_point)
            tags[identity] = tag
        for identity, tag in tags.items():
            assert run_identification(tag, reader, rng).identity == identity


class TestPaperWorkload:
    def test_tag_does_two_pm_and_one_modmul(self):
        """Section 4: 'the main operation on the tag is two point
        multiplications and one modular multiplication'."""
        rng = random.Random(6)
        tag, reader = make_pair(rng)
        result = run_identification(tag, reader, rng)
        assert result.tag_ops.point_multiplications == 2
        assert result.tag_ops.modular_multiplications == 1

    def test_reader_carries_the_heavy_load(self):
        """The asymmetry rule: the reader computes more than the tag."""
        rng = random.Random(7)
        tag, reader = make_pair(rng)
        result = run_identification(tag, reader, rng)
        assert result.reader_ops.point_multiplications > \
            result.tag_ops.point_multiplications

    def test_three_message_flow(self):
        rng = random.Random(8)
        tag, reader = make_pair(rng)
        result = run_identification(tag, reader, rng)
        assert result.transcript.rounds == 3
        assert [m.label for m in result.transcript.messages] == ["R", "e", "s"]

    def test_communication_accounting(self):
        rng = random.Random(9)
        tag, reader = make_pair(rng)
        result = run_identification(tag, reader, rng)
        point_bits = NIST_K163.field.m + 1
        scalar_bits = NIST_K163.order.bit_length()
        assert result.transcript.total_bits == point_bits + 2 * scalar_bits
        assert result.tag_ops.tx_bits == point_bits + scalar_bits
        assert result.tag_ops.rx_bits == scalar_bits


class TestRobustness:
    def test_respond_before_commit(self):
        rng = random.Random(10)
        tag, __ = make_pair(rng)
        with pytest.raises(RuntimeError):
            tag.respond(5, rng)

    def test_nonce_is_single_use(self):
        rng = random.Random(11)
        tag, __ = make_pair(rng)
        tag.commit(rng)
        tag.respond(5, rng)
        with pytest.raises(RuntimeError):
            tag.respond(6, rng)

    def test_bad_challenge_rejected(self):
        rng = random.Random(12)
        tag, __ = make_pair(rng)
        tag.commit(rng)
        with pytest.raises(ValueError):
            tag.respond(0, rng)

    def test_invalid_commitment_rejected_by_reader(self):
        rng = random.Random(13)
        __, reader = make_pair(rng)
        assert reader.identify(AffinePoint(3, 4), 5, 6) is None
        assert reader.identify(AffinePoint.infinity(), 5, 6) is None

    def test_construction_validation(self):
        rng = random.Random(14)
        reader = PeetersHermansReader(NIST_K163, RING.random_scalar(rng))
        with pytest.raises(ValueError):
            PeetersHermansTag(NIST_K163, 0, reader.public)
        with pytest.raises(ValueError):
            PeetersHermansTag(NIST_K163, 5, AffinePoint(1, 2))
        with pytest.raises(ValueError):
            PeetersHermansReader(NIST_K163, 0)
        with pytest.raises(ValueError):
            reader.register(1, AffinePoint(1, 2))

    def test_replayed_response_fails(self):
        """Replaying (R, s) against a fresh challenge fails."""
        rng = random.Random(15)
        tag, reader = make_pair(rng, identity=3)
        commitment = tag.commit(rng)
        e1 = reader.challenge(rng)
        s1 = tag.respond(e1, rng)
        assert reader.identify(commitment, e1, s1) == 3
        e2 = reader.challenge(rng)
        assert reader.identify(commitment, e2, s1) is None


class TestScalarRangeValidation:
    """The reader rejects out-of-range wire scalars before any point
    arithmetic (non-canonical encodings must not verify)."""

    def make_session(self, seed=16):
        rng = random.Random(seed)
        tag, reader = make_pair(rng, identity=9)
        commitment = tag.commit(rng)
        e = reader.challenge(rng)
        s = tag.respond(e, rng)
        return reader, commitment, e, s

    def test_honest_values_still_accept(self):
        reader, commitment, e, s = self.make_session()
        assert reader.identify(commitment, e, s) == 9

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_s_rejected(self, bad):
        reader, commitment, e, s = self.make_session()
        assert reader.identify(commitment, e, bad) is None
        assert reader.identify(commitment, e, RING.n) is None

    @pytest.mark.parametrize("bad", [0, -5])
    def test_bad_e_rejected(self, bad):
        reader, commitment, e, s = self.make_session()
        assert reader.identify(commitment, bad, s) is None
        assert reader.identify(commitment, RING.n + 3, s) is None

    def test_non_canonical_encoding_of_valid_transcript_rejected(self):
        """s + n verifies the same equation mod n; accepting it would
        let a replayed transcript slip past exact-match replay caches."""
        reader, commitment, e, s = self.make_session()
        assert reader.identify(commitment, e, s + RING.n) is None
        assert reader.identify(commitment, e + RING.n, s) is None

    def test_rejection_costs_no_point_multiplications(self):
        reader, commitment, e, s = self.make_session()
        before = reader.ops.point_multiplications
        reader.identify(commitment, e, RING.n)
        assert reader.ops.point_multiplications == before


class TestNonceLifecycle:
    """The strict single-use nonce contract the session layer relies on."""

    def test_second_respond_raises_typed_error(self):
        rng = random.Random(17)
        tag, reader = make_pair(rng)
        tag.commit(rng)
        tag.respond(5, rng)
        with pytest.raises(NonceConsumedError):
            tag.respond(5, rng)

    def test_s_never_emitted_twice_under_one_r(self):
        """Pin the invariant directly: for any one commit, at most one
        s ever leaves the tag — even a byte-identical retransmitted
        challenge cannot extract a second response."""
        rng = random.Random(18)
        tag, reader = make_pair(rng)
        emitted = []
        for _ in range(5):
            tag.commit(rng)
            e = reader.challenge(rng)
            emitted.append(tag.respond(e, rng))
            for retry in range(3):  # replayed challenge, same epoch
                with pytest.raises(NonceConsumedError):
                    tag.respond(e, rng)
        assert len(set(emitted)) == len(emitted)

    def test_commit_requires_explicit_abort(self):
        rng = random.Random(19)
        tag, __ = make_pair(rng)
        tag.commit(rng)
        with pytest.raises(NoncePendingError):
            tag.commit(rng)
        tag.abort()
        commitment = tag.commit(rng)
        assert commitment is not None

    def test_fresh_commits_give_fresh_responses(self):
        """Epoch restarts (the session layer's loss recovery) are safe:
        same challenge, different r, different s."""
        rng = random.Random(20)
        tag, reader = make_pair(rng)
        e = reader.challenge(rng)
        s_values = set()
        for _ in range(4):
            tag.commit(rng)
            s_values.add(tag.respond(e, rng))
        assert len(s_values) == 4
