"""Tests for AES-based mutual authentication (the secret-key baseline)."""

import pytest

from repro.primitives import AesCtrDrbg
from repro.protocols import (
    AuthenticationError,
    SymmetricDevice,
    SymmetricServer,
    run_mutual_authentication,
)

KEY = bytes(range(16))


def fresh(key_dev=KEY, key_srv=KEY):
    return SymmetricDevice(key_dev), SymmetricServer(key_srv)


class TestHonestRun:
    def test_mutual_authentication_succeeds(self):
        device, server = fresh()
        result = run_mutual_authentication(device, server, AesCtrDrbg(1))
        assert result.authenticated
        assert not result.aborted_early

    def test_telemetry_delivery(self):
        device, server = fresh()
        payload = b"hr=072 spo2=98 batt=81%"
        result = run_mutual_authentication(device, server, AesCtrDrbg(2),
                                           payload=payload)
        assert result.payload_delivered == payload

    def test_transcript_rounds(self):
        device, server = fresh()
        result = run_mutual_authentication(device, server, AesCtrDrbg(3),
                                           payload=b"x" * 20)
        assert [m.label for m in result.transcript.messages] == [
            "Nd", "Ns||MACs", "MACd", "frame"
        ]

    def test_ciphertext_not_plaintext_on_the_air(self):
        """Confidentiality: the payload never crosses in the clear."""
        device, server = fresh()
        payload = b"sensitive diagnosis code 1234"
        run_mutual_authentication(device, server, AesCtrDrbg(4),
                                  payload=payload)
        # send_telemetry exposes the actual frame:
        device2, server2 = fresh()
        run_mutual_authentication(device2, server2, AesCtrDrbg(4))
        nonce, ciphertext, tag = device2.send_telemetry(payload, AesCtrDrbg(5))
        assert ciphertext != payload


class TestAttacks:
    def test_wrong_device_key_fails_mutually(self):
        """With mismatched keys the device rejects the (to it,
        unauthentic) server first — the session dies in round 2."""
        device, server = fresh(key_dev=bytes(16))
        result = run_mutual_authentication(device, server, AesCtrDrbg(6))
        assert not result.authenticated
        assert result.aborted_early

    def test_impostor_server_rejected_early(self):
        """The Section 4 rule: server authentication first, cheap abort."""
        device, server = fresh()
        result = run_mutual_authentication(device, server, AesCtrDrbg(7),
                                           server_is_impostor=True)
        assert not result.authenticated
        assert result.aborted_early
        # The device only paid one CMAC verification.
        honest_dev, honest_srv = fresh()
        honest = run_mutual_authentication(honest_dev, honest_srv,
                                           AesCtrDrbg(8))
        assert result.device_ops.aes_blocks < honest.device_ops.aes_blocks / 2
        # ...and never transmitted its own authentication MAC.
        assert result.transcript.rounds == 2

    def test_tampered_telemetry_detected(self):
        device, server = fresh()
        run_mutual_authentication(device, server, AesCtrDrbg(9))
        nonce, ciphertext, tag = device.send_telemetry(b"rate=60", AesCtrDrbg(10))
        evil = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        with pytest.raises(AuthenticationError):
            server.receive_telemetry(nonce, evil, tag)

    def test_wrong_device_key_raises_in_server_verify(self):
        device, server = fresh(key_dev=bytes(16))
        drbg = AesCtrDrbg(11)
        nd = device.hello(drbg)
        ns, mac = server.respond(nd, drbg)
        # With mismatched keys the device rejects the honest server.
        with pytest.raises(AuthenticationError):
            device.verify_server(ns, mac)


class TestAccounting:
    def test_device_cheaper_than_pkc_in_compute(self):
        """Secret-key protocols are computation-cheap: a handful of AES
        blocks, zero point multiplications."""
        device, server = fresh()
        result = run_mutual_authentication(device, server, AesCtrDrbg(12))
        assert result.device_ops.point_multiplications == 0
        assert 0 < result.device_ops.aes_blocks < 20

    def test_communication_bits_settled(self):
        device, server = fresh()
        result = run_mutual_authentication(device, server, AesCtrDrbg(13))
        assert result.device_ops.tx_bits == \
            result.transcript.bits_from("device")
        assert result.device_ops.rx_bits == \
            result.transcript.bits_from("server")

    def test_state_machine_guards(self):
        device, server = fresh()
        with pytest.raises(RuntimeError):
            device.verify_server(b"\x00" * 16, b"\x00" * 16)
        with pytest.raises(RuntimeError):
            server.verify_device(b"\x00" * 16)
        with pytest.raises(RuntimeError):
            device.send_telemetry(b"x", AesCtrDrbg(14))

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            SymmetricDevice(b"short")
        with pytest.raises(ValueError):
            SymmetricServer(b"short")

    def test_operation_count_addition(self):
        from repro.protocols import OperationCount

        a = OperationCount(point_multiplications=1, tx_bits=10)
        b = OperationCount(point_multiplications=2, rx_bits=5)
        c = a + b
        assert c.point_multiplications == 3
        assert c.communication_bits == 15
