"""Tests for the resilient session layer over the lossy channel."""

import dataclasses
import random

import pytest

from repro.channel import LossProfile
from repro.ec.curves import TOY_B17
from repro.protocols import NonceConsumedError, NoncePendingError
from repro.protocols.fleet import FleetSpec, run_fleet
from repro.protocols.session import (
    MutualAuthAdapter,
    PROTOCOL_NAMES,
    PeetersHermansAdapter,
    RetransmissionPolicy,
    make_adapter,
    run_resilient_session,
)

LOSSY = LossProfile(frame_loss=0.15, duplicate_rate=0.1, reorder_rate=0.1,
                    bit_error_rate=2e-4)


def run_one(protocol="peeters-hermans", profile=None, seed=0, index=0,
            policy=None):
    adapter = make_adapter(protocol, TOY_B17, seed=seed,
                          session_index=index)
    return adapter, run_resilient_session(
        adapter, profile if profile is not None else LossProfile(),
        policy, seed=seed, session_index=index)


class TestLosslessBaseline:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_three_frames_one_epoch(self, protocol):
        __, result = run_one(protocol)
        assert result.completed and result.accepted
        assert result.epochs_used == 1
        assert result.frames_sent == 3
        assert result.retransmissions == 0
        assert result.rounds_completed == 3

    def test_identity_recovered(self):
        __, result = run_one("peeters-hermans", index=4)
        assert result.identity == 5  # make_adapter registers index + 1

    def test_every_bit_is_charged(self):
        adapter, result = run_one("peeters-hermans")
        assert result.initiator_ops.tx_bits == \
            result.channel_stats.bits_sent - result.responder_ops.tx_bits
        assert result.initiator_ops.tx_bits > 0
        assert result.responder_ops.rx_bits > 0
        assert result.initiator_energy.total_j > 0

    def test_paper_workload_preserved(self):
        """The loss layer must not change the tag's crypto workload
        when nothing is lost: two PM, one modmul (Section 4)."""
        adapter, result = run_one("peeters-hermans")
        assert result.initiator_ops.point_multiplications == 2
        assert result.initiator_ops.modular_multiplications == 1


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self):
        results = []
        for _ in range(2):
            __, result = run_one(profile=LOSSY, seed=31, index=9)
            results.append(result)
        first, second = results
        assert first.transcript_digest == second.transcript_digest
        assert first.events == second.events
        assert first.frames_sent == second.frames_sent
        assert first.initiator_energy == second.initiator_energy
        assert first.elapsed_s == second.elapsed_s

    def test_seed_changes_the_run(self):
        __, a = run_one(profile=LOSSY, seed=1, index=0)
        __, b = run_one(profile=LOSSY, seed=2, index=0)
        assert a.transcript_digest != b.transcript_digest


class TestRetransmissionAndNonces:
    def test_loss_forces_fresh_epochs_never_nonce_reuse(self):
        """Under heavy loss the session retries with fresh commits;
        the tag's s is emitted at most once per epoch."""
        found_retry = False
        for index in range(30):
            adapter, result = run_one(
                profile=LossProfile(frame_loss=0.4), seed=17, index=index)
            responses = [e for e in result.events if "tx tag s " in e]
            epochs_with_s = {e.split("epoch=")[1].split()[0]
                             for e in responses}
            # one response frame per epoch, never two
            assert len(responses) == len(epochs_with_s)
            if result.epochs_used > 1:
                found_retry = True
        assert found_retry

    def test_second_respond_raises_nonce_consumed(self):
        adapter = make_adapter("peeters-hermans", TOY_B17, seed=3)
        rng = random.Random(0)
        adapter.tag.commit(rng)
        adapter.tag.respond(5, rng)
        with pytest.raises(NonceConsumedError):
            adapter.tag.respond(5, rng)

    def test_commit_over_pending_nonce_raises(self):
        adapter = make_adapter("peeters-hermans", TOY_B17, seed=3)
        rng = random.Random(0)
        adapter.tag.commit(rng)
        with pytest.raises(NoncePendingError):
            adapter.tag.commit(rng)
        adapter.tag.abort()
        adapter.tag.commit(rng)  # abort() makes a fresh commit legal

    def test_duplicates_counted_as_replays(self):
        profile = LossProfile(duplicate_rate=1.0)
        __, result = run_one(profile=profile, seed=5)
        assert result.accepted
        assert result.replay_rejections + result.stale_rejections > 0

    def test_corrupt_frames_counted(self):
        # ~14% of 19-byte frames take a bit error at this BER: enough
        # corruption to observe, not enough to exhaust the epoch budget
        profile = LossProfile(bit_error_rate=1e-3)
        saw_corruption = False
        for index in range(10):
            __, result = run_one(profile=profile, seed=23, index=index)
            assert result.accepted
            if result.corrupt_rejections:
                saw_corruption = True
        assert saw_corruption


class TestAbort:
    def test_abort_reports_progress(self):
        """A hopeless channel aborts gracefully with the phase."""
        policy = RetransmissionPolicy(max_epochs=2)
        profile = LossProfile(frame_loss=0.97)
        __, result = run_one(profile=profile, policy=policy, seed=40)
        assert not result.completed and not result.accepted
        assert result.aborted_phase is not None
        assert result.epochs_used == 2
        assert result.rounds_completed < 3
        # the tag paid for every doomed transmission
        assert result.initiator_ops.tx_bits > 0

    def test_impostor_server_concludes_not_retries(self):
        """Mutual auth: a wrong-key server is a *conclusion* (early
        abort per the paper), not a channel failure to retry."""
        key = bytes(range(16))
        from repro.protocols import SymmetricDevice, SymmetricServer

        adapter = MutualAuthAdapter(SymmetricDevice(key),
                                    SymmetricServer(key),
                                    server_is_impostor=True)
        result = run_resilient_session(adapter, LossProfile(), seed=8)
        assert result.completed
        assert not result.accepted
        assert "server authentication failed" in result.detail
        assert result.epochs_used == 1  # no pointless retries


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetransmissionPolicy(max_epochs=0)
        with pytest.raises(ValueError):
            RetransmissionPolicy(max_epochs=256)
        with pytest.raises(ValueError):
            RetransmissionPolicy(round_deadline_s=0)
        with pytest.raises(ValueError):
            RetransmissionPolicy(max_frame_attempts=0)

    def test_backoff_is_capped_and_jittered(self):
        policy = RetransmissionPolicy(backoff_base_s=0.01,
                                      backoff_cap_s=0.05)
        delays = [policy.epoch_backoff(1, 2, epoch) for epoch in range(10)]
        assert all(d <= 0.05 for d in delays)
        assert len(set(delays)) > 1  # jitter varies per epoch

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            make_adapter("rot13", TOY_B17)
        with pytest.raises(ValueError):
            make_adapter("schnorr", None)


class TestEnergyAccounting:
    def test_retries_cost_microjoules(self):
        """The same session under loss costs strictly more tag energy."""
        __, clean = run_one(seed=77, index=1)
        adapter = make_adapter("peeters-hermans", TOY_B17, seed=77,
                               session_index=1)
        lossy = run_resilient_session(
            adapter, LossProfile(frame_loss=0.5), seed=77, session_index=1)
        if lossy.frames_sent > clean.frames_sent:
            assert lossy.initiator_energy.total_j > \
                clean.initiator_energy.total_j

    def test_fleet_energy_monotone_in_loss(self):
        spec = FleetSpec(sessions=40, seed=2013, max_epochs=20,
                         sweep=(0.0, 0.1, 0.2))
        report = run_fleet(spec, workers=0)
        assert report.fully_available
        assert report.energy_monotone
        assert report.total_sessions == 120

    def test_fleet_report_is_deterministic_across_worker_counts(self):
        spec = FleetSpec(sessions=16, seed=5, sweep=(0.0, 0.2))
        serial = run_fleet(spec, workers=0)
        parallel = run_fleet(spec, workers=2)
        assert [p.digest() for p in serial.points] == \
            [p.digest() for p in parallel.points]
        assert serial.summary() == parallel.summary()


@pytest.mark.slow
class TestSoak:
    def test_thousand_sessions_at_ten_percent_loss(self):
        """The ISSUE acceptance: >= 1000 seeded sessions at 10% frame
        loss all eventually identify."""
        spec = FleetSpec(sessions=1000, seed=2013, sweep=(0.10,))
        report = run_fleet(spec)
        point = report.points[0]
        assert point.sessions == 1000
        assert point.availability == 1.0
        assert point.total_retransmissions > 0

    def test_sweep_energy_strictly_increases(self):
        spec = FleetSpec(sessions=300, seed=2013)
        report = run_fleet(spec)
        assert report.energy_monotone
