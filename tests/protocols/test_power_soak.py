"""The power soak: worker-count and cut-placement invariance."""

import json

import pytest

from repro.protocols.fleet import (
    PowerSoakSpec,
    run_power_soak,
)


SPEC = PowerSoakSpec(sessions=6)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSoakSpec(sessions=0)
        with pytest.raises(ValueError):
            PowerSoakSpec(cuts=-1)
        with pytest.raises(ValueError):
            PowerSoakSpec(mean_on_cycles=0)

    def test_zero_cuts_means_stable_power(self):
        spec = PowerSoakSpec(cuts=0)
        assert spec.schedule(0).windows == ()

    def test_schedules_differ_per_session(self):
        assert SPEC.schedule(0) != SPEC.schedule(1)


class TestInvariance:
    def test_worker_count_cannot_change_the_summary(self):
        serial = run_power_soak(SPEC, workers=1)
        fanned = run_power_soak(SPEC, workers=3)
        assert serial.summary_payload() == fanned.summary_payload()
        assert json.dumps(serial.summary_payload(), sort_keys=True) == \
            json.dumps(fanned.summary_payload(), sort_keys=True)

    def test_cut_placement_cannot_change_the_outcomes(self):
        """Different cut seeds move the brownouts; as long as every
        session still completes, the payload is byte-identical —
        energy and power-cycle figures are deliberately excluded."""
        a = run_power_soak(PowerSoakSpec(sessions=6, cut_seed=1),
                           workers=1)
        b = run_power_soak(PowerSoakSpec(sessions=6, cut_seed=99),
                           workers=1)
        assert a.completed == a.sessions
        assert b.completed == b.sessions
        assert a.summary_payload() == b.summary_payload()
        # The soaks did take different outage patterns: the cuts land
        # at different cycles, so the re-execution bill differs.
        assert sum(r.steps_wasted for r in a.records) != \
            sum(r.steps_wasted for r in b.records)

    def test_stable_power_matches_cut_runs(self):
        stable = run_power_soak(PowerSoakSpec(sessions=6, cuts=0),
                                workers=1)
        cut = run_power_soak(SPEC, workers=1)
        assert stable.summary_payload() == cut.summary_payload()


class TestReport:
    def test_soak_accepts_and_is_clean(self):
        report = run_power_soak(SPEC, workers=1)
        assert report.completed == report.sessions
        assert report.accepted == report.sessions
        assert report.all_clean
        assert report.total_power_cycles > 0

    def test_summary_renders_from_metrics(self):
        report = run_power_soak(SPEC, workers=1)
        text = report.summary()
        assert "power soak on TOY-B17" in text
        assert "typed-clean" in text
        assert report.outcome_digest()[:16] in text

    def test_identities_are_the_enrolled_fleet(self):
        report = run_power_soak(SPEC, workers=1)
        assert report.summary_payload()["identities"] == \
            [i + 1 for i in range(SPEC.sessions)]


class TestNonceInvariant:
    """The ``nonce_reuse == 0`` invariant, watched from telemetry."""

    def test_payload_carries_the_invariant_verdict(self):
        payload = run_power_soak(SPEC, workers=1).summary_payload()
        assert payload["nonce_reuse"] == 0
        assert payload["alert_firings"] == 0

    def test_summary_renders_the_invariant(self):
        report = run_power_soak(SPEC, workers=1)
        assert "invariant held" in report.summary()
        assert "INVARIANT BROKEN" not in report.summary()

    def test_telemetry_events_are_ordered_and_typed(self):
        report = run_power_soak(SPEC, workers=1)
        events = report.telemetry_events()
        assert len(events) == SPEC.sessions
        assert [e["vt"] for e in events] == \
            sorted(e["vt"] for e in events)
        for event in events:
            assert event["source"] == "power"
            assert event["series"]["nonce_reuse"] == 0.0
            assert event["series"]["session_uj"] > 0.0

    def test_alert_records_fire_on_a_doctored_record(self):
        import dataclasses
        report = run_power_soak(SPEC, workers=1)
        report.records[2] = dataclasses.replace(report.records[2],
                                                nonce_reuse=1)
        records = report.alert_records()
        assert [r["state"] for r in records] == ["firing"]
        assert records[0]["rule"] == "nonce_reuse_invariant"
        assert report.summary_payload()["alert_firings"] == 1
