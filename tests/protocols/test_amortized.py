"""Epoch-bounded session amortization: determinism, energy honesty.

The contract under test: one amortized session is a pure function of
``(spec, frame_loss, session_index)``; the soak's summary facts are
byte-identical across worker counts; the traced span tree decomposes
the microjoules exactly; and the battery-life extension anchors at
1.0 when the epoch is one message (the design *is* the
handshake-per-message baseline there).
"""

import os

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.report import load_spans
from repro.protocols import (
    AmortizedSpec,
    derive_session_key,
    run_amortized_session,
    run_amortized_soak,
)

SPEC = AmortizedSpec(curve="TOY-B17", seed=2013, epoch_messages=4,
                     messages=12, sessions=2, sweep=(0.0, 0.2))


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="epoch_messages"):
            AmortizedSpec(epoch_messages=0)
        with pytest.raises(ValueError, match="protocol"):
            AmortizedSpec(protocol="dtls")
        with pytest.raises(ValueError, match="backend"):
            AmortizedSpec(backend="aes-gcm")
        with pytest.raises(ValueError):
            AmortizedSpec(sweep=(1.0,))

    def test_score_design_posture_duck_typing(self):
        # The spec *is* a session posture: a finite epoch and the
        # Peeters-Hermans private handshake.
        assert SPEC.rekey_epoch == SPEC.epoch_messages
        assert SPEC.private_identification is True
        assert AmortizedSpec(
            protocol="schnorr").private_identification is False

    def test_handshake_count(self):
        assert SPEC.handshakes == 3  # ceil(12 / 4)
        assert AmortizedSpec(epoch_messages=100,
                             messages=12).handshakes == 1


class TestSessionKeys:
    def test_deterministic_and_distinct_per_epoch(self):
        a = derive_session_key(2013, 0, 0, "t" * 40, 8)
        assert a == derive_session_key(2013, 0, 0, "t" * 40, 8)
        assert len(a) == 8
        assert a != derive_session_key(2013, 0, 1, "t" * 40, 8)
        assert a != derive_session_key(2013, 1, 0, "t" * 40, 8)
        assert a != derive_session_key(2014, 0, 0, "t" * 40, 8)

    def test_transcript_binds_the_key(self):
        assert derive_session_key(2013, 0, 0, "a" * 40, 8) != \
            derive_session_key(2013, 0, 0, "b" * 40, 8)


class TestSessionDeterminism:
    def test_record_is_a_pure_function(self):
        a = run_amortized_session(SPEC, 0.2, 1)
        b = run_amortized_session(SPEC, 0.2, 1)
        assert a == b
        assert a.delivered + a.failed == SPEC.messages
        assert a.keys_used > 0
        assert a.total_uj == pytest.approx(
            a.handshake_uj + a.message_compute_uj + a.message_radio_uj)

    def test_loss_rates_get_independent_streams(self):
        clean = run_amortized_session(SPEC, 0.0, 0)
        lossy = run_amortized_session(SPEC, 0.2, 0)
        assert clean.transcript_digest != lossy.transcript_digest
        assert lossy.attempts >= clean.attempts

    def test_forward_secrecy_window_is_bounded(self):
        record = run_amortized_session(SPEC, 0.0, 0)
        assert 0 < record.worst_key_window <= SPEC.epoch_messages


class TestSoak:
    def test_worker_count_cannot_change_the_answer(self):
        inline = run_amortized_soak(SPEC, workers=0)
        fanned = run_amortized_soak(SPEC, workers=2)
        assert inline.summary_payload() == fanned.summary_payload()
        for a, b in zip(inline.points, fanned.points):
            assert a.digest() == b.digest()

    def test_epoch_one_is_the_baseline(self):
        spec = AmortizedSpec(curve="TOY-B17", seed=2013,
                             epoch_messages=1, messages=8, sessions=2,
                             sweep=(0.0,))
        report = run_amortized_soak(spec, workers=0)
        point = report.points[0]
        # Every message pays a fresh handshake: the "extension" over
        # the handshake-per-message design is exactly 1 when every
        # message delivers on its session key.
        assert point.extension_factor == pytest.approx(1.0, abs=0.05)

    def test_amortization_pays_at_larger_epochs(self):
        report = run_amortized_soak(SPEC, workers=0)
        assert report.fully_delivered or report.min_delivery_rate > 0.9
        assert report.amortization_pays
        for point in report.points:
            assert point.extension_factor > 1.0


class TestObservability:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        obs_dir = os.path.join(
            str(tmp_path_factory.mktemp("obs-amortized")),
            obs_runtime.OBS_DIRNAME)
        with obs_runtime.session(obs_dir, kind="amortized",
                                 seed=SPEC.seed):
            record = run_amortized_session(SPEC, 0.0, 0)
        return {"obs_dir": obs_dir, "record": record}

    def test_epoch_spans_partition_the_energy_exactly(self, traced):
        spans = load_spans(traced["obs_dir"])
        epochs = [s for s in spans if s["name"] == "session.epoch"]
        assert len(epochs) == SPEC.handshakes
        total = sum(s["uj"] for s in epochs)
        assert total == pytest.approx(traced["record"].total_uj,
                                      rel=1e-9)

    def test_span_tree_shape(self, traced):
        spans = load_spans(traced["obs_dir"])
        by_id = {s["span"]: s for s in spans}
        handshakes = [s for s in spans if s["name"] == "handshake"]
        messages = [s for s in spans if s["name"] == "message"]
        assert len(handshakes) >= SPEC.handshakes
        assert len(messages) == SPEC.messages
        for span in handshakes + messages:
            parent = by_id[span["parent"]]
            assert parent["name"] == "session.epoch"

    def test_message_spans_carry_delivery(self, traced):
        spans = load_spans(traced["obs_dir"])
        messages = [s for s in spans if s["name"] == "message"]
        delivered = sum(1 for s in messages
                        if s["attrs"]["delivered"])
        assert delivered == traced["record"].delivered


class TestMetricsReadback:
    def test_soak_records_the_registry(self, tmp_path):
        from repro.obs.integration import amortized_point_stats

        obs_dir = os.path.join(str(tmp_path),
                               obs_runtime.OBS_DIRNAME)
        with obs_runtime.session(obs_dir, kind="amortized",
                                 seed=SPEC.seed) as rt:
            report = run_amortized_soak(SPEC, workers=0)
            snapshot = rt.registry.snapshot()
        for point in report.points:
            stats = amortized_point_stats(snapshot, point.frame_loss)
            assert stats["delivered"] == point.delivered
            assert stats["uj_per_message"] == pytest.approx(
                point.mean_uj_per_message, rel=1e-6)
            assert stats["extension_factor"] == pytest.approx(
                point.extension_factor, rel=1e-6)
        assert "summary" in dir(report)
        text = report.summary()
        assert "forward-secrecy window" in text
