"""Tests for threshold cryptography (Shamir + exponent combination)."""

import random

import pytest

from repro.ec import NIST_K163, ScalarRing
from repro.protocols import (
    ShamirSecretSharing,
    Share,
    threshold_point_multiply,
)

RING = ScalarRing(NIST_K163.order)


class TestShamir:
    def test_reconstruct_with_threshold(self):
        rng = random.Random(1)
        sss = ShamirSecretSharing(RING, threshold=3, participants=5)
        secret = RING.random_scalar(rng)
        shares = sss.split(secret, rng)
        assert len(shares) == 5
        assert sss.reconstruct(shares[:3]) == secret
        assert sss.reconstruct(shares[2:]) == secret

    def test_any_qualified_subset_works(self):
        rng = random.Random(2)
        sss = ShamirSecretSharing(RING, threshold=2, participants=4)
        secret = 0xDEADBEEF
        shares = sss.split(secret, rng)
        import itertools

        for subset in itertools.combinations(shares, 2):
            assert sss.reconstruct(list(subset)) == secret

    def test_insufficient_shares_rejected(self):
        rng = random.Random(3)
        sss = ShamirSecretSharing(RING, threshold=3, participants=5)
        shares = sss.split(42, rng)
        with pytest.raises(ValueError):
            sss.reconstruct(shares[:2])

    def test_duplicate_shares_do_not_count(self):
        rng = random.Random(4)
        sss = ShamirSecretSharing(RING, threshold=2, participants=3)
        shares = sss.split(42, rng)
        with pytest.raises(ValueError):
            sss.reconstruct([shares[0], shares[0]])

    def test_single_share_reveals_nothing_statistically(self):
        """A t-1 coalition's share values are uniform: two different
        secrets produce identically-distributed first shares."""
        sss = ShamirSecretSharing(RING, threshold=2, participants=3)
        rng = random.Random(5)
        # The first share of secret A with polynomial randomness r is
        # a + r; for every candidate secret there EXISTS an r giving
        # the same share -- spot-check the algebra:
        shares_a = sss.split(1, random.Random(77))
        shares_b = sss.split(999, random.Random(77))
        # Same randomness, different secrets -> different shares, but
        # both valid points of degree-1 polynomials.
        assert shares_a[0].value != shares_b[0].value

    def test_threshold_one_is_replication(self):
        rng = random.Random(6)
        sss = ShamirSecretSharing(RING, threshold=1, participants=3)
        shares = sss.split(1234, rng)
        assert all(s.value == 1234 for s in shares)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShamirSecretSharing(RING, threshold=0, participants=3)
        with pytest.raises(ValueError):
            ShamirSecretSharing(RING, threshold=4, participants=3)
        with pytest.raises(ValueError):
            ShamirSecretSharing(ScalarRing(5), threshold=2, participants=7)
        with pytest.raises(ValueError):
            Share(0, 1)


class TestThresholdPointMultiplication:
    def test_matches_direct_multiplication(self):
        rng = random.Random(7)
        sss = ShamirSecretSharing(RING, threshold=2, participants=3)
        secret = RING.random_scalar(rng)
        shares = sss.split(secret, rng)
        expected = NIST_K163.curve.multiply_naive(secret, NIST_K163.generator)
        result = threshold_point_multiply(
            NIST_K163.curve, sss, shares[:2], NIST_K163.generator, rng
        )
        assert result == expected

    def test_different_subsets_agree(self):
        rng = random.Random(8)
        sss = ShamirSecretSharing(RING, threshold=2, participants=3)
        shares = sss.split(0xCAFE, rng)
        r1 = threshold_point_multiply(NIST_K163.curve, sss, shares[:2],
                                      NIST_K163.generator, rng)
        r2 = threshold_point_multiply(NIST_K163.curve, sss, shares[1:],
                                      NIST_K163.generator, rng)
        assert r1 == r2

    def test_insufficient_shares_rejected(self):
        rng = random.Random(9)
        sss = ShamirSecretSharing(RING, threshold=3, participants=4)
        shares = sss.split(5, rng)
        with pytest.raises(ValueError):
            threshold_point_multiply(NIST_K163.curve, sss, shares[:2],
                                     NIST_K163.generator, rng)
