"""Tests for Schnorr identification, traceability, and the privacy game."""

import random

import pytest

from repro.ec import NIST_K163
from repro.protocols import (
    SchnorrTag,
    SchnorrVerifier,
    extract_public_key,
    peeters_hermans_linkage_game,
    run_schnorr_identification,
    schnorr_linkage_game,
)

RING = NIST_K163.scalar_ring


class TestSchnorrProtocol:
    def test_honest_run_verifies(self):
        rng = random.Random(1)
        tag = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        verifier = SchnorrVerifier(NIST_K163, tag.public)
        session = run_schnorr_identification(tag, verifier, rng)
        assert session.accepted

    def test_wrong_key_fails(self):
        rng = random.Random(2)
        tag = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        other = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        verifier = SchnorrVerifier(NIST_K163, other.public)
        session = run_schnorr_identification(tag, verifier, rng)
        assert not session.accepted

    def test_respond_before_commit(self):
        tag = SchnorrTag(NIST_K163, 5)
        with pytest.raises(RuntimeError):
            tag.respond(1)

    def test_construction_validation(self):
        from repro.ec import AffinePoint

        with pytest.raises(ValueError):
            SchnorrTag(NIST_K163, 0)
        with pytest.raises(ValueError):
            SchnorrVerifier(NIST_K163, AffinePoint(1, 2))


class TestTraceability:
    def test_public_key_extractable_from_transcript(self):
        """The tracking flaw: X is computable by any eavesdropper."""
        rng = random.Random(3)
        tag = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        verifier = SchnorrVerifier(NIST_K163, tag.public)
        session = run_schnorr_identification(tag, verifier, rng)
        assert extract_public_key(NIST_K163, session) == tag.public

    def test_sessions_of_same_tag_link(self):
        rng = random.Random(4)
        tag = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        verifier = SchnorrVerifier(NIST_K163, tag.public)
        s1 = run_schnorr_identification(tag, verifier, rng)
        s2 = run_schnorr_identification(tag, verifier, rng)
        assert extract_public_key(NIST_K163, s1) == extract_public_key(
            NIST_K163, s2
        )

    def test_sessions_of_different_tags_do_not_link(self):
        rng = random.Random(5)
        tag_a = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        tag_b = SchnorrTag(NIST_K163, RING.random_scalar(rng))
        sa = run_schnorr_identification(
            tag_a, SchnorrVerifier(NIST_K163, tag_a.public), rng
        )
        sb = run_schnorr_identification(
            tag_b, SchnorrVerifier(NIST_K163, tag_b.public), rng
        )
        assert extract_public_key(NIST_K163, sa) != extract_public_key(
            NIST_K163, sb
        )


@pytest.mark.slow
class TestPrivacyGame:
    """The paper's protocol-level claim, as an experiment: Schnorr is
    traceable, Peeters-Hermans is not."""

    def test_schnorr_adversary_wins(self):
        rng = random.Random(6)
        result = schnorr_linkage_game(NIST_K163, rng, trials=12)
        assert result.advantage == 1.0

    def test_peeters_hermans_adversary_guesses(self):
        rng = random.Random(7)
        result = peeters_hermans_linkage_game(NIST_K163, rng, trials=12)
        # 12 Bernoulli(1/2) trials essentially never all succeed.
        assert result.advantage < 1.0
        assert result.accuracy < 1.0

    def test_game_result_arithmetic(self):
        from repro.protocols import LinkageGameResult

        r = LinkageGameResult(trials=10, correct=5)
        assert r.accuracy == 0.5
        assert r.advantage == 0.0
        assert LinkageGameResult(10, 10).advantage == 1.0
