"""The field-cutting attacker: naive tag broken, durable tag held."""

import pytest

from repro.adversary import (
    FieldCutAttacker,
    FieldCutOutcome,
    run_fieldcut_attack,
)
from repro.intermittent import IntermittentSpec


@pytest.fixture(scope="module")
def outcomes():
    return run_fieldcut_attack(IntermittentSpec(curve="TOY-B17",
                                                seed=2013))


class TestNaiveTag:
    def test_key_is_recovered(self, outcomes):
        naive, _ = outcomes
        assert naive.target == "naive"
        assert naive.responses_harvested == 2
        assert naive.key_recovered
        assert naive.broken
        assert naive.recovered_x == naive.secret_x
        assert "BROKEN" in naive.verdict()

    def test_cut_lands_in_the_ack_window(self, outcomes):
        naive, _ = outcomes
        assert naive.cut_cycle is not None and naive.cut_cycle > 0


class TestCheckpointingTag:
    def test_key_is_not_recovered(self, outcomes):
        _, durable = outcomes
        assert durable.target == "checkpointing"
        # The resumed tag re-emits the committed response verbatim:
        # one distinct s, no second equation, nothing to solve.
        assert durable.responses_harvested <= 1
        assert not durable.key_recovered
        assert not durable.broken
        assert "held" in durable.verdict()

    def test_probe_targets_each_variants_own_timeline(self):
        """The naive tag finishes earlier (no NVM cycles), so the two
        probes must find different ack windows — aiming a durable-run
        cut at a naive tag misses entirely."""
        attacker = FieldCutAttacker(IntermittentSpec(curve="TOY-B17",
                                                     seed=2013))
        naive_cut = attacker.probe(durable=False)
        durable_cut = attacker.probe(durable=True)
        assert naive_cut is not None and durable_cut is not None
        assert naive_cut < durable_cut


class TestOutcomeShape:
    def test_verdict_for_unbroken_outcome(self):
        outcome = FieldCutOutcome(
            target="naive", cut_cycle=None, responses_harvested=0,
            key_recovered=False, recovered_r=None, recovered_x=None,
            secret_x=1)
        assert not outcome.broken
        assert "held" in outcome.verdict()

    def test_wrong_recovery_is_not_broken(self):
        outcome = FieldCutOutcome(
            target="naive", cut_cycle=1, responses_harvested=2,
            key_recovered=True, recovered_r=5, recovered_x=9,
            secret_x=1)
        assert not outcome.broken
