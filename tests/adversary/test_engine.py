"""Tests for the attack engine: each adversary, each defense, and the
ISSUE's acceptance criterion (undefended drain vs defended service)."""

import pytest

from repro.adversary import (
    ADVERSARY_NAMES,
    AdversaryError,
    EnergyBudget,
    defense_config,
    run_attack_session,
)
from repro.channel import LossProfile

SEED = 7
LOSSY = LossProfile(frame_loss=0.1)


def run(kind, defense="none", *, session_index=3, profile=None, **kwargs):
    return run_attack_session(
        kind, defense=defense_config(defense),
        profile=profile if profile is not None else LOSSY,
        seed=SEED, session_index=session_index, **kwargs)


class TestDeterminism:
    @pytest.mark.parametrize("kind", ADVERSARY_NAMES + ("legit",))
    def test_same_inputs_same_result(self, kind):
        a = run(kind, "full")
        b = run(kind, "full")
        assert a == b

    def test_session_index_decorrelates(self):
        assert run("amplification").tag_uj != \
            run("amplification", session_index=4).tag_uj


class TestAdversaries:
    def test_unknown_kind(self):
        with pytest.raises(AdversaryError, match="unknown session kind"):
            run("evil-twin")

    def test_bogus_flood_never_earns_a_response(self):
        result = run("bogus-flood")
        assert result.responses_emitted == 0
        assert result.outcome == "aborted"
        assert result.tag_uj > 0  # commits still cost the tag

    def test_replay_flood_is_rejected_not_answered(self):
        result = run("replay-flood")
        # Every exact replay into the live epoch bounced off the
        # nonce-single-use rule; the stale captures bounced as stale.
        assert result.replay_rejections > 0
        assert result.stale_rejections > 0
        # At most one response per epoch: no nonce ever answered twice.
        assert result.responses_emitted <= result.epochs_used

    def test_amplification_burns_epochs(self):
        result = run("amplification")
        assert result.epochs_used > 1
        assert result.responses_emitted >= 1
        assert result.amplification > 1.0

    def test_abandonment_strands_the_tag(self):
        result = run("abandonment")
        assert result.outcome == "aborted"
        assert result.responses_emitted <= 1

    def test_legit_session_completes(self):
        result = run("legit")
        assert result.outcome == "accepted"
        assert result.epochs_used >= 1


class TestDefenses:
    def test_wake_gating_refuses_before_protocol_work(self):
        undefended = run("amplification")
        gated = run("amplification", "wake-gating")
        assert gated.outcome == "refused"
        assert gated.wake_refusals > 0
        assert gated.responses_emitted == 0
        # The refused flood cost the tag only wake-receiver listens.
        assert gated.tag_uj < undefended.tag_uj / 100
        assert gated.tag_uj < gated.adversary_uj

    def test_legit_passes_the_wake_gate(self):
        result = run("legit", "wake-gating")
        assert result.outcome == "accepted"
        assert result.wake_refusals == 0

    def test_backoff_caps_epochs(self):
        cfg = defense_config("backoff")
        result = run("amplification", "backoff")
        assert result.epochs_used <= cfg.max_session_epochs
        assert result.epochs_used < run("amplification").epochs_used

    def test_budget_cap_bounds_the_window(self):
        cfg = defense_config("budget-cap")
        budget = EnergyBudget(cfg.budget_cap_uj, cfg.budget_window_s)
        result = run_attack_session(
            "amplification", defense=cfg, profile=LossProfile(),
            seed=SEED, session_index=3, budget=budget)
        assert result.outcome == "budget_exhausted"
        assert result.budget_refusals > 0
        assert budget.peak_window_uj <= cfg.budget_cap_uj
        assert result.tag_uj <= cfg.budget_cap_uj * 1.01


class TestAcceptanceCriterion:
    """ISSUE: under a seeded replay+amplification flood the undefended
    tag drains past the budget; the defended tag refuses the flood and
    still completes legitimate sessions with bounded spend."""

    def test_undefended_drains_defended_serves(self):
        cap_uj = defense_config("budget-cap").budget_cap_uj
        undefended = 0.0
        for index, kind in enumerate(
                ("replay-flood", "amplification", "replay-flood",
                 "amplification")):
            undefended += run(kind, session_index=index).tag_uj
        assert undefended > 2 * cap_uj

        cfg = defense_config("full")
        budget = EnergyBudget(cfg.budget_cap_uj, cfg.budget_window_s)
        flood_uj = 0.0
        for index, kind in enumerate(
                ("replay-flood", "amplification", "replay-flood",
                 "amplification")):
            result = run_attack_session(
                kind, defense=cfg, profile=LOSSY, seed=SEED,
                session_index=index, budget=budget)
            assert result.outcome == "refused"
            flood_uj += result.tag_uj
        legit = run_attack_session(
            "legit", defense=cfg, profile=LOSSY, seed=SEED,
            session_index=9, budget=budget)
        assert legit.outcome == "accepted"
        assert flood_uj < cap_uj / 10
        assert budget.peak_window_uj <= cfg.budget_cap_uj
