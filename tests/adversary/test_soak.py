"""Tests for the attack soak: byte-identical summaries are the
headline, outcome buckets and metrics the supporting cast."""

import dataclasses
import json

import pytest

from repro.adversary import (
    ATTACK_OUTCOMES,
    AttackSpec,
    run_attack_soak,
    simulate_attack_cohort,
)
from repro.adversary.soak import SUMMARY_NAME
from repro.campaign.chaos import ChaosConfig
from repro.obs.alerts import ALERTS_NAME
from repro.obs.stream import TELEMETRY_NAME


@pytest.fixture(scope="module")
def attack_spec():
    return AttackSpec(adversary="mixed", defense="full", sessions=10,
                      cohorts=2, legit_fraction=0.3, frame_loss=0.1,
                      seed=11)


class TestSpec:
    def test_round_trip(self, attack_spec):
        assert AttackSpec.from_dict(attack_spec.to_dict()) == attack_spec

    def test_digest_is_stable(self, attack_spec):
        assert attack_spec.digest() == \
            dataclasses.replace(attack_spec).digest()
        assert attack_spec.digest() != \
            dataclasses.replace(attack_spec, seed=12).digest()

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackSpec(sessions=0)
        with pytest.raises(ValueError):
            AttackSpec(adversary="evil-twin")
        with pytest.raises(ValueError):
            AttackSpec(defense="belt")
        with pytest.raises(ValueError):
            AttackSpec(legit_fraction=1.5)

    def test_session_kinds_are_seeded(self, attack_spec):
        kinds = [attack_spec.session_kind(i)
                 for i in range(attack_spec.sessions
                                * attack_spec.cohorts)]
        assert kinds == [attack_spec.session_kind(i)
                         for i in range(len(kinds))]
        assert "legit" in kinds
        assert any(k != "legit" for k in kinds)


class TestSimulateCohort:
    def test_deterministic(self, attack_spec):
        assert simulate_attack_cohort(attack_spec, 0) == \
            simulate_attack_cohort(attack_spec, 0)

    def test_cohorts_are_disjoint_tags(self, attack_spec):
        a = simulate_attack_cohort(attack_spec, 0)
        b = simulate_attack_cohort(attack_spec, 1)
        assert a["first_index"] == 0
        assert b["first_index"] == attack_spec.sessions
        assert a != b

    def test_every_outcome_is_a_named_bucket(self, attack_spec):
        payload = simulate_attack_cohort(attack_spec, 0)
        assert set(payload["outcomes"]) == set(ATTACK_OUTCOMES)
        assert sum(payload["outcomes"].values()) == payload["sessions"]


class TestByteIdenticalSummaries:
    def test_across_worker_counts_and_chaos(self, tmp_path, attack_spec):
        run_attack_soak(tmp_path / "w1", attack_spec, workers=1)
        run_attack_soak(tmp_path / "w4", attack_spec, workers=4)
        chaos_report = run_attack_soak(
            tmp_path / "chaos", attack_spec, workers=2,
            chaos=ChaosConfig.parse("crash=0.4", seed=5))
        assert chaos_report.outcome == "clean"
        for name in (SUMMARY_NAME, TELEMETRY_NAME, ALERTS_NAME):
            baseline = (tmp_path / "w1" / name).read_bytes()
            assert (tmp_path / "w4" / name).read_bytes() == baseline
            assert (tmp_path / "chaos" / name).read_bytes() == baseline

    def test_summary_shape(self, tmp_path, attack_spec):
        report = run_attack_soak(tmp_path / "s", attack_spec, workers=1)
        assert report.outcome == "clean"
        assert report.sessions == \
            attack_spec.sessions * attack_spec.cohorts
        assert report.legit_sessions > 0
        assert report.legit_accepted <= report.legit_sessions
        summary = json.loads((tmp_path / "s" / SUMMARY_NAME).read_text())
        assert summary["spec_digest"] == attack_spec.digest()
        assert set(summary["totals"]["outcomes"]) == set(ATTACK_OUTCOMES)
        families = set(summary["metrics"]["metrics"])
        assert "repro_adversary_sessions_total" in families
        assert "repro_adversary_energy_uj_total" in families
        assert not any(name.endswith("_seconds") for name in families)

    def test_defended_vs_undefended_totals(self, tmp_path, attack_spec):
        undefended = dataclasses.replace(attack_spec, defense="none")
        defended = run_attack_soak(tmp_path / "d", attack_spec,
                                   workers=1)
        baseline = run_attack_soak(tmp_path / "u", undefended,
                                   workers=1)
        assert defended.tag_energy_uj < baseline.tag_energy_uj
        assert defended.wake_refusals > 0
        assert baseline.wake_refusals == 0
        assert defended.outcomes["refused"] > 0


class TestTelemetryDetection:
    """Detection from telemetry alone: no defense, no attacker oracle.

    The per-session energy signature is the tell — flood sessions drag
    retransmission tails the honest workload never shows, so the p99
    rule fires on an undefended soak while the all-honest baseline
    stays silent at the same thresholds."""

    FLOOD = AttackSpec(adversary="bogus-flood", defense="none",
                       sessions=12, cohorts=1, legit_fraction=0.2,
                       seed=2013)

    def test_flood_fires_the_p99_rule_with_window_attribution(
            self, tmp_path):
        report = run_attack_soak(tmp_path / "f", self.FLOOD, workers=1)
        assert report.alert_firings >= 1
        assert report.session_uj_p99 > 110.0
        alerts = json.loads((tmp_path / "f" / ALERTS_NAME).read_text())
        fired = [r for r in alerts["records"]
                 if r["state"] == "firing"
                 and r["rule"] == "energy_session_p99"]
        assert fired
        assert all(r["window"] >= 0 for r in fired)
        assert all(r["value"] > r["threshold"] for r in fired)
        summary = json.loads(
            (tmp_path / "f" / SUMMARY_NAME).read_text())
        assert summary["telemetry"]["alerts"]["firings"] == \
            report.alert_firings
        assert "energy_session_p99" in \
            summary["telemetry"]["alerts"]["by_rule"]

    def test_clean_baseline_stays_silent(self, tmp_path):
        clean = dataclasses.replace(self.FLOOD, legit_fraction=1.0)
        report = run_attack_soak(tmp_path / "c", clean, workers=1)
        assert report.alert_firings == 0
        assert report.session_uj_p99 is not None
        assert report.session_uj_p99 < 110.0
        telemetry = json.loads(
            (tmp_path / "c" / TELEMETRY_NAME).read_text())
        sessions = self.FLOOD.sessions * self.FLOOD.cohorts
        assert telemetry["series"]["session_uj"]["count"] == sessions
        summary = json.loads(
            (tmp_path / "c" / SUMMARY_NAME).read_text())
        assert summary["telemetry"]["alerts"]["by_rule"] == {}


class TestChaosQuarantine:
    def test_always_crashing_cohort_degrades(self, tmp_path,
                                             attack_spec):
        spec = dataclasses.replace(attack_spec, cohorts=1)
        report = run_attack_soak(
            tmp_path / "q", spec, workers=2,
            chaos=ChaosConfig.parse("crash=1.0", seed=0))
        assert report.outcome == "degraded"
        assert report.quarantined == [0]
        summary = json.loads((tmp_path / "q" / SUMMARY_NAME).read_text())
        assert summary["outcome"] == "degraded"
