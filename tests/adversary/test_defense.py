"""Tests for the defense layer: budget, wake gating, named postures."""

import pytest

from repro.adversary import (
    DEFENSE_SETS,
    BudgetExhaustedError,
    DefenseConfig,
    DefenseConfigError,
    EnergyBudget,
    WakeUpRadio,
    defense_config,
)


class TestDefenseConfig:
    def test_named_sets_all_resolve(self):
        for name in DEFENSE_SETS:
            cfg = defense_config(name)
            assert cfg.name == name
            assert DefenseConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_name(self):
        with pytest.raises(DefenseConfigError, match="unknown defense"):
            defense_config("belt-and-braces")

    def test_overrides(self):
        cfg = defense_config("budget-cap", budget_cap_uj=42.0)
        assert cfg.budget_cap_uj == 42.0
        assert cfg.budget_window_s == \
            DEFENSE_SETS["budget-cap"]["budget_window_s"]

    def test_validation(self):
        with pytest.raises(DefenseConfigError):
            DefenseConfig(budget_cap_uj=-1.0)
        with pytest.raises(DefenseConfigError):
            DefenseConfig(budget_window_s=0.0)
        with pytest.raises(DefenseConfigError):
            DefenseConfig(restart_backoff_scale=0.5)
        with pytest.raises(DefenseConfigError):
            DefenseConfig(max_session_epochs=-1)

    def test_budget_factory(self):
        assert defense_config("none").budget() is None
        budget = defense_config("budget-cap").budget()
        assert budget is not None
        assert budget.cap_uj == DEFENSE_SETS["budget-cap"]["budget_cap_uj"]


class TestEnergyBudget:
    def test_charges_accumulate_within_cap(self):
        budget = EnergyBudget(cap_uj=10.0, window_s=1.0)
        budget.charge(4.0, now=0.0)
        budget.charge(5.0, now=0.5)
        assert budget.window_spent_uj == pytest.approx(9.0)
        assert budget.total_spent_uj == pytest.approx(9.0)
        assert budget.peak_window_uj == pytest.approx(9.0)

    def test_refusal_is_all_or_nothing(self):
        budget = EnergyBudget(cap_uj=10.0, window_s=1.0)
        budget.charge(9.0, now=0.0)
        with pytest.raises(BudgetExhaustedError) as excinfo:
            budget.charge(2.0, now=0.1)
        # The refused charge spent nothing.
        assert budget.window_spent_uj == pytest.approx(9.0)
        assert budget.total_spent_uj == pytest.approx(9.0)
        assert budget.refusals == 1
        assert excinfo.value.cap_uj == 10.0
        assert excinfo.value.spent_uj == pytest.approx(9.0)

    def test_window_roll_resets_spend(self):
        budget = EnergyBudget(cap_uj=10.0, window_s=1.0)
        budget.charge(9.0, now=0.0)
        budget.charge(9.0, now=1.5)  # next window
        assert budget.window_spent_uj == pytest.approx(9.0)
        assert budget.total_spent_uj == pytest.approx(18.0)
        assert budget.remaining_uj(1.9) == pytest.approx(1.0)

    def test_rejects_bad_values(self):
        with pytest.raises(DefenseConfigError):
            EnergyBudget(cap_uj=0.0)
        budget = EnergyBudget(cap_uj=1.0)
        with pytest.raises(DefenseConfigError):
            budget.charge(-0.1, now=0.0)

    def test_spend_exactly_at_cap_succeeds(self):
        budget = EnergyBudget(cap_uj=10.0, window_s=1.0)
        budget.charge(10.0, now=0.0)
        assert budget.window_spent_uj == pytest.approx(10.0)
        assert budget.refusals == 0
        assert budget.remaining_uj(0.5) == pytest.approx(0.0)

    def test_exact_remaining_after_float_accumulation(self):
        # 100 charges of 0.1 then the exact remainder: the running sum
        # is one ulp off 10.0, which must not refuse the final spend.
        budget = EnergyBudget(cap_uj=15.0, window_s=1.0)
        for _ in range(100):
            budget.charge(0.1, now=0.0)
        budget.charge(15.0 - budget.window_spent_uj, now=0.0)
        assert budget.refusals == 0
        # ...but any real overshoot beyond the tolerance still refuses.
        with pytest.raises(BudgetExhaustedError):
            budget.charge(0.001, now=0.0)

    def test_window_boundary_is_exact(self):
        # 0.3 / 0.1 rounds to 2.999...96; a clock sitting exactly on a
        # window boundary must open the new window, not extend the old.
        budget = EnergyBudget(cap_uj=1.0, window_s=0.1)
        budget.charge(1.0, now=0.2)
        budget.charge(1.0, now=0.3)  # exact boundary: fresh budget
        assert budget.total_spent_uj == pytest.approx(2.0)
        assert budget.refusals == 0


class TestWakeUpRadio:
    def test_token_is_deterministic(self):
        radio = WakeUpRadio(WakeUpRadio.derive_key(7))
        assert radio.token(3) == radio.token(3)
        assert radio.token(3) != radio.token(4)

    def test_keys_differ_per_seed_and_tag(self):
        assert WakeUpRadio.derive_key(7, 0) != WakeUpRadio.derive_key(7, 1)
        assert WakeUpRadio.derive_key(7, 0) != WakeUpRadio.derive_key(8, 0)

    def test_verify_counts(self):
        radio = WakeUpRadio(WakeUpRadio.derive_key(7))
        forged = WakeUpRadio(b"not-the-key")
        assert radio.verify(5, radio.token(5))
        assert not radio.verify(5, forged.token(5))
        assert not radio.verify(6, radio.token(5))
        assert radio.accepted == 1
        assert radio.rejected == 2

    def test_empty_key_rejected(self):
        with pytest.raises(DefenseConfigError):
            WakeUpRadio(b"")
