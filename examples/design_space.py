"""Scenario: the designer's walk through the security pyramid.

The paper's methodology as an interactive script: sweep the multiplier
digit size (area / latency / power / energy), inspect the
threat-vs-countermeasure coverage of a configuration, and run the
white-box evaluation battery on design points to see which "open
doors" the attacks actually walk through.

Run:  python examples/design_space.py    (~1 minute)
"""

from repro.arch import (
    CoprocessorConfig,
    EccCoprocessor,
    UnbalancedEncoding,
    ecc_core_area,
)
from repro.power import PAPER_OPERATING_POINT, calibrate_energy_model
from repro.security import WhiteBoxEvaluation, pyramid_for_config

# ----------------------------------------------------- digit-size sweep
print("=== Architecture level: the digit-size trade-off (Section 5) ===")
reference = EccCoprocessor(CoprocessorConfig(digit_size=4))
model = calibrate_energy_model(reference)
print(f"{'d':>4}{'area (GE)':>12}{'latency':>12}{'power':>12}"
      f"{'energy/PM':>12}")
for d in (1, 2, 4, 8, 16):
    coprocessor = EccCoprocessor(CoprocessorConfig(digit_size=d))
    execution = coprocessor.point_multiply(
        coprocessor.domain.order // 3, coprocessor.domain.generator,
        initial_z=1,
    )
    report = model.report(execution, PAPER_OPERATING_POINT)
    area = ecc_core_area(digit_size=d).total
    marker = "  <- paper's choice" if d == 4 else ""
    print(f"{d:>4}{area:>12.0f}{report.duration_seconds * 1e3:>9.1f} ms"
          f"{report.power_watts * 1e6:>9.1f} uW"
          f"{report.energy_joules * 1e6:>9.2f} uJ{marker}")

# -------------------------------------------------------- the pyramid
print("\n=== The security pyramid for the full design (Figure 1) ===")
full = pyramid_for_config(CoprocessorConfig())
print(full.report())

print("\n=== ...and for a cost-cut variant ===")
cheap = CoprocessorConfig(randomize_z=False,
                          mux_encoding=UnbalancedEncoding())
print(pyramid_for_config(cheap).report())

# ------------------------------------------------- white-box evaluation
print("\n=== White-box evaluation of the cost-cut variant (Figure 4) ===")
report = WhiteBoxEvaluation(cheap, n_traces=60, n_bits=2, seed=99).run()
print(report.render())
print("\nThe pyramid predicted the open doors; the lab confirmed them.")
