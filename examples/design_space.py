"""Scenario: the designer's walk through the security pyramid.

The paper's methodology as an interactive script, now answered by the
:mod:`repro.dse` engine: explore the paper-aligned design space (digit
size x Vdd x frequency x countermeasures), read the digit-size
trade-off out of the evaluated grid, ask the constrained Pareto query
the paper's Section 5 answers with d = 4, then inspect the
threat-vs-countermeasure coverage and run the white-box evaluation
battery on design points to see which "open doors" the attacks
actually walk through.

Run:  python examples/design_space.py    (~2 minutes cold; re-runs hit
the measurement cache under results/dse and answer in seconds)
"""

import pathlib

from repro.arch import CoprocessorConfig, UnbalancedEncoding
from repro.dse import DesignSpaceSpec, ExplorationEngine
from repro.security import WhiteBoxEvaluation, pyramid_for_config

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

# ------------------------------------------------ explore the space
print("=== The paper's design space as a Pareto query (Section 5) ===")
spec = DesignSpaceSpec()       # the paper-aligned defaults
directory = RESULTS / "dse" / f"example-{spec.digest()}"
result = ExplorationEngine(str(directory), spec).run()
print(f"{len(result.rows)} operating points from "
      f"{result.evaluated + result.cached} measurements "
      f"({result.cached} cached)\n")

print("--- the digit-size trade-off at 847.5 kHz / 1.0 V, protected ---")
print(f"{'d':>4}{'area (GE)':>12}{'latency':>12}{'power':>12}"
      f"{'energy/PM':>12}")
for row in result.rows:
    if (row["vdd"] != 1.0 or row["frequency_hz"] != 847.5e3
            or row["countermeasures"] != "full"):
        continue
    marker = "  <- paper's choice" if row["digit_size"] == 4 else ""
    print(f"{row['digit_size']:>4}{row['area_ge']:>12.0f}"
          f"{row['latency_s'] * 1e3:>9.1f} ms"
          f"{row['power_uw']:>9.1f} uW"
          f"{row['energy_uj']:>9.2f} uJ{marker}")

print("\n--- Pareto-optimal under the 105 ms + full-security constraints ---")
for row in result.front:
    print(f"  {row['id']}: {row['area_ge']:.0f} GE, "
          f"{row['latency_s'] * 1e3:.1f} ms, {row['power_uw']:.1f} uW, "
          f"{row['energy_uj']:.2f} uJ, security {row['security']:.2f}")
print("(the paper's d = 4 / 1.0 V / 847.5 kHz design, recovered as the "
      "unique constrained optimum)")

# -------------------------------------------------------- the pyramid
print("\n=== The security pyramid for the full design (Figure 1) ===")
full = pyramid_for_config(CoprocessorConfig())
print(full.report())

print("\n=== ...and for a cost-cut variant ===")
cheap = CoprocessorConfig(randomize_z=False,
                          mux_encoding=UnbalancedEncoding())
print(pyramid_for_config(cheap).report())

# ------------------------------------------------- white-box evaluation
print("\n=== White-box evaluation of the cost-cut variant (Figure 4) ===")
report = WhiteBoxEvaluation(cheap, n_traces=60, n_bits=2, seed=99).run()
print(report.render())
print("\nThe pyramid predicted the open doors; the lab confirmed them.")
