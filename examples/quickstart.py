"""Quickstart: the library in five minutes.

Walks the stack bottom-up: field arithmetic, curve points, the
side-channel-hardened Montgomery ladder, the cycle-accurate coprocessor
and the calibrated energy model reproducing the paper's headline
numbers (50.4 uW, 5.1 uJ per point multiplication, 9.8 PM/s).

Run:  python examples/quickstart.py
"""

import random

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.ec import NIST_K163, generate_keypair, montgomery_ladder
from repro.gf2m import BinaryField, reduction_polynomial
from repro.power import calibrate_energy_model

rng = random.Random(2013)

# ---------------------------------------------------------------- field
print("=== GF(2^163), the paper's field ===")
field = BinaryField(163, reduction_polynomial(163))
a = field.random_element(rng)
b = field.random_element(rng)
product = a * b
print(f"a * b            = {hex(product.value)[:20]}...")
print(f"a * a^-1         = {hex((a * a.inverse()).value)} (must be 0x1)")
print(f"sqrt(a^2) == a   : {a.square().sqrt() == a}")

# ---------------------------------------------------------------- curve
print("\n=== NIST K-163, the paper's Koblitz curve ===")
curve, G, n = NIST_K163.curve, NIST_K163.generator, NIST_K163.order
print(f"curve: {curve}")
print(f"group order (prime): {hex(n)[:24]}... ({n.bit_length()} bits)")
k = NIST_K163.scalar_ring.random_scalar(rng)
Q = montgomery_ladder(curve, k, G, rng=rng)  # randomized-Z ladder
print(f"k*G on curve     : {curve.is_on_curve(Q)}")
print(f"matches reference: {Q == curve.multiply_naive(k, G)}")

keypair = generate_keypair(NIST_K163, rng)
print(f"generated key pair: {keypair}")

# ---------------------------------------------------------- coprocessor
print("\n=== The coprocessor (cycle-accurate, full countermeasures) ===")
coprocessor = EccCoprocessor(CoprocessorConfig())
trace = coprocessor.point_multiply(k, G, rng=rng)
print(f"result matches the pure-algorithm ladder: {trace.result == Q}")
print(f"cycles per point multiplication: {trace.cycles}")
print(f"ladder iterations (constant for every key): "
      f"{len(trace.iterations)}")
print(f"secure-zone registers: "
      f"{coprocessor.config.core_register_count} x 163 bits")

# --------------------------------------------------------------- energy
print("\n=== Energy at the paper's operating point ===")
model = calibrate_energy_model(coprocessor)
report = model.report(trace)
print(report)
print("paper:  50.4 uW, 5.10 uJ, 9.80 op/s  (UMC 0.13um, 847.5 kHz, 1 V)")
