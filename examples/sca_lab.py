"""Scenario: the side-channel lab of Figure 4, on your desk.

Recreates the paper's white-box evaluation workflow against two builds
of the coprocessor: the unprotected strawman and the full design.

* SPA: read the whole key from ONE power trace of the strawman;
  watch the balanced encoding shut the channel.
* DPA: run a *campaign* through the ``repro.campaign`` engine — a
  worker pool acquires sharded, digest-verified traces to disk and the
  streaming DPA consumes them shard by shard; watch the countermeasure
  push the statistics to the noise floor.

Run:  python examples/sca_lab.py       (~2 minutes)
"""

import random
import shutil
import tempfile

from repro.arch import (
    BalancedEncoding,
    CoprocessorConfig,
    EccCoprocessor,
    UnbalancedEncoding,
)
from repro.campaign import (
    AcquisitionEngine,
    CampaignSpec,
    ConsoleReporter,
    StreamingDpa,
)
from repro.power import PowerTraceSimulator
from repro.sca import transition_spa

NOISE_SIGMA = 38.0
WORKERS = 2
rng = random.Random(1)


# ------------------------------------------------------------------ SPA
print("=== SPA: one trace, whole key (unbalanced mux encoding) ===")
strawman = EccCoprocessor(CoprocessorConfig(
    mux_encoding=UnbalancedEncoding(), randomize_z=True,
))
secret = strawman.domain.scalar_ring.random_scalar(rng)
scope = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=7)
execution = strawman.point_multiply(secret, strawman.domain.generator,
                                    rng=rng)
spa = transition_spa(scope.measure(execution), execution.iteration_slices(),
                     execution.key_bits)
print(f"recovered {len(spa.recovered_bits)} ladder bits with "
      f"{spa.bit_errors} errors from a single trace")

print("\n=== Same attack vs the balanced encoding ===")
hardened = EccCoprocessor(CoprocessorConfig(
    mux_encoding=BalancedEncoding(), randomize_z=True,
))
execution = hardened.point_multiply(secret, hardened.domain.generator,
                                    rng=rng)
spa = transition_spa(scope.measure(execution), execution.iteration_slices(),
                     execution.key_bits)
print(f"bit errors: {spa.bit_errors}/{len(spa.true_bits)} "
      "(~50% = the attacker is guessing)")

# ------------------------------------------------------------------ DPA
# The DPA part runs through the campaign engine: a worker pool writes
# sharded traces to disk, and the streaming attack reads them back one
# shard (one iteration window) at a time.
workspace = tempfile.mkdtemp(prefix="sca-lab-")
try:
    print(f"\n=== DPA campaign: countermeasure OFF "
          f"({WORKERS} workers, disk-backed) ===")
    spec = CampaignSpec(n_traces=120, shard_size=30,
                        scenario="unprotected", key=secret,
                        max_iterations=3, noise_sigma=NOISE_SIGMA, seed=1)
    store = AcquisitionEngine(f"{workspace}/unprotected", spec,
                              workers=WORKERS,
                              reporter=ConsoleReporter()).run()
    result = StreamingDpa(store).recover_bits(2)
    print(f"first 2 ladder bits recovered: {result.recovered_bits} "
          f"(truth {result.true_bits})")
    print(f"peak statistics: {[round(p, 1) for p in result.peak_statistics]} "
          "(> 4.5 = significant)")

    print("\n=== DPA campaign: countermeasure ON (randomized Z) ===")
    spec = CampaignSpec(n_traces=120, shard_size=30,
                        scenario="protected", key=secret,
                        max_iterations=3, noise_sigma=NOISE_SIGMA, seed=1)
    store = AcquisitionEngine(f"{workspace}/protected", spec,
                              workers=WORKERS,
                              reporter=ConsoleReporter()).run()
    result = StreamingDpa(store).recover_bits(2)
    print(f"peak statistics: {[round(p, 1) for p in result.peak_statistics]} "
          "(noise floor — the attack has nothing to grab)")
    print(f"significant success: {result.significant_success()}")
finally:
    shutil.rmtree(workspace, ignore_errors=True)
print("\nThis is Section 7 in miniature: DPA succeeds without the "
      "randomized projective coordinates and collapses with them.")
