"""Scenario: the side-channel lab of Figure 4, on your desk.

Recreates the paper's white-box evaluation workflow against two builds
of the coprocessor: the unprotected strawman and the full design.

* SPA: read the whole key from ONE power trace of the strawman;
  watch the balanced encoding shut the channel.
* DPA: recover ladder key bits from a few dozen traces without the
  Z-randomization; watch the countermeasure push the statistics to the
  noise floor.

Run:  python examples/sca_lab.py       (~2 minutes)
"""

import random

from repro.arch import (
    BalancedEncoding,
    CoprocessorConfig,
    EccCoprocessor,
    UnbalancedEncoding,
)
from repro.power import PowerTraceSimulator
from repro.sca import LadderDpa, transition_spa

NOISE_SIGMA = 38.0
rng = random.Random(1)


def protocol_points(domain, count):
    points = []
    while len(points) < count:
        p = domain.curve.double(domain.curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    return points


# ------------------------------------------------------------------ SPA
print("=== SPA: one trace, whole key (unbalanced mux encoding) ===")
strawman = EccCoprocessor(CoprocessorConfig(
    mux_encoding=UnbalancedEncoding(), randomize_z=True,
))
secret = strawman.domain.scalar_ring.random_scalar(rng)
scope = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=7)
execution = strawman.point_multiply(secret, strawman.domain.generator,
                                    rng=rng)
spa = transition_spa(scope.measure(execution), execution.iteration_slices(),
                     execution.key_bits)
print(f"recovered {len(spa.recovered_bits)} ladder bits with "
      f"{spa.bit_errors} errors from a single trace")

print("\n=== Same attack vs the balanced encoding ===")
hardened = EccCoprocessor(CoprocessorConfig(
    mux_encoding=BalancedEncoding(), randomize_z=True,
))
execution = hardened.point_multiply(secret, hardened.domain.generator,
                                    rng=rng)
spa = transition_spa(scope.measure(execution), execution.iteration_slices(),
                     execution.key_bits)
print(f"bit errors: {spa.bit_errors}/{len(spa.true_bits)} "
      "(~50% = the attacker is guessing)")

# ------------------------------------------------------------------ DPA
print("\n=== DPA campaign: countermeasure OFF ===")
unprotected = EccCoprocessor(CoprocessorConfig(randomize_z=False))
points = protocol_points(unprotected.domain, 120)
campaign = scope.campaign(unprotected, secret, points,
                          scenario="unprotected", max_iterations=3)
dpa = LadderDpa(unprotected)
result = dpa.recover_bits(campaign, 2)
print(f"first 2 ladder bits recovered: {result.recovered_bits} "
      f"(truth {result.true_bits})")
print(f"peak statistics: {[round(p, 1) for p in result.peak_statistics]} "
      "(> 4.5 = significant)")

print("\n=== DPA campaign: countermeasure ON (randomized Z) ===")
protected = EccCoprocessor(CoprocessorConfig(randomize_z=True))
campaign = scope.campaign(protected, secret, points, rng=rng,
                          scenario="protected", max_iterations=3)
result = LadderDpa(protected).recover_bits(campaign, 2)
print(f"peak statistics: {[round(p, 1) for p in result.peak_statistics]} "
      "(noise floor — the attack has nothing to grab)")
print(f"significant success: {result.significant_success()}")
print("\nThis is Section 7 in miniature: DPA succeeds without the "
      "randomized projective coordinates and collapses with them.")
