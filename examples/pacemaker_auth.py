"""Scenario: a pacemaker authenticating to the patient's phone.

The paper's Section 2 use case end-to-end:

1. the implant and the mini-server (phone) mutually authenticate with
   the AES protocol — server first, so a fake programmer is rejected
   after a single MAC check;
2. vital signs flow encrypted and authenticated;
3. for location privacy, the implant also runs the Peeters–Hermans
   ECC identification (an eavesdropper cannot link sessions);
4. every step is charged against the pacemaker's 10-year battery
   budget.

Run:  python examples/pacemaker_auth.py
"""

import random

from repro.ec import NIST_K163
from repro.energy import (
    ComputeEnergyTable,
    PACEMAKER_BUDGET,
    RadioModel,
    protocol_energy,
)
from repro.primitives import AesCtrDrbg
from repro.protocols import (
    PeetersHermansReader,
    PeetersHermansTag,
    SymmetricDevice,
    SymmetricServer,
    run_identification,
    run_mutual_authentication,
)

DISTANCE_M = 1.5  # phone in the patient's pocket

drbg = AesCtrDrbg(b"implant serial 0x4711")
shared_key = bytes(range(16))

# ------------------------------------------------------- mutual auth
print("=== 1. AES mutual authentication (server first) ===")
implant = SymmetricDevice(shared_key, device_id=b"pacemaker")
phone = SymmetricServer(shared_key)
session = run_mutual_authentication(
    implant, phone, drbg, payload=b"hr=072bpm spo2=98% lead_ok=1"
)
print(f"authenticated: {session.authenticated}")
print(f"telemetry delivered: {session.payload_delivered}")
for message in session.transcript.messages:
    print(f"  {message.sender:>7} -> {message.label:<9} {message.bits:>5} bits")

print("\n=== 2. A fake programmer tries to connect ===")
implant2 = SymmetricDevice(shared_key)
impostor = SymmetricServer(shared_key)
attack = run_mutual_authentication(implant2, impostor, drbg,
                                   server_is_impostor=True)
print(f"authenticated: {attack.authenticated} "
      f"(aborted early: {attack.aborted_early})")
table = ComputeEnergyTable()
honest_j = table.computation_energy(session.device_ops)
attack_j = table.computation_energy(attack.device_ops)
print(f"implant compute spent on the impostor: {attack_j * 1e6:.3f} uJ "
      f"({attack_j / honest_j:.0%} of an honest session) — the paper's "
      "server-auth-first rule at work")

# --------------------------------------------------- private identification
print("\n=== 3. Private identification (Peeters-Hermans, Figure 2) ===")
rng = random.Random(7)
ring = NIST_K163.scalar_ring
hospital_reader = PeetersHermansReader(NIST_K163, ring.random_scalar(rng))
tag = PeetersHermansTag(NIST_K163, ring.random_scalar(rng),
                        hospital_reader.public)
hospital_reader.register(4711, tag.identity_point)
identification = run_identification(tag, hospital_reader, rng)
print(f"identified as implant #{identification.identity}")
print(f"tag workload: {identification.tag_ops.point_multiplications} point "
      f"multiplications + {identification.tag_ops.modular_multiplications} "
      "modular multiplication (matches the paper)")

# ------------------------------------------------------------- budget
print("\n=== 4. The 10-year battery budget ===")
radio = RadioModel()
aes_energy = protocol_energy("AES session", session.device_ops, DISTANCE_M,
                             radio, table)
ph_energy = protocol_energy("PH identification", identification.tag_ops,
                            DISTANCE_M, radio, table)
print(aes_energy)
print(ph_energy)
budget = PACEMAKER_BUDGET
print(f"\nsecurity allowance: {budget.security_joules:.0f} J over "
      f"{budget.target_lifetime_years:.0f} years "
      f"({budget.average_security_power_watts * 1e6:.2f} uW average)")
for name, energy in (("AES sessions", aes_energy.total_j),
                     ("PH identifications", ph_energy.total_j)):
    per_day = budget.operations_per_day(energy)
    print(f"  affordable {name}: {per_day:,.0f} per day")
print("\nConclusion: even the public-key protocol fits the implant's "
      "budget thousands of times a day — the paper's 5.1 uJ design "
      "point makes PKC-grade privacy practical.")

# --------------------------------------------- the body is in the way
print("\n=== 5. The same identification over a lossy body-area link ===")
# The numbers above assume every frame arrives.  Around a torso they
# do not: frames fade, take bit errors, duplicate.  The session layer
# retries with fresh nonces — and every retry is energy the battery
# pays.  (Toy group: the channel behaviour is identical, the curve is
# just small enough to run a sweep in an example.)
from repro.protocols.fleet import FleetSpec, run_fleet

sweep = run_fleet(
    FleetSpec(protocol="peeters-hermans", curve="TOY-B17", sessions=60,
              seed=4711, sweep=(0.0, 0.10, 0.20), max_epochs=20,
              distance_m=0.5),
    workers=0,
)
print(f"{'frame loss':>11} {'availability':>13} {'frames/id':>10} "
      f"{'uJ/id':>8} {'lifetime':>9}")
for point in sweep.points:
    print(f"{point.frame_loss:>11.0%} {point.availability:>13.1%} "
          f"{point.mean_frames:>10.2f} {point.mean_initiator_uj:>8.2f} "
          f"{point.lifetime_years(sweep.spec):>8.1f}y")
print("\nConclusion: a 20% lossy link does not break authentication — "
      "the session layer absorbs it — but it quietly taxes the battery. "
      "Reliability is an energy line item, which is why security adds "
      "an extra *design dimension*, not just a checkbox.")
